//! Umbrella crate for the DAC'96 power-management-scheduling reproduction.
//!
//! The actual functionality lives in the member crates (`cdfg`, `silage`,
//! `sched`, `pmsched`, `binding`, `rtl`, `power`, `circuits`, `engine`,
//! `experiments`); this root package exists so the workspace-level
//! integration tests in `tests/` and the walkthroughs in `examples/` have a
//! home.  It re-exports the member crates for convenience.

pub use binding;
pub use cdfg;
pub use circuits;
pub use engine;
pub use experiments;
pub use pmsched;
pub use power;
pub use rtl;
pub use sched;
pub use silage;
