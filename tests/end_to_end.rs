//! End-to-end integration tests: Silage source → CDFG → power-managed
//! schedule → binding → controller → RTL simulation, cross-checked against
//! the untimed reference semantics.

use std::collections::BTreeMap;

use binding::Datapath;
use cdfg::OpClass;
use pmsched::{power_manage, PowerManagementOptions};
use power::RandomVectors;
use rtl::{Controller, Simulator};

/// Runs the complete flow for one design at one latency and checks
/// functional equivalence over random vectors.
fn full_flow(cdfg: &cdfg::Cdfg, latency: u32, samples: usize) {
    let result = power_manage(cdfg, &PowerManagementOptions::with_latency(latency))
        .expect("power management succeeds");
    result.schedule().validate(result.cdfg()).expect("valid schedule");
    result.baseline_schedule().validate(cdfg).expect("valid baseline schedule");

    let datapath = Datapath::build(result.cdfg(), result.schedule()).expect("datapath builds");
    assert!(!datapath.units().is_empty());
    assert!(!datapath.registers().is_empty());

    let controller = Controller::generate(&result);
    let mut sim =
        Simulator::new(result.cdfg(), result.schedule(), &controller).expect("simulator builds");

    let vectors = RandomVectors::new(cdfg, 0xE2E).samples(samples);
    for sample in &vectors {
        // run_sample internally cross-checks against Cdfg::evaluate and
        // fails on any mismatch, so simply completing is the assertion.
        sim.run_sample(sample).expect("timed execution matches reference semantics");
    }
    assert_eq!(sim.samples_run(), samples as u64);

    // The VHDL artifact mentions every primary port.
    let vhdl = rtl::vhdl::emit(&result, &controller);
    for &input in cdfg.inputs() {
        let name = &cdfg.node(input).unwrap().name;
        assert!(vhdl.contains(name.as_str()), "vhdl mentions input {name}");
    }
}

#[test]
fn abs_diff_flow_from_silage_source() {
    let cdfg = silage::compile(circuits::abs_diff_silage_source()).unwrap();
    full_flow(&cdfg, 3, 64);
}

#[test]
fn dealer_flow_at_all_paper_budgets() {
    let cdfg = circuits::dealer();
    for steps in [4, 5, 6] {
        full_flow(&cdfg, steps, 48);
    }
}

#[test]
fn gcd_flow_at_all_paper_budgets() {
    let cdfg = circuits::gcd();
    for steps in [5, 6, 7] {
        full_flow(&cdfg, steps, 48);
    }
}

#[test]
fn vender_flow_at_all_paper_budgets() {
    let cdfg = circuits::vender();
    for steps in [5, 6] {
        full_flow(&cdfg, steps, 48);
    }
}

#[test]
fn cordic_flow_at_paper_budgets() {
    // The full 16-iteration cordic is large; a modest number of samples
    // keeps the test quick while still exercising every iteration.
    let cdfg = circuits::cordic();
    for steps in [48, 52] {
        full_flow(&cdfg, steps, 8);
    }
}

#[test]
fn gated_operations_never_corrupt_outputs_under_resource_pressure() {
    // Constrain the vender design to its baseline allocation and simulate;
    // the simulator's internal cross-check guarantees that partially managed
    // schedules still compute correct results.
    let cdfg = circuits::vender();
    let unconstrained = power_manage(&cdfg, &PowerManagementOptions::with_latency(6)).unwrap();
    let allocation = unconstrained.baseline_resource_usage();
    let options =
        PowerManagementOptions::with_resources(6, sched::ResourceConstraint::Limited(allocation));
    let result = power_manage(&cdfg, &options).unwrap();
    let controller = Controller::generate(&result);
    let mut sim = Simulator::new(result.cdfg(), result.schedule(), &controller).unwrap();
    for sample in RandomVectors::new(&cdfg, 77).samples(128) {
        sim.run_sample(&sample).unwrap();
    }
    // The multipliers are the expensive units; at least one of them must be
    // idle for a noticeable fraction of the samples.
    let mul_gated: u64 = sim
        .activity()
        .iter()
        .filter(|(unit, _)| {
            sim.datapath()
                .fu_binding()
                .unit(**unit)
                .map(|u| u.class == OpClass::Mul)
                .unwrap_or(false)
        })
        .map(|(_, a)| a.gated_cycles)
        .sum();
    assert!(mul_gated > 0, "multipliers are shut down for some samples");
}

#[test]
fn simulation_energy_reflects_gating() {
    // The same design simulated with and without slack: the managed version
    // must toggle fewer bits on its gated units over identical inputs.
    let cdfg = circuits::vender();
    let vectors = RandomVectors::new(&cdfg, 1234).samples(200);

    let managed = power_manage(&cdfg, &PowerManagementOptions::with_latency(6)).unwrap();
    let managed_ctrl = Controller::generate(&managed);
    let mut managed_sim =
        Simulator::new(managed.cdfg(), managed.schedule(), &managed_ctrl).unwrap();

    let baseline_ctrl = Controller::ungated(&cdfg, managed.baseline_schedule());
    let mut baseline_sim =
        Simulator::new(&cdfg, managed.baseline_schedule(), &baseline_ctrl).unwrap();

    for sample in &vectors {
        managed_sim.run_sample(sample).unwrap();
        baseline_sim.run_sample(sample).unwrap();
    }
    assert!(managed_sim.total_gated_cycles() > 0);
    assert_eq!(baseline_sim.total_gated_cycles(), 0);
    assert!(
        managed_sim.total_toggled_bits() < baseline_sim.total_toggled_bits(),
        "gating must reduce switching: {} vs {}",
        managed_sim.total_toggled_bits(),
        baseline_sim.total_toggled_bits()
    );
}

#[test]
fn silage_programs_with_conditionals_flow_end_to_end() {
    let source = r#"
        func filter(x: num[8], k: num[8], limit: num[8]) -> (y: num[8], flag: num[8]) {
            scaled = x * k;
            over   = scaled > limit;
            y      = if over then limit else scaled;
            flag   = if over then 1 else 0;
        }
    "#;
    let cdfg = silage::compile(source).unwrap();
    assert_eq!(cdfg.op_counts().mux, 2);
    full_flow(&cdfg, cdfg.critical_path_length() + 1, 64);

    // Spot-check the functional semantics through the reference evaluator.
    let mut inputs = BTreeMap::new();
    inputs.insert("x".to_owned(), 10);
    inputs.insert("k".to_owned(), 5);
    inputs.insert("limit".to_owned(), 40);
    let out = cdfg.evaluate(&inputs);
    assert_eq!(out["y"], 40);
    assert_eq!(out["flag"], 1);
}
