//! Integration tests asserting the qualitative claims of the paper hold on
//! this reproduction: every table/figure shape, the headline "up to 40%"
//! claim, and the Section IV extensions.

use experiments::ablation::{pipeline_ablation, reorder_ablation};
use experiments::figures::{figure1, figure2};
use experiments::{table1, table2, table3};

#[test]
fn table1_rows_match_the_paper_verbatim() {
    let rows = table1::table1();
    let expected = [
        ("dealer", 4u32, [3usize, 3, 2, 1, 0]),
        ("gcd", 5, [6, 2, 0, 1, 0]),
        ("vender", 5, [6, 3, 3, 3, 2]),
        ("cordic", 48, [47, 16, 43, 46, 0]),
    ];
    for (row, (name, cp, ops)) in rows.iter().zip(expected) {
        assert_eq!(row.name, name);
        assert_eq!(row.critical_path, cp);
        assert_eq!(
            [row.counts.mux, row.counts.comp, row.counts.add, row.counts.sub, row.counts.mul],
            ops
        );
    }
}

#[test]
fn figure_1_and_2_reproduce_the_walkthrough() {
    let fig1 = figure1().unwrap();
    // Two control steps: unique schedule, two subtractors, no management.
    assert_eq!(fig1.result.managed_mux_count(), 0);
    assert_eq!(fig1.result.resource_usage().count(cdfg::OpClass::Sub), 2);

    let fig2 = figure2().unwrap();
    // Three control steps: the traditional schedule gets by with one
    // subtractor; the power-managed schedule needs two but gates one of the
    // subtractions every sample.
    assert_eq!(fig2.traditional.resource_usage().count(cdfg::OpClass::Sub), 1);
    assert_eq!(fig2.managed.resource_usage().count(cdfg::OpClass::Sub), 2);
    assert_eq!(fig2.managed.managed_mux_count(), 1);
    // Expected subtractions per sample drop from 2 to 1.
    let savings = fig2.managed.savings();
    assert!((savings.expected(cdfg::OpClass::Sub) - 1.0).abs() < 1e-9);
}

#[test]
fn table2_reproduces_the_papers_qualitative_claims() {
    let rows = table2::table2().unwrap();

    // Every evaluated configuration manages at least one multiplexor and
    // saves datapath power.
    for row in &rows {
        assert!(row.pm_muxes >= 1, "{}@{}", row.circuit, row.control_steps);
        assert!(row.power_reduction > 5.0, "{}@{}", row.circuit, row.control_steps);
        assert!(row.area_increase >= 0.99, "{}@{}", row.circuit, row.control_steps);
    }

    // Headline claim: savings of roughly 40% are reachable (the paper's
    // best case is 41.67% on vender).
    let best = rows.iter().map(|r| r.power_reduction).fold(0.0f64, f64::max);
    assert!(best > 30.0 && best < 55.0, "best savings {best}");

    // Relative ordering of the circuits matches the paper: vender saves the
    // most, gcd the least, cordic sits around 30%.
    let reduction = |name: &str| {
        rows.iter().filter(|r| r.circuit == name).map(|r| r.power_reduction).fold(0.0f64, f64::max)
    };
    assert!(reduction("vender") > reduction("dealer"));
    assert!(reduction("dealer") > reduction("gcd"));
    assert!(reduction("cordic") > 20.0 && reduction("cordic") < 45.0);

    // cordic manages the vast majority of its 47 multiplexors, as in the
    // paper (38 of 47 at 48 steps, 46 of 47 at 52 steps).
    let cordic_rows: Vec<_> = rows.iter().filter(|r| r.circuit == "cordic").collect();
    for row in &cordic_rows {
        assert!(row.pm_muxes >= 35, "cordic manages most muxes, got {}", row.pm_muxes);
        assert!(row.pm_muxes <= 47);
    }
    assert!(cordic_rows[1].pm_muxes >= cordic_rows[0].pm_muxes);
}

#[test]
fn table3_reproduces_the_papers_qualitative_claims() {
    let rows = table3::table3().unwrap();
    assert_eq!(rows.len(), 3);
    for row in &rows {
        // Gate-level power drops for every circuit and the area change stays
        // small (the paper reports 0.98x-1.11x).
        assert!(row.power_reduction > 1.0, "{}", row.circuit);
        assert!(row.area_increase > 0.9 && row.area_increase < 1.35, "{}", row.circuit);
    }
    let get = |name: &str| rows.iter().find(|r| r.circuit == name).unwrap();
    assert!(get("vender").power_reduction > get("gcd").power_reduction);
    assert!(get("vender").power_reduction > 20.0);
}

#[test]
fn gate_level_savings_are_below_the_best_datapath_estimate() {
    // "Since the controller is more complex for the power managed circuit,
    // the savings in Table III are slightly lower [than] Table II."
    let t2 = table2::table2().unwrap();
    let t3 = table3::table3().unwrap();
    let best_t2 = t2.iter().map(|r| r.power_reduction).fold(0.0f64, f64::max);
    let best_t3 = t3.iter().map(|r| r.power_reduction).fold(0.0f64, f64::max);
    assert!(best_t3 <= best_t2 + 5.0, "gate level {best_t3} vs datapath {best_t2}");
}

#[test]
fn section_iv_extensions_behave_as_described() {
    // IV-A: reordering never loses to the default outputs-first order.
    let rows = reorder_ablation().unwrap();
    for circuit in ["dealer", "gcd", "vender"] {
        let best =
            rows.iter().find(|r| r.circuit == circuit && r.order == "reordered (best)").unwrap();
        let default =
            rows.iter().find(|r| r.circuit == circuit && r.order == "outputs-first").unwrap();
        assert!(best.power_reduction >= default.power_reduction - 1e-9);
    }

    // IV-B: pipelining adds slack, which never reduces the savings, at the
    // cost of latency (and usually extra registers).
    let rows = pipeline_ablation().unwrap();
    for circuit in ["dealer", "gcd", "vender"] {
        let by_stage: Vec<_> = rows.iter().filter(|r| r.circuit == circuit).collect();
        assert!(by_stage[2].power_reduction >= by_stage[0].power_reduction - 1e-9);
        assert!(by_stage[2].effective_steps > by_stage[0].effective_steps);
    }
}
