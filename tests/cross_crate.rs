//! Cross-crate consistency tests: quantities that are computed independently
//! in different crates must agree with each other.

use binding::{AreaModel, Datapath, FuBinding, RegisterAllocation};
use cdfg::OpClass;
use pmsched::{power_manage, PowerManagementOptions, SelectProbabilities};
use power::RandomVectors;
use rtl::{Controller, GateModel, Simulator};
use sched::hyper::{self, HyperOptions};

#[test]
fn schedule_resource_usage_matches_fu_binding_everywhere() {
    for bench in circuits::all_benchmarks() {
        if bench.name == "cordic" {
            continue; // covered by the dedicated cordic test below
        }
        for &steps in &bench.control_steps {
            let schedule =
                hyper::schedule(&bench.cdfg, &HyperOptions::with_latency(steps)).unwrap();
            let usage = schedule.resource_usage(&bench.cdfg);
            let binding = FuBinding::bind(&bench.cdfg, &schedule).unwrap();
            for class in OpClass::FUNCTIONAL {
                assert_eq!(
                    usage.count(class),
                    binding.unit_count(class),
                    "{} @ {}: {class}",
                    bench.name,
                    steps
                );
            }
        }
    }
}

#[test]
fn cordic_binding_matches_schedule_usage() {
    let cdfg = circuits::cordic();
    let schedule = hyper::schedule(&cdfg, &HyperOptions::with_latency(48)).unwrap();
    let usage = schedule.resource_usage(&cdfg);
    let binding = FuBinding::bind(&cdfg, &schedule).unwrap();
    for class in OpClass::FUNCTIONAL {
        assert_eq!(usage.count(class), binding.unit_count(class), "{class}");
    }
}

#[test]
fn register_allocation_covers_every_multi_step_value() {
    let cdfg = circuits::vender();
    let result = power_manage(&cdfg, &PowerManagementOptions::with_latency(6)).unwrap();
    let alloc = RegisterAllocation::allocate(result.cdfg(), result.schedule()).unwrap();
    for lifetime in alloc.lifetimes() {
        if lifetime.needs_register() {
            assert!(
                alloc.register_of(lifetime.value).is_some(),
                "value {} lives across steps but has no register",
                lifetime.value
            );
        }
    }
}

#[test]
fn activation_analysis_matches_simulated_gating_frequencies() {
    // The probabilistic activation analysis (Table II) and the RTL simulator
    // (Table III) must agree on *which* operations are gated; and for
    // comparison-driven muxes on uniform random inputs, the observed gating
    // frequency must be close to the predicted probability.
    let cdfg = circuits::vender();
    let result = power_manage(&cdfg, &PowerManagementOptions::with_latency(6)).unwrap();
    let activation = result.activation(&SelectProbabilities::fair());
    let controller = Controller::generate(&result);
    let mut sim = Simulator::new(result.cdfg(), result.schedule(), &controller).unwrap();

    let samples = 600;
    let mut gated_counts: std::collections::BTreeMap<cdfg::NodeId, u64> = Default::default();
    for sample in RandomVectors::new(&cdfg, 42).samples(samples) {
        let run = sim.run_sample(&sample).unwrap();
        for node in run.gated {
            *gated_counts.entry(node).or_insert(0) += 1;
        }
    }

    for node in activation.gated_nodes() {
        let observed = *gated_counts.get(&node).unwrap_or(&0) as f64 / samples as f64;
        let predicted_gated = 1.0 - activation.probability(node);
        // Greater-than comparisons of uniform 8-bit inputs are very close to
        // fair, so prediction and observation should agree within 15 points.
        assert!(
            (observed - predicted_gated).abs() < 0.15,
            "node {node}: observed gating {observed:.2}, predicted {predicted_gated:.2}"
        );
    }
    // And nothing outside the predicted set was ever gated.
    for (node, count) in &gated_counts {
        assert!(
            activation.gated_nodes().contains(node) || *count == 0,
            "unexpected gating of {node}"
        );
    }
}

#[test]
fn area_models_agree_on_relative_ordering() {
    // The datapath-level area model (binding crate) and the gate-level model
    // (rtl crate) are different abstractions, but they must order designs
    // the same way.
    let small = circuits::dealer();
    let large = circuits::vender();
    let small_result = power_manage(&small, &PowerManagementOptions::with_latency(5)).unwrap();
    let large_result = power_manage(&large, &PowerManagementOptions::with_latency(6)).unwrap();

    let small_dp = Datapath::build(small_result.cdfg(), small_result.schedule()).unwrap();
    let large_dp = Datapath::build(large_result.cdfg(), large_result.schedule()).unwrap();

    let area_model = AreaModel::new();
    let gate_model = GateModel::new();
    let small_ctrl = Controller::generate(&small_result);
    let large_ctrl = Controller::generate(&large_result);

    let small_area = area_model.estimate(&small_dp).total();
    let large_area = area_model.estimate(&large_dp).total();
    let small_gates = gate_model.expand(&small_dp, &small_ctrl).total();
    let large_gates = gate_model.expand(&large_dp, &large_ctrl).total();

    assert!(large_area > small_area, "vender is bigger than dealer at datapath level");
    assert!(large_gates > small_gates, "vender is bigger than dealer at gate level");
}

#[test]
fn controller_gating_terms_match_managed_mux_records() {
    let cdfg = circuits::gcd();
    let result = power_manage(&cdfg, &PowerManagementOptions::with_latency(7)).unwrap();
    let controller = Controller::generate(&result);
    // Every gating term's condition must be the select driver of a recorded
    // managed mux, and the gated node must be in that mux's shutdown sets.
    for enable in controller.enables() {
        for cond in &enable.conditions {
            let mm = result
                .managed_muxes()
                .iter()
                .find(|m| m.mux == cond.mux)
                .expect("gating mux is recorded");
            assert_eq!(mm.select_driver, cond.condition);
            let in_true = mm.shutdown_true.contains(&enable.node);
            let in_false = mm.shutdown_false.contains(&enable.node);
            assert!(in_true || in_false);
            assert_eq!(cond.active_when_one, in_true);
        }
    }
}

#[test]
fn silage_and_builder_paths_produce_equivalent_power_results() {
    let from_source = silage::compile(circuits::abs_diff_silage_source()).unwrap();
    let from_builder = circuits::abs_diff();
    let a = power_manage(&from_source, &PowerManagementOptions::with_latency(3)).unwrap();
    let b = power_manage(&from_builder, &PowerManagementOptions::with_latency(3)).unwrap();
    assert_eq!(a.managed_mux_count(), b.managed_mux_count());
    assert!((a.savings().reduction_percent - b.savings().reduction_percent).abs() < 1e-9);
}
