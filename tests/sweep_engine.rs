//! Workspace-level integration tests for the scenario-sweep engine: the
//! paper's golden points must survive the trip through plan expansion, the
//! work-stealing pool and the memo cache, and the experiment harness must
//! agree with the engine it is now built on.

use engine::{BranchModel, Engine, Scenario, SchedulerKind, SweepPlan};

/// Figure 2 through the engine: `|a - b|` at three control steps manages
/// exactly one multiplexor and one of the two subtractions disappears from
/// the expected counts (mirrors `golden_numbers.rs`, which pins the same
/// facts on the direct path).
#[test]
fn engine_reproduces_the_figure_2_golden_point() {
    let plan = SweepPlan::builder().case("abs_diff", 3).build().unwrap();
    let report = Engine::new().run(&plan, 2);
    let metrics = report.records[0].metrics().expect("abs_diff@3 is feasible");
    assert_eq!(metrics.pm_muxes, 1, "Figure 2 manages exactly one multiplexor");
    assert!((metrics.expected[3] - 1.0).abs() < 1e-9, "one subtraction per sample");
    assert!((metrics.expected[1] - 1.0).abs() < 1e-9, "the comparison always runs");
    assert!(metrics.power_reduction > 0.0);

    // Figure 1: at two control steps nothing can be gated.
    let plan = SweepPlan::builder().case("abs_diff", 2).build().unwrap();
    let report = Engine::new().run(&plan, 1);
    assert_eq!(report.records[0].metrics().unwrap().pm_muxes, 0);
}

/// The Table II rows produced through the engine match the direct
/// per-circuit API for the paper's headline circuit orderings.
#[test]
fn engine_backed_table2_keeps_the_paper_ordering() {
    let rows = experiments::table2().expect("table II sweep succeeds");
    assert_eq!(rows.len(), 10);
    let find = |circuit: &str, steps: u32| {
        rows.iter()
            .find(|r| r.circuit == circuit && r.control_steps == steps)
            .unwrap_or_else(|| panic!("{circuit}@{steps} present"))
    };
    let vender = find("vender", 6);
    let dealer = find("dealer", 6);
    let gcd = find("gcd", 7);
    assert!(vender.power_reduction > dealer.power_reduction);
    assert!(dealer.power_reduction > gcd.power_reduction);
}

/// The CI smoke matrix: every dimension except pipelining/cordic, two
/// worker threads, zero failures, and the aggregates cover every circuit.
#[test]
fn small_full_matrix_runs_clean_on_two_threads() {
    let (report, stats) = experiments::sweep::run_full_matrix(true, 2).unwrap();
    assert_eq!(report.failure_count(), 0);
    let circuits: Vec<&str> = report.summaries.iter().map(|s| s.circuit.as_str()).collect();
    assert_eq!(circuits, ["dealer", "gcd", "vender"]);
    assert!(stats.lookups() >= report.records.len() as u64);
    // Emitters stay consistent with the record count.
    assert_eq!(report.to_csv().lines().count(), report.records.len() + 1);
}

/// Scenario dimensions compose: a pipelined, reordered, list-scheduled,
/// biased-model scenario executes end to end and shares its prefix with the
/// equivalent unpipelined scenario at the same effective latency.
#[test]
fn composed_scenarios_share_prefixes_across_factorings() {
    let engine = Engine::new();
    let composed = SweepPlan::builder()
        .case("gcd", 5)
        .schedulers([SchedulerKind::List])
        .pipeline_depths([2])
        .reorder([true])
        .branch_models([BranchModel::biased(200)])
        .build()
        .unwrap();
    let report = engine.run(&composed, 1);
    let metrics = report.records[0].metrics().expect("composed scenario runs");
    assert_eq!(metrics.effective_latency, 10);

    let factored = SweepPlan::builder()
        .case("gcd", 10)
        .schedulers([SchedulerKind::List])
        .reorder([true])
        .build()
        .unwrap();
    let report = engine.run(&factored, 1);
    let stats = engine.cache_stats();
    assert_eq!(stats.misses, 1, "gcd@10 reuses the (gcd, 10, list, reorder) prefix");
    assert_eq!(
        report
            .record_for(&Scenario::new("gcd", 10).scheduler(SchedulerKind::List).reorder(true))
            .unwrap()
            .metrics()
            .unwrap()
            .pm_muxes,
        metrics.pm_muxes
    );
}
