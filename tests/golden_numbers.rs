//! Golden tests pinning the paper's headline numbers.
//!
//! These assert exact values (not just shapes) so that refactors of the
//! scheduler, the savings model, or the weight tables cannot silently drift
//! away from the DAC'96 reference points:
//!
//! * the `|a - b|` walkthrough of Figures 1 and 2, and
//! * the Table II relative power weights (MUX 1, COMP 4, + 3, − 3, × 20).

use cdfg::OpClass;
use circuits::abs_diff;
use pmsched::{power_manage, OpWeights, PowerManagementOptions};

/// Figure 2: at latency 3 the `|a - b|` example manages exactly one mux and
/// the savings model predicts a strictly positive power reduction.
#[test]
fn abs_diff_at_latency_3_manages_one_mux_and_saves_power() {
    let result = power_manage(&abs_diff(), &PowerManagementOptions::with_latency(3)).unwrap();
    assert_eq!(result.managed_mux_count(), 1, "Figure 2 manages exactly one multiplexor");

    let savings = result.savings();
    assert!(
        savings.reduction_percent > 0.0,
        "power management must predict a positive reduction, got {}%",
        savings.reduction_percent
    );
    // Only one of the two subtractions executes per sample once the mux is
    // managed (Figure 2's whole point), while the comparison always runs.
    assert!((savings.expected(OpClass::Sub) - 1.0).abs() < 1e-9);
    assert!((savings.expected(OpClass::Comp) - 1.0).abs() < 1e-9);
}

/// Figure 1: at latency 2 the schedule is forced and nothing can be gated.
#[test]
fn abs_diff_at_latency_2_cannot_be_managed() {
    let result = power_manage(&abs_diff(), &PowerManagementOptions::with_latency(2)).unwrap();
    assert_eq!(result.managed_mux_count(), 0, "Figure 1 admits no power management");
}

/// Table II's relative execution-unit power weights, verbatim from the
/// paper.  `OpWeights::default()` must stay aliased to them.
#[test]
fn table2_power_weights_survive_refactors() {
    for weights in [OpWeights::paper_power(), OpWeights::default()] {
        assert_eq!(weights.weight(OpClass::Mux), 1.0);
        assert_eq!(weights.weight(OpClass::Comp), 4.0);
        assert_eq!(weights.weight(OpClass::Add), 3.0);
        assert_eq!(weights.weight(OpClass::Sub), 3.0);
        assert_eq!(weights.weight(OpClass::Mul), 20.0);
    }
}
