//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! minimal benchmarking harness with criterion's surface API: `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! It performs a short warm-up, then times `sample_size` batches and prints
//! min/mean/max per benchmark.  There is no statistical analysis, outlier
//! rejection, or HTML report — these numbers are smoke-level only, but the
//! bench *code* is identical to what would run under real criterion.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], criterion-style.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup {name}");
        BenchmarkGroup { name, sample_size: self.sample_size, _criterion: self }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into().label, self.sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Benchmarks a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// Benchmarks a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifies one benchmark, optionally parameterised.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { label: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(label: &str) -> Self {
        BenchmarkId { label: label.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(label: String) -> Self {
        BenchmarkId { label }
    }
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u32,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up, which also keeps the routine's side effects observable.
        for _ in 0..2 {
            black_box(routine());
        }
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / self.iters_per_sample);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher { samples: Vec::new(), iters_per_sample: 3 };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    if bencher.samples.is_empty() {
        println!("  {label}: no samples recorded");
        return;
    }
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    let mean = bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32;
    println!("  {label}: min {min:?}  mean {mean:?}  max {max:?}  ({sample_size} samples)");
}

/// Groups benchmark functions, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_and_ids_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(2);
        let mut runs = 0usize;
        group.bench_function("plain", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("with_input", 3), &3u32, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            runs += 1;
            b.iter(|| black_box(n + 1))
        });
        group.finish();
        assert_eq!(runs, 2);
    }
}
