//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! small, fully deterministic property-testing harness exposing the API
//! subset the `tests/properties.rs` suites use:
//!
//! - the [`proptest!`] macro with an optional `#![proptest_config(..)]`
//!   inner attribute and `arg in strategy` bindings,
//! - [`Strategy`] with `prop_map` and `prop_recursive`,
//! - range strategies (`0i64..100`), tuple strategies, [`Just`],
//!   [`prop_oneof!`] and `prop::collection::vec`,
//! - [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Unlike upstream proptest there is **no shrinking** and no persistence;
//! every run draws the same cases from a seed derived from the test name, so
//! the suites are reproducible by construction.

use std::rc::Rc;

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property is checked against.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic splitmix64 stream used to drive generation.
///
/// Each property seeds its own stream from the test name and case index, so
/// cases are independent of execution order and stable across runs.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a stream from a raw seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed ^ 0x5851_f42d_4c95_7f2d }
    }

    /// Creates the stream for one case of one named property.
    pub fn for_case(test_name: &str, case: u32) -> Self {
        // FNV-1a over the test name keeps unrelated properties decorrelated.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in test_name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(hash.wrapping_add((case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "cannot draw below 0");
        self.next_u64() % bound
    }
}

/// A generator of random values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value from the deterministic stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates leaves and `branch`
    /// wraps an inner strategy into composite cases, nested at most `depth`
    /// levels deep.  The `_desired_size` / `_expected_branch_size` hints are
    /// accepted for API compatibility and ignored.
    fn prop_recursive<F, S>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        branch: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
        S: Strategy<Value = Self::Value> + 'static,
    {
        let leaf: BoxedStrategy<Self::Value> = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let composite = branch(current).boxed();
            current = Union::new(vec![leaf.clone(), composite]).boxed();
        }
        current
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between several strategies of the same value type.
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "Union requires at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for std::ops::Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % width;
                (self.start as i128 + draw as i128) as $ty
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length is uniform in `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let len = self.len.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The usual glob import, mirroring `proptest::prelude::*`.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy, TestRng,
    };

    /// Namespace alias so `prop::collection::vec` resolves as it does with
    /// the real crate's prelude.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines deterministic property tests.  See the crate docs for the
/// supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng =
                        $crate::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg =
                            $crate::Strategy::generate(&($strat), &mut __proptest_rng);
                    )+
                    $body
                }
            }
        )*
    };
}

/// Asserts a property holds; panics (failing the case) otherwise.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts two values are unequal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniform choice between strategies; all arms must share a value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_tuples_and_vec_generate_in_bounds() {
        let strat = (2usize..5, prop::collection::vec((0u8..6, 0usize..64), 1..40));
        let mut rng = TestRng::for_case("bounds", 0);
        for _ in 0..200 {
            let (n, v) = Strategy::generate(&strat, &mut rng);
            assert!((2..5).contains(&n));
            assert!((1..40).contains(&v.len()));
            for (a, b) in v {
                assert!(a < 6);
                assert!(b < 64);
            }
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        let leaf = prop_oneof![Just("x".to_owned()), (0i64..10).prop_map(|n| n.to_string())];
        let expr = leaf.prop_recursive(3, 24, 3, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| format!("({l}+{r})"))
        });
        let mut rng = TestRng::for_case("recursive", 1);
        for _ in 0..100 {
            let s = Strategy::generate(&expr, &mut rng);
            assert!(!s.is_empty());
            assert!(s.matches('(').count() <= 2u32.pow(3) as usize);
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let strat = prop::collection::vec(0i64..1000, 1..20);
        let a: Vec<i64> = Strategy::generate(&strat, &mut TestRng::for_case("det", 3));
        let b: Vec<i64> = Strategy::generate(&strat, &mut TestRng::for_case("det", 3));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// The macro itself compiles and runs with multiple bindings.
        #[test]
        fn macro_smoke(a in -50i64..50, b in 0usize..9) {
            prop_assert!((-50..50).contains(&a));
            prop_assert!(b < 9);
            prop_assert_eq!(a, a);
        }
    }
}
