//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access, so this workspace vendors a
//! tiny, deterministic implementation of the API subset it uses:
//! `rand::rngs::StdRng`, `SeedableRng::seed_from_u64` and `Rng::gen_range`
//! over half-open integer ranges.  The generator is splitmix64, which is
//! plenty for reproducible test vectors (this is *not* a cryptographic or
//! statistically rigorous RNG, and it does not match upstream `StdRng`'s
//! stream — seeds here produce their own stable sequence).

use std::ops::Range;

/// Seedable random-number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface implemented by all generators.
pub trait Rng {
    /// Returns the next raw 64 bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Samples uniformly from a half-open range.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

/// Ranges that can be sampled uniformly.  Implemented for the half-open
/// integer ranges this workspace uses.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $ty {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % width;
                (self.start as i128 + draw as i128) as $ty
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

pub mod rngs {
    //! Concrete generator types.

    use super::{Rng, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u: usize = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }
}
