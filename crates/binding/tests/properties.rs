//! Property-based tests for the allocation passes: random conditional
//! designs are scheduled and bound, and the structural invariants of the
//! binding must always hold.

use binding::{AreaModel, Datapath, FuBinding, RegisterAllocation};
use cdfg::{Cdfg, NodeId, Op};
use proptest::prelude::*;
use sched::hyper::{self, HyperOptions};

#[derive(Debug, Clone)]
struct Recipe {
    num_inputs: usize,
    steps: Vec<(u8, usize, usize, usize)>,
    extra_latency: u32,
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    (2usize..5, prop::collection::vec((0u8..8, 0usize..64, 0usize..64, 0usize..64), 1..28), 0u32..5)
        .prop_map(|(num_inputs, steps, extra_latency)| Recipe { num_inputs, steps, extra_latency })
}

fn build(recipe: &Recipe) -> Cdfg {
    let mut g = Cdfg::new("random");
    let mut values: Vec<NodeId> = Vec::new();
    for i in 0..recipe.num_inputs {
        values.push(g.add_input(format!("in{i}")));
    }
    for &(opcode, a, b, c) in &recipe.steps {
        let pick = |idx: usize| values[idx % values.len()];
        let node = match opcode {
            0 => g.add_op(Op::Add, &[pick(a), pick(b)]).unwrap(),
            1 => g.add_op(Op::Sub, &[pick(a), pick(b)]).unwrap(),
            2 => g.add_op(Op::Mul, &[pick(a), pick(b)]).unwrap(),
            3 => g.add_op(Op::Gt, &[pick(a), pick(b)]).unwrap(),
            _ => {
                let sel = g.add_op(Op::Lt, &[pick(a), pick(b)]).unwrap();
                g.add_mux(sel, pick(b), pick(c)).unwrap()
            }
        };
        values.push(node);
    }
    let last = *values.last().expect("nonempty");
    g.add_output("out", last).unwrap();
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Two operations bound to the same unit never share a control step, and
    /// units only execute operations of their own class.
    #[test]
    fn unit_binding_respects_steps_and_classes(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let latency = g.critical_path_length().max(1) + recipe.extra_latency;
        let schedule = hyper::schedule(&g, &HyperOptions::with_latency(latency)).unwrap();
        let binding = FuBinding::bind(&g, &schedule).unwrap();
        for unit in binding.units() {
            let nodes = binding.nodes_on_unit(unit.id);
            let mut steps: Vec<u32> = nodes.iter().map(|&n| schedule.step_of(n).unwrap()).collect();
            steps.sort_unstable();
            let unique = {
                let mut s = steps.clone();
                s.dedup();
                s
            };
            prop_assert_eq!(steps.len(), unique.len(), "unit {} double-booked", unit.name);
            for &n in &nodes {
                prop_assert_eq!(g.node(n).unwrap().op.class(), unit.class);
            }
        }
        // Every functional node is bound exactly once.
        for n in g.functional_nodes() {
            prop_assert!(binding.unit_of(n).is_some());
        }
    }

    /// Values sharing a register never have overlapping lifetimes, and every
    /// value consumed in a later step than it is produced has a register.
    #[test]
    fn register_allocation_is_conflict_free(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let latency = g.critical_path_length().max(1) + recipe.extra_latency;
        let schedule = hyper::schedule(&g, &HyperOptions::with_latency(latency)).unwrap();
        let alloc = RegisterAllocation::allocate(&g, &schedule).unwrap();
        for reg in alloc.registers() {
            for (i, &v1) in reg.values.iter().enumerate() {
                for &v2 in &reg.values[i + 1..] {
                    let l1 = alloc.lifetime(v1).unwrap();
                    let l2 = alloc.lifetime(v2).unwrap();
                    prop_assert!(!l1.overlaps(&l2));
                }
            }
        }
        for lifetime in alloc.lifetimes() {
            if lifetime.needs_register() {
                prop_assert!(alloc.register_of(lifetime.value).is_some());
            }
        }
    }

    /// The assembled datapath routes every operand of every functional node,
    /// and its area estimate is positive and consistent.
    #[test]
    fn datapath_routes_every_operand(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let latency = g.critical_path_length().max(1) + recipe.extra_latency;
        let schedule = hyper::schedule(&g, &HyperOptions::with_latency(latency)).unwrap();
        let dp = Datapath::build(&g, &schedule).unwrap();
        for node in g.functional_nodes() {
            let arity = g.node(node).unwrap().op.arity();
            for port in 0..arity as u16 {
                prop_assert!(dp.operand_source(node, port).is_some());
            }
        }
        let est = AreaModel::new().estimate(&dp);
        prop_assert!(est.units > 0.0);
        prop_assert!(est.total() >= est.units);
    }

    /// Register count never exceeds the number of values that need storage,
    /// and never drops below the maximum number of simultaneously live
    /// values (a lower bound on any legal allocation).
    #[test]
    fn register_count_is_bounded(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let latency = g.critical_path_length().max(1) + recipe.extra_latency;
        let schedule = hyper::schedule(&g, &HyperOptions::with_latency(latency)).unwrap();
        let alloc = RegisterAllocation::allocate(&g, &schedule).unwrap();
        let needing: Vec<_> = alloc.lifetimes().filter(|l| l.needs_register()).collect();
        prop_assert!(alloc.register_count() <= needing.len());
        // Lower bound: the peak number of overlapping lifetimes.
        let mut peak = 0usize;
        for step in 0..=schedule.num_steps() {
            let live = needing
                .iter()
                .filter(|l| l.birth <= step && step < l.death)
                .count();
            peak = peak.max(live);
        }
        prop_assert!(alloc.register_count() >= peak);
    }
}
