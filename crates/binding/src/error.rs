//! Error type for the allocation passes.

use std::fmt;

use cdfg::NodeId;

/// Errors produced while binding a scheduled CDFG onto hardware.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BindError {
    /// A functional operation has no control step assigned.
    UnscheduledNode(NodeId),
    /// The schedule refers to a node that does not exist in the CDFG.
    UnknownNode(NodeId),
    /// The schedule failed validation before binding.
    InvalidSchedule(String),
}

impl fmt::Display for BindError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BindError::UnscheduledNode(n) => write!(f, "node {n} has no control step assigned"),
            BindError::UnknownNode(n) => write!(f, "schedule refers to unknown node {n}"),
            BindError::InvalidSchedule(msg) => write!(f, "invalid schedule: {msg}"),
        }
    }
}

impl std::error::Error for BindError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(BindError::UnscheduledNode(NodeId::new(4)).to_string().contains("n4"));
        assert!(BindError::InvalidSchedule("x".into()).to_string().contains("invalid"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<BindError>();
    }
}
