//! Relative area estimation of a datapath.
//!
//! The paper reports area as relative numbers (Table II gives a ratio, Table
//! III the Synopsys cell-area estimate).  This model counts equivalent
//! two-input-gate area per bit for each component class, which is enough to
//! reproduce both shapes: the execution-unit ratio of Table II and the
//! total-area comparison of Table III (once the controller area from the
//! `rtl` crate is added).

use std::fmt;

use cdfg::OpClass;
use pmsched::OpWeights;

use crate::datapath::Datapath;

/// Gate-equivalents-per-bit model for datapath components.
#[derive(Debug, Clone, PartialEq)]
pub struct AreaModel {
    /// Relative area of one execution unit of each class, per bit of
    /// datapath width.
    pub unit_weights: OpWeights,
    /// Area of one register bit.
    pub register_bit: f64,
    /// Area of one steering-multiplexor data input, per bit.
    pub steering_input_bit: f64,
}

impl AreaModel {
    /// The default model: unit areas from [`OpWeights::paper_area`], one
    /// gate-equivalent per register bit and a third of a gate per steering
    /// input bit.
    pub fn new() -> Self {
        AreaModel {
            unit_weights: OpWeights::paper_area(),
            register_bit: 1.0,
            steering_input_bit: 0.35,
        }
    }

    /// Estimates the area of `datapath`.
    pub fn estimate(&self, datapath: &Datapath) -> AreaEstimate {
        let bits = f64::from(datapath.bitwidth());
        let units: f64 =
            datapath.units().iter().map(|u| self.unit_weights.weight(u.class) * bits).sum();
        let registers = datapath.registers().len() as f64 * self.register_bit * bits;
        let interconnect = datapath.steering_input_count() as f64 * self.steering_input_bit * bits;
        AreaEstimate { units, registers, interconnect }
    }

    /// Area of the execution units only (the quantity whose ratio Table II
    /// reports in the "Area Incr." column).
    pub fn unit_area(&self, datapath: &Datapath) -> f64 {
        self.estimate(datapath).units
    }

    /// Area of one execution unit of `class` at `bits` datapath width.
    pub fn unit_area_of(&self, class: OpClass, bits: u32) -> f64 {
        self.unit_weights.weight(class) * f64::from(bits)
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::new()
    }
}

/// The area breakdown of a datapath, in relative gate-equivalent units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaEstimate {
    /// Execution units.
    pub units: f64,
    /// Registers.
    pub registers: f64,
    /// Steering (interconnect) multiplexors.
    pub interconnect: f64,
}

impl AreaEstimate {
    /// Total datapath area.
    pub fn total(&self) -> f64 {
        self.units + self.registers + self.interconnect
    }
}

impl fmt::Display for AreaEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "area: units {:.1} + registers {:.1} + interconnect {:.1} = {:.1}",
            self.units,
            self.registers,
            self.interconnect,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datapath::Datapath;
    use cdfg::{Cdfg, Op};
    use sched::hyper::{self, HyperOptions};

    fn abs_diff() -> Cdfg {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        g
    }

    #[test]
    fn two_subtractors_cost_more_unit_area_than_one() {
        let g = abs_diff();
        let model = AreaModel::new();
        let two_subs =
            Datapath::build(&g, &hyper::schedule(&g, &HyperOptions::with_latency(2)).unwrap())
                .unwrap();
        let one_sub =
            Datapath::build(&g, &hyper::schedule(&g, &HyperOptions::with_latency(3)).unwrap())
                .unwrap();
        assert!(model.unit_area(&two_subs) > model.unit_area(&one_sub));
    }

    #[test]
    fn estimate_components_are_positive_and_sum() {
        let g = abs_diff();
        let dp = Datapath::build(&g, &hyper::schedule(&g, &HyperOptions::with_latency(3)).unwrap())
            .unwrap();
        let est = AreaModel::default().estimate(&dp);
        assert!(est.units > 0.0);
        assert!(est.registers > 0.0);
        assert!((est.total() - (est.units + est.registers + est.interconnect)).abs() < 1e-9);
        assert!(est.to_string().contains("area:"));
    }

    #[test]
    fn unit_area_scales_with_bitwidth() {
        let model = AreaModel::new();
        assert_eq!(model.unit_area_of(OpClass::Add, 16), 2.0 * model.unit_area_of(OpClass::Add, 8));
        assert!(model.unit_area_of(OpClass::Mul, 8) > model.unit_area_of(OpClass::Add, 8));
    }
}
