//! The assembled datapath: execution units, registers and steering logic.

use std::collections::{BTreeMap, BTreeSet};

use cdfg::{Cdfg, NodeId};
use sched::Schedule;

use crate::error::BindError;
use crate::fu::{FuBinding, UnitId};
use crate::register::{RegisterAllocation, RegisterId};

/// Where a unit input operand comes from in a given control step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OperandSource {
    /// A register of the datapath.
    Register(RegisterId),
    /// A constant hard-wired into the steering logic.
    Constant(i64),
    /// The operand is produced by a unit in the same control step (chaining
    /// is not used by this flow, but the representation allows it so the
    /// simulator can fall back to forwarding when a value is produced and
    /// consumed in the same step).
    Forward(NodeId),
}

/// One input port of one execution unit, together with every source that is
/// ever routed to it.  More than one source means a steering multiplexor is
/// needed in front of the port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortRouting {
    /// The unit the port belongs to.
    pub unit: UnitId,
    /// The port index (0-based operand position).
    pub port: u16,
    /// Every distinct source routed to this port across all control steps.
    pub sources: BTreeSet<OperandSource>,
}

impl PortRouting {
    /// Number of steering-multiplexor data inputs this port requires
    /// (0 when a single source is wired directly).
    pub fn steering_inputs(&self) -> usize {
        if self.sources.len() > 1 {
            self.sources.len()
        } else {
            0
        }
    }
}

/// The complete datapath model produced from a scheduled, bound design.
#[derive(Debug, Clone)]
pub struct Datapath {
    fu: FuBinding,
    registers: RegisterAllocation,
    routing: Vec<PortRouting>,
    operand_sources: BTreeMap<(NodeId, u16), OperandSource>,
    bitwidth: u32,
}

impl Datapath {
    /// Builds the datapath for a scheduled CDFG: binds operations to units,
    /// allocates registers and derives the steering network.
    ///
    /// # Errors
    ///
    /// Propagates binding errors (unscheduled or unknown nodes).
    pub fn build(cdfg: &Cdfg, schedule: &Schedule) -> Result<Self, BindError> {
        Datapath::build_partitioned(cdfg, schedule, &|_| 0)
    }

    /// Builds the datapath with a unit-sharing partition (see
    /// [`FuBinding::bind_partitioned`]): operations in different partitions
    /// — e.g. at different supply voltages — never share an execution
    /// unit, so the resulting area reflects the voltage-partitioned
    /// binding.  `build` is the single-partition case and produces an
    /// identical datapath.
    ///
    /// # Errors
    ///
    /// Propagates binding errors (unscheduled or unknown nodes).
    pub fn build_partitioned(
        cdfg: &Cdfg,
        schedule: &Schedule,
        partition: &dyn Fn(NodeId) -> u32,
    ) -> Result<Self, BindError> {
        let fu = FuBinding::bind_partitioned(cdfg, schedule, partition)?;
        let registers = RegisterAllocation::allocate(cdfg, schedule)?;

        let mut routing_map: BTreeMap<(UnitId, u16), BTreeSet<OperandSource>> = BTreeMap::new();
        let mut operand_sources: BTreeMap<(NodeId, u16), OperandSource> = BTreeMap::new();

        for node in cdfg.functional_nodes() {
            let unit = fu.unit_of(node).ok_or(BindError::UnscheduledNode(node))?;
            for (port, operand) in cdfg.operands(node).into_iter().enumerate() {
                let source = source_of(cdfg, &registers, schedule, node, operand);
                routing_map.entry((unit, port as u16)).or_default().insert(source);
                operand_sources.insert((node, port as u16), source);
            }
        }

        let routing = routing_map
            .into_iter()
            .map(|((unit, port), sources)| PortRouting { unit, port, sources })
            .collect();

        Ok(Datapath { fu, registers, routing, operand_sources, bitwidth: cdfg.default_bitwidth() })
    }

    /// The functional-unit binding.
    pub fn fu_binding(&self) -> &FuBinding {
        &self.fu
    }

    /// The register allocation.
    pub fn register_allocation(&self) -> &RegisterAllocation {
        &self.registers
    }

    /// The physical execution units.
    pub fn units(&self) -> &[crate::fu::FunctionalUnit] {
        self.fu.units()
    }

    /// The physical registers.
    pub fn registers(&self) -> &[crate::register::Register] {
        self.registers.registers()
    }

    /// Per-port routing information (the steering network).
    pub fn routing(&self) -> &[PortRouting] {
        &self.routing
    }

    /// The datapath word width in bits.
    pub fn bitwidth(&self) -> u32 {
        self.bitwidth
    }

    /// The source feeding operand `port` of operation `node`.
    pub fn operand_source(&self, node: NodeId, port: u16) -> Option<OperandSource> {
        self.operand_sources.get(&(node, port)).copied()
    }

    /// Total number of steering-multiplexor data inputs in the datapath (a
    /// proxy for interconnect complexity and area).
    pub fn steering_input_count(&self) -> usize {
        self.routing.iter().map(PortRouting::steering_inputs).sum()
    }
}

fn source_of(
    cdfg: &Cdfg,
    registers: &RegisterAllocation,
    schedule: &Schedule,
    consumer: NodeId,
    operand: NodeId,
) -> OperandSource {
    let data = cdfg.node(operand).expect("live operand");
    if let cdfg::Op::Const(c) = data.op {
        return OperandSource::Constant(c);
    }
    if let Some(reg) = registers.register_of(operand) {
        // Same-step production (chaining) still reads the forwarded value,
        // not the register, because the register is only loaded at the end
        // of the producing step.
        let produced = registers.lifetime(operand).map(|l| l.birth).unwrap_or(0);
        let consumed = schedule.step_of(consumer).unwrap_or(u32::MAX);
        if produced == consumed && data.op.is_functional() {
            return OperandSource::Forward(operand);
        }
        return OperandSource::Register(reg);
    }
    OperandSource::Forward(operand)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::{Op, OpClass};
    use sched::hyper::{self, HyperOptions};

    fn abs_diff() -> Cdfg {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        g
    }

    #[test]
    fn datapath_has_units_registers_and_routing() {
        let g = abs_diff();
        let s = hyper::schedule(&g, &HyperOptions::with_latency(3)).unwrap();
        let dp = Datapath::build(&g, &s).unwrap();
        assert_eq!(dp.fu_binding().unit_count(OpClass::Sub), 1);
        assert!(dp.registers().len() >= 3, "inputs plus intermediates need storage");
        assert!(!dp.routing().is_empty());
        assert_eq!(dp.bitwidth(), 8);
    }

    #[test]
    fn shared_subtractor_needs_steering() {
        // With one subtractor executing both a-b and b-a, its two input
        // ports each see two different sources, so steering muxes appear.
        let g = abs_diff();
        let s = hyper::schedule(&g, &HyperOptions::with_latency(3)).unwrap();
        let dp = Datapath::build(&g, &s).unwrap();
        assert!(dp.steering_input_count() >= 4);

        // With two subtractors (latency 2) each port has a single source.
        let s2 = hyper::schedule(&g, &HyperOptions::with_latency(2)).unwrap();
        let dp2 = Datapath::build(&g, &s2).unwrap();
        assert!(dp2.steering_input_count() < dp.steering_input_count());
    }

    #[test]
    fn constants_are_wired_not_registered() {
        let mut g = Cdfg::new("clamp");
        let x = g.add_input("x");
        let hi = g.add_const(100);
        let over = g.add_op(Op::Gt, &[x, hi]).unwrap();
        let m = g.add_mux(over, x, hi).unwrap();
        g.add_output("y", m).unwrap();
        let s = hyper::schedule(&g, &HyperOptions::with_latency(2)).unwrap();
        let dp = Datapath::build(&g, &s).unwrap();
        assert_eq!(dp.operand_source(over, 1), Some(OperandSource::Constant(100)));
    }

    #[test]
    fn every_operand_has_a_source() {
        let g = abs_diff();
        for latency in 2..=4 {
            let s = hyper::schedule(&g, &HyperOptions::with_latency(latency)).unwrap();
            let dp = Datapath::build(&g, &s).unwrap();
            for node in g.functional_nodes() {
                for port in 0..g.node(node).unwrap().op.arity() as u16 {
                    assert!(
                        dp.operand_source(node, port).is_some(),
                        "missing source for {node}:{port}"
                    );
                }
            }
        }
    }
}
