//! Functional-unit binding.
//!
//! Operations scheduled in the same control step must execute on different
//! execution units of their class; operations in different steps may share a
//! unit.  The binder sweeps the schedule step by step and assigns each
//! operation the lowest-numbered free unit of its class, which yields exactly
//! the per-class peak concurrency of the schedule — the same number of units
//! [`sched::Schedule::resource_usage`] reports.

use std::collections::BTreeMap;
use std::fmt;

use cdfg::{Cdfg, NodeId, OpClass};
use sched::Schedule;

use crate::error::BindError;

/// Identifier of a physical execution unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnitId(u32);

impl UnitId {
    /// Creates a unit id from a raw index.
    pub fn new(index: u32) -> Self {
        UnitId(index)
    }

    /// The raw index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// A physical execution unit of the datapath.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalUnit {
    /// Unit id (unique across all classes).
    pub id: UnitId,
    /// The operation class the unit implements.
    pub class: OpClass,
    /// Instance name, e.g. `sub_0`.
    pub name: String,
}

/// The result of functional-unit binding.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuBinding {
    units: Vec<FunctionalUnit>,
    assignment: BTreeMap<NodeId, UnitId>,
}

impl FuBinding {
    /// Binds every scheduled functional operation of `cdfg` to a unit.
    ///
    /// # Errors
    ///
    /// Returns [`BindError::UnscheduledNode`] if a functional node has no
    /// step assigned.
    pub fn bind(cdfg: &Cdfg, schedule: &Schedule) -> Result<Self, BindError> {
        FuBinding::bind_partitioned(cdfg, schedule, &|_| 0)
    }

    /// Binds with a *sharing partition*: operations may share a unit only
    /// when `partition` agrees on them.  This is how per-operation voltage
    /// reaches the area model — two operations at different supply levels
    /// cannot run on the same physical unit, so the explorer passes the
    /// voltage level as the partition and the extra units show up as area.
    ///
    /// `bind` is the single-partition case (`|_| 0`) and produces an
    /// identical binding — same unit ids, names and assignment.
    ///
    /// # Errors
    ///
    /// Returns [`BindError::UnscheduledNode`] if a functional node has no
    /// step assigned.
    pub fn bind_partitioned(
        cdfg: &Cdfg,
        schedule: &Schedule,
        partition: &dyn Fn(NodeId) -> u32,
    ) -> Result<Self, BindError> {
        // Units per (class, partition), created on demand.
        // `pools[key][k]` is the unit id of the k-th unit of that key.
        let mut pools: BTreeMap<(OpClass, u32), Vec<UnitId>> = BTreeMap::new();
        let mut units: Vec<FunctionalUnit> = Vec::new();
        let mut assignment: BTreeMap<NodeId, UnitId> = BTreeMap::new();

        for node in cdfg.functional_nodes() {
            if schedule.step_of(node).is_none() {
                return Err(BindError::UnscheduledNode(node));
            }
        }

        for step in 1..=schedule.num_steps() {
            // Operations of this step grouped by class and partition, in
            // node order for determinism.
            let mut by_key: BTreeMap<(OpClass, u32), Vec<NodeId>> = BTreeMap::new();
            for node in schedule.nodes_in_step(step) {
                if let Some(data) = cdfg.node(node) {
                    if data.op.is_functional() {
                        by_key.entry((data.op.class(), partition(node))).or_default().push(node);
                    }
                }
            }
            for ((class, part), nodes) in by_key {
                let pool = pools.entry((class, part)).or_default();
                for (k, node) in nodes.into_iter().enumerate() {
                    if k >= pool.len() {
                        let id = UnitId(units.len() as u32);
                        units.push(FunctionalUnit {
                            id,
                            class,
                            name: format!(
                                "{}_{}",
                                class.label().to_lowercase().replace(['+', '-', '*', '/'], "fu"),
                                k
                            ),
                        });
                        pool.push(id);
                    }
                    assignment.insert(node, pool[k]);
                }
            }
        }

        // Give the units friendlier names now that the per-class counts are
        // known (e.g. `sub_0`, `sub_1`).
        let mut per_class_counter: BTreeMap<OpClass, u32> = BTreeMap::new();
        for unit in &mut units {
            let counter = per_class_counter.entry(unit.class).or_insert(0);
            unit.name = format!("{}_{}", class_prefix(unit.class), counter);
            *counter += 1;
        }

        Ok(FuBinding { units, assignment })
    }

    /// All physical units, ordered by id.
    pub fn units(&self) -> &[FunctionalUnit] {
        &self.units
    }

    /// The unit executing `node`, if it was bound.
    pub fn unit_of(&self, node: NodeId) -> Option<UnitId> {
        self.assignment.get(&node).copied()
    }

    /// The unit record for `id`.
    pub fn unit(&self, id: UnitId) -> Option<&FunctionalUnit> {
        self.units.get(id.index())
    }

    /// All operations bound to `unit`, in node order.
    pub fn nodes_on_unit(&self, unit: UnitId) -> Vec<NodeId> {
        self.assignment.iter().filter(|(_, &u)| u == unit).map(|(&n, _)| n).collect()
    }

    /// Number of units of `class`.
    pub fn unit_count(&self, class: OpClass) -> usize {
        self.units.iter().filter(|u| u.class == class).count()
    }

    /// Iterates over `(node, unit)` assignments.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, UnitId)> + '_ {
        self.assignment.iter().map(|(&n, &u)| (n, u))
    }
}

fn class_prefix(class: OpClass) -> &'static str {
    match class {
        OpClass::Mux => "mux",
        OpClass::Comp => "cmp",
        OpClass::Add => "add",
        OpClass::Sub => "sub",
        OpClass::Mul => "mul",
        OpClass::Div => "div",
        OpClass::Logic => "log",
        OpClass::Structural => "io",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::Op;
    use sched::hyper::{self, HyperOptions};

    fn abs_diff() -> (Cdfg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        (g, gt, amb, bma, m)
    }

    #[test]
    fn same_step_operations_get_distinct_units() {
        let (g, _gt, amb, bma, _m) = abs_diff();
        let s = hyper::schedule(&g, &HyperOptions::with_latency(2)).unwrap();
        let binding = FuBinding::bind(&g, &s).unwrap();
        // Two subtractions in step 1 need two subtractors.
        assert_eq!(binding.unit_count(OpClass::Sub), 2);
        assert_ne!(binding.unit_of(amb), binding.unit_of(bma));
    }

    #[test]
    fn different_step_operations_share_a_unit() {
        let (g, _gt, amb, bma, _m) = abs_diff();
        let s = hyper::schedule(&g, &HyperOptions::with_latency(3)).unwrap();
        let binding = FuBinding::bind(&g, &s).unwrap();
        assert_eq!(binding.unit_count(OpClass::Sub), 1);
        assert_eq!(binding.unit_of(amb), binding.unit_of(bma));
        let shared = binding.unit_of(amb).unwrap();
        assert_eq!(binding.nodes_on_unit(shared).len(), 2);
    }

    #[test]
    fn binding_matches_schedule_resource_usage() {
        let (g, ..) = abs_diff();
        for latency in 2..=4 {
            let s = hyper::schedule(&g, &HyperOptions::with_latency(latency)).unwrap();
            let usage = s.resource_usage(&g);
            let binding = FuBinding::bind(&g, &s).unwrap();
            for class in OpClass::FUNCTIONAL {
                assert_eq!(
                    binding.unit_count(class),
                    usage.count(class),
                    "latency {latency}, class {class}"
                );
            }
        }
    }

    #[test]
    fn unit_names_are_per_class() {
        let (g, ..) = abs_diff();
        let s = hyper::schedule(&g, &HyperOptions::with_latency(2)).unwrap();
        let binding = FuBinding::bind(&g, &s).unwrap();
        let names: Vec<&str> = binding.units().iter().map(|u| u.name.as_str()).collect();
        assert!(names.contains(&"sub_0"));
        assert!(names.contains(&"sub_1"));
        assert!(names.contains(&"cmp_0"));
        assert!(names.contains(&"mux_0"));
    }

    #[test]
    fn single_partition_binding_is_identical_to_bind() {
        let (g, ..) = abs_diff();
        for latency in 2..=4 {
            let s = hyper::schedule(&g, &HyperOptions::with_latency(latency)).unwrap();
            let plain = FuBinding::bind(&g, &s).unwrap();
            let partitioned = FuBinding::bind_partitioned(&g, &s, &|_| 0).unwrap();
            assert_eq!(plain, partitioned, "latency {latency}");
        }
    }

    #[test]
    fn partitioned_operations_never_share_a_unit() {
        // At latency 3 the two subtractions share one subtractor; putting
        // them in different partitions forces a second unit.
        let (g, _gt, amb, bma, _m) = abs_diff();
        let s = hyper::schedule(&g, &HyperOptions::with_latency(3)).unwrap();
        let split = move |n: NodeId| if n == amb { 1 } else { 0 };
        let binding = FuBinding::bind_partitioned(&g, &s, &split).unwrap();
        assert_eq!(binding.unit_count(OpClass::Sub), 2);
        assert_ne!(binding.unit_of(amb), binding.unit_of(bma));
    }

    #[test]
    fn unscheduled_node_is_reported() {
        let (g, gt, ..) = abs_diff();
        let mut s = sched::Schedule::new(3);
        s.assign(gt, 1);
        let err = FuBinding::bind(&g, &s).unwrap_err();
        assert!(matches!(err, BindError::UnscheduledNode(_)));
    }

    #[test]
    fn unit_lookup_roundtrip() {
        let (g, gt, ..) = abs_diff();
        let s = hyper::schedule(&g, &HyperOptions::with_latency(3)).unwrap();
        let binding = FuBinding::bind(&g, &s).unwrap();
        let unit = binding.unit_of(gt).unwrap();
        assert_eq!(binding.unit(unit).unwrap().class, OpClass::Comp);
        assert_eq!(UnitId::new(3).index(), 3);
        assert_eq!(UnitId::new(3).to_string(), "u3");
    }
}
