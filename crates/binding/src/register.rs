//! Value lifetime analysis and left-edge register allocation.
//!
//! A value produced in control step `s` and consumed in later steps must be
//! stored in a register from the end of step `s` until its last use.
//! Primary inputs are stored in input registers for as long as any operation
//! reads them — these are exactly the registers whose *load enables* the
//! power-management controller gates.

use std::collections::BTreeMap;
use std::fmt;

use cdfg::{Cdfg, NodeId};
use sched::Schedule;

use crate::error::BindError;

/// Identifier of a physical register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RegisterId(u32);

impl RegisterId {
    /// Creates a register id from a raw index.
    pub fn new(index: u32) -> Self {
        RegisterId(index)
    }

    /// The raw index backing this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RegisterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The lifetime of one value in control steps.
///
/// The value becomes available at the end of `birth` (0 for primary inputs,
/// which are available before the first step) and is last read during
/// `death`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lifetime {
    /// The value (CDFG node producing it).
    pub value: NodeId,
    /// Step producing the value (0 = primary input / constant).
    pub birth: u32,
    /// Last step reading the value.
    pub death: u32,
}

impl Lifetime {
    /// Whether this value must be stored in a register at all (it is
    /// consumed in a step after the one producing it, or it is a primary
    /// input / output value).
    pub fn needs_register(&self) -> bool {
        self.death > self.birth
    }

    /// Whether two lifetimes overlap (cannot share a register).
    pub fn overlaps(&self, other: &Lifetime) -> bool {
        // Storage is needed during (birth, death]; two values conflict when
        // those half-open intervals intersect.
        self.birth < other.death && other.birth < self.death
    }
}

/// A physical register holding one or more (non-overlapping) values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Register {
    /// Register id.
    pub id: RegisterId,
    /// Instance name, e.g. `r3`.
    pub name: String,
    /// Values stored in this register, in allocation order.
    pub values: Vec<NodeId>,
}

/// The result of register allocation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegisterAllocation {
    registers: Vec<Register>,
    assignment: BTreeMap<NodeId, RegisterId>,
    lifetimes: BTreeMap<NodeId, Lifetime>,
}

impl RegisterAllocation {
    /// Computes lifetimes for every value of the scheduled design and packs
    /// them into registers with the left-edge algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`BindError::UnscheduledNode`] if a functional node has no
    /// step assigned.
    pub fn allocate(cdfg: &Cdfg, schedule: &Schedule) -> Result<Self, BindError> {
        let lifetimes = compute_lifetimes(cdfg, schedule)?;

        // Left-edge: sort by birth, place each value in the first register
        // whose current occupant lifetimes do not overlap.
        let mut sorted: Vec<&Lifetime> =
            lifetimes.values().filter(|l| l.needs_register()).collect();
        sorted.sort_by_key(|l| (l.birth, l.death, l.value));

        let mut registers: Vec<Register> = Vec::new();
        let mut register_lifetimes: Vec<Vec<Lifetime>> = Vec::new();
        let mut assignment: BTreeMap<NodeId, RegisterId> = BTreeMap::new();

        for lifetime in sorted {
            let slot = register_lifetimes
                .iter()
                .position(|occupants| occupants.iter().all(|o| !o.overlaps(lifetime)));
            let index = match slot {
                Some(i) => i,
                None => {
                    let id = RegisterId(registers.len() as u32);
                    registers.push(Register { id, name: format!("r{}", id.0), values: Vec::new() });
                    register_lifetimes.push(Vec::new());
                    registers.len() - 1
                }
            };
            registers[index].values.push(lifetime.value);
            register_lifetimes[index].push(*lifetime);
            assignment.insert(lifetime.value, registers[index].id);
        }

        Ok(RegisterAllocation { registers, assignment, lifetimes })
    }

    /// All physical registers, ordered by id.
    pub fn registers(&self) -> &[Register] {
        &self.registers
    }

    /// The register storing `value`, if it needed one.
    pub fn register_of(&self, value: NodeId) -> Option<RegisterId> {
        self.assignment.get(&value).copied()
    }

    /// The lifetime computed for `value`.
    pub fn lifetime(&self, value: NodeId) -> Option<Lifetime> {
        self.lifetimes.get(&value).copied()
    }

    /// Number of registers allocated.
    pub fn register_count(&self) -> usize {
        self.registers.len()
    }

    /// Iterates over all lifetimes (including values that ended up not
    /// needing storage).
    pub fn lifetimes(&self) -> impl Iterator<Item = &Lifetime> + '_ {
        self.lifetimes.values()
    }
}

fn compute_lifetimes(
    cdfg: &Cdfg,
    schedule: &Schedule,
) -> Result<BTreeMap<NodeId, Lifetime>, BindError> {
    let step_of = |node: NodeId| -> Result<u32, BindError> {
        let data = cdfg.node(node).ok_or(BindError::UnknownNode(node))?;
        if data.op.is_functional() {
            schedule.step_of(node).ok_or(BindError::UnscheduledNode(node))
        } else {
            Ok(0)
        }
    };

    let last_step = schedule.num_steps().max(schedule.last_used_step());
    let mut lifetimes = BTreeMap::new();
    for (node, data) in cdfg.iter_nodes() {
        if data.op.is_output() {
            continue;
        }
        let birth = step_of(node)?;
        let mut death = birth;
        for consumer in cdfg.data_successors(node) {
            let consumer_data = cdfg.node(consumer).ok_or(BindError::UnknownNode(consumer))?;
            let consumer_step = if consumer_data.op.is_output() {
                // Output values must survive to the end of the computation.
                last_step
            } else {
                step_of(consumer)?
            };
            death = death.max(consumer_step);
        }
        lifetimes.insert(node, Lifetime { value: node, birth, death });
    }
    Ok(lifetimes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::Op;
    use sched::hyper::{self, HyperOptions};

    fn abs_diff() -> (Cdfg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        (g, gt, amb, bma, m)
    }

    #[test]
    fn lifetimes_span_production_to_last_use() {
        let (g, gt, _amb, _bma, m) = abs_diff();
        let s = hyper::schedule(&g, &HyperOptions::with_latency(3)).unwrap();
        let alloc = RegisterAllocation::allocate(&g, &s).unwrap();
        let gt_life = alloc.lifetime(gt).unwrap();
        assert_eq!(gt_life.birth, s.step_of(gt).unwrap());
        assert_eq!(gt_life.death, s.step_of(m).unwrap());
        assert!(gt_life.needs_register());
        // Inputs are born at step 0 and live until their last reader.
        for &input in g.inputs() {
            let life = alloc.lifetime(input).unwrap();
            assert_eq!(life.birth, 0);
            assert!(life.death >= 1);
            assert!(alloc.register_of(input).is_some());
        }
        // The mux result feeds the primary output, so it lives to the end.
        assert_eq!(alloc.lifetime(m).unwrap().death, 3);
    }

    #[test]
    fn overlapping_values_get_distinct_registers() {
        let (g, gt, amb, bma, _m) = abs_diff();
        let s = hyper::schedule(&g, &HyperOptions::with_latency(2)).unwrap();
        let alloc = RegisterAllocation::allocate(&g, &s).unwrap();
        // gt, amb and bma are all produced in step 1 and consumed in step 2:
        // their lifetimes overlap pairwise, so three distinct registers.
        let regs: Vec<_> = [gt, amb, bma].iter().map(|&n| alloc.register_of(n).unwrap()).collect();
        assert_ne!(regs[0], regs[1]);
        assert_ne!(regs[1], regs[2]);
        assert_ne!(regs[0], regs[2]);
    }

    #[test]
    fn left_edge_reuses_registers_for_disjoint_lifetimes() {
        // A chain a+b -> +c -> +d: each intermediate dies when the next is
        // produced, so intermediates can share registers.
        let mut g = Cdfg::new("chain");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let d = g.add_input("d");
        let s1 = g.add_op(Op::Add, &[a, b]).unwrap();
        let s2 = g.add_op(Op::Add, &[s1, c]).unwrap();
        let s3 = g.add_op(Op::Add, &[s2, d]).unwrap();
        g.add_output("sum", s3).unwrap();
        let s = hyper::schedule(&g, &HyperOptions::with_latency(3)).unwrap();
        let alloc = RegisterAllocation::allocate(&g, &s).unwrap();
        // s1 dies at step 2 (read by s2), s3 is born at step 3: they can
        // share.  The exact packing depends on ordering, but the total must
        // be below the naive one-register-per-value count.
        let naive = alloc.lifetimes().filter(|l| l.needs_register()).count();
        assert!(alloc.register_count() < naive, "{} < {naive}", alloc.register_count());
    }

    #[test]
    fn same_register_never_holds_overlapping_values() {
        let (g, ..) = abs_diff();
        for latency in 2..=4 {
            let s = hyper::schedule(&g, &HyperOptions::with_latency(latency)).unwrap();
            let alloc = RegisterAllocation::allocate(&g, &s).unwrap();
            for reg in alloc.registers() {
                for (i, &v1) in reg.values.iter().enumerate() {
                    for &v2 in &reg.values[i + 1..] {
                        let l1 = alloc.lifetime(v1).unwrap();
                        let l2 = alloc.lifetime(v2).unwrap();
                        assert!(
                            !l1.overlaps(&l2),
                            "register {} holds overlapping values",
                            reg.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn unscheduled_node_is_reported() {
        let (g, ..) = abs_diff();
        let empty = sched::Schedule::new(3);
        assert!(matches!(
            RegisterAllocation::allocate(&g, &empty),
            Err(BindError::UnscheduledNode(_))
        ));
    }

    #[test]
    fn lifetime_overlap_is_symmetric_and_irreflexive_for_points() {
        let l1 = Lifetime { value: NodeId::new(0), birth: 1, death: 3 };
        let l2 = Lifetime { value: NodeId::new(1), birth: 2, death: 4 };
        let l3 = Lifetime { value: NodeId::new(2), birth: 3, death: 5 };
        assert!(l1.overlaps(&l2));
        assert!(l2.overlaps(&l1));
        assert!(!l1.overlaps(&l3), "value dying at 3 and value born at 3 can share");
        let point = Lifetime { value: NodeId::new(3), birth: 2, death: 2 };
        assert!(!point.needs_register());
    }
}
