//! Hardware allocation for the power-management synthesis flow.
//!
//! After scheduling, every operation must be bound to a physical execution
//! unit, every value that crosses a control-step boundary must be stored in
//! a register, and the steering logic (interconnect multiplexors) that routes
//! registers to unit inputs must be derived.  This crate provides those
//! passes — the datapath half of step 12 of the paper's algorithm — plus a
//! simple area model used for the "Area" columns of Tables II and III.
//!
//! * [`fu`] — functional-unit binding (operations scheduled in the same step
//!   go to different units; mutually exclusive operations may share),
//! * [`register`] — value lifetime analysis and left-edge register
//!   allocation,
//! * [`datapath`] — the assembled datapath model (units, registers,
//!   steering multiplexors),
//! * [`area`] — relative area estimation.
//!
//! # Example
//!
//! ```
//! use cdfg::{Cdfg, Op};
//! use pmsched::{power_manage, PowerManagementOptions};
//! use binding::datapath::Datapath;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = Cdfg::new("abs_diff");
//! let a = g.add_input("a");
//! let b = g.add_input("b");
//! let gt = g.add_op(Op::Gt, &[a, b])?;
//! let amb = g.add_op(Op::Sub, &[a, b])?;
//! let bma = g.add_op(Op::Sub, &[b, a])?;
//! let m = g.add_mux(gt, bma, amb)?;
//! g.add_output("abs", m)?;
//!
//! let result = power_manage(&g, &PowerManagementOptions::with_latency(3))?;
//! let datapath = Datapath::build(result.cdfg(), result.schedule())?;
//! assert!(datapath.units().len() >= 3);
//! assert!(datapath.registers().len() >= 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod area;
pub mod datapath;
pub mod error;
pub mod fu;
pub mod register;

pub use crate::area::{AreaEstimate, AreaModel};
pub use crate::datapath::Datapath;
pub use crate::error::BindError;
pub use crate::fu::{FuBinding, FunctionalUnit, UnitId};
pub use crate::register::{Lifetime, Register, RegisterAllocation, RegisterId};
