//! Multiplexor processing order (Section IV-A of the paper).
//!
//! The selection loop of the algorithm processes one multiplexor at a time,
//! and accepting one multiplexor may make a later one infeasible.  The paper
//! processes multiplexors "closer to the outputs first" because a managed
//! multiplexor near the outputs shuts down a larger cone; Section IV-A notes
//! that this greedy order can be suboptimal and proposes reordering.  This
//! module provides the ordering strategies; the exhaustive/greedy reordering
//! search itself lives in [`crate::algorithm::power_manage_reordered`].

use std::collections::BTreeSet;

use cdfg::{cone, Cdfg, NodeId};

use crate::cones::{ConeWorkspace, MuxCones};

/// Strategy for choosing the order in which multiplexors are examined for
/// power management.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum MuxOrder {
    /// The paper's default: multiplexors closest to the primary outputs
    /// first (they gate the largest cones).
    #[default]
    OutputsFirst,
    /// The reverse order, useful as an ablation baseline.
    InputsFirst,
    /// Largest number of shut-down candidate operations first — a
    /// savings-driven greedy order, an instance of the "pre-processing
    /// algorithm which performs reordering of multiplexors" of Section IV-A.
    BySavings,
    /// An explicit, caller-supplied order.  Multiplexors missing from the
    /// list are appended in outputs-first order.
    Explicit(Vec<NodeId>),
}

impl MuxOrder {
    /// Produces the processing order of the design's multiplexors under this
    /// strategy.
    pub fn order(&self, cdfg: &Cdfg) -> Vec<NodeId> {
        let muxes = cdfg.mux_nodes();
        match self {
            MuxOrder::OutputsFirst => sort_by_output_distance(cdfg, muxes, false),
            MuxOrder::InputsFirst => sort_by_output_distance(cdfg, muxes, true),
            MuxOrder::BySavings => {
                let mut ws = ConeWorkspace::new();
                ws.prepare(cdfg);
                let dist = cone::distances_to_outputs(cdfg);
                let mut with_sizes: Vec<(usize, u32, NodeId)> = muxes
                    .into_iter()
                    .map(|m| {
                        let cones = MuxCones::analyze_with(cdfg, m, &mut ws);
                        let d = dist[m.index()].unwrap_or(u32::MAX);
                        (cones.shutdown_candidate_count(), d, m)
                    })
                    .collect();
                // Most candidates first; ties broken towards the outputs.
                with_sizes.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
                with_sizes.into_iter().map(|(_, _, m)| m).collect()
            }
            MuxOrder::Explicit(order) => {
                let all: BTreeSet<NodeId> = muxes.iter().copied().collect();
                let mut out: Vec<NodeId> =
                    order.iter().copied().filter(|m| all.contains(m)).collect();
                let mentioned: BTreeSet<NodeId> = out.iter().copied().collect();
                let rest = sort_by_output_distance(
                    cdfg,
                    muxes.into_iter().filter(|m| !mentioned.contains(m)).collect(),
                    false,
                );
                out.extend(rest);
                out
            }
        }
    }
}

fn sort_by_output_distance(cdfg: &Cdfg, muxes: Vec<NodeId>, reverse: bool) -> Vec<NodeId> {
    // One multi-source reverse BFS gives every distance at once; per mux the
    // value (and therefore the order) is identical to the per-node forward
    // BFS this used to run.
    let dist = cone::distances_to_outputs(cdfg);
    let mut keyed: Vec<(u32, NodeId)> =
        muxes.into_iter().map(|m| (dist[m.index()].unwrap_or(u32::MAX), m)).collect();
    keyed.sort();
    if reverse {
        keyed.reverse();
    }
    keyed.into_iter().map(|(_, m)| m).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::Op;

    /// Builds a chain of two conditionals where the outer mux is closer to
    /// the output than the inner one.
    fn two_muxes() -> (Cdfg, NodeId, NodeId) {
        let mut g = Cdfg::new("two");
        let x = g.add_input("x");
        let y = g.add_input("y");
        let c1 = g.add_op(Op::Gt, &[x, y]).unwrap();
        let c2 = g.add_op(Op::Lt, &[x, y]).unwrap();
        let sum = g.add_op(Op::Add, &[x, y]).unwrap();
        let prod = g.add_op(Op::Mul, &[x, y]).unwrap();
        let inner = g.add_mux(c2, sum, prod).unwrap();
        let diff = g.add_op(Op::Sub, &[x, y]).unwrap();
        let outer = g.add_mux(c1, diff, inner).unwrap();
        g.add_output("o", outer).unwrap();
        (g, inner, outer)
    }

    #[test]
    fn outputs_first_puts_outer_mux_first() {
        let (g, inner, outer) = two_muxes();
        assert_eq!(MuxOrder::OutputsFirst.order(&g), vec![outer, inner]);
        assert_eq!(MuxOrder::InputsFirst.order(&g), vec![inner, outer]);
    }

    #[test]
    fn by_savings_prefers_larger_shutdown_sets() {
        let (g, _inner, outer) = two_muxes();
        // The outer mux can shut down the entire inner computation, so it has
        // more candidates than the inner mux.
        let order = MuxOrder::BySavings.order(&g);
        assert_eq!(order[0], outer);
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn explicit_order_is_respected_and_completed() {
        let (g, inner, outer) = two_muxes();
        let order = MuxOrder::Explicit(vec![inner]).order(&g);
        assert_eq!(order, vec![inner, outer], "missing muxes appended");
        let order = MuxOrder::Explicit(vec![NodeId::new(999)]).order(&g);
        assert_eq!(order.len(), 2, "unknown ids are ignored");
    }

    #[test]
    fn default_is_outputs_first() {
        assert_eq!(MuxOrder::default(), MuxOrder::OutputsFirst);
    }
}
