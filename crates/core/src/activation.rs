//! Activation analysis: which operations execute, with what probability,
//! under a power-managed schedule.
//!
//! The paper's Table II reports "the average number of times that each of
//! the operations is executed in one computation", assuming "each
//! multiplexor has equal probability of selecting any of its inputs".  This
//! module computes exactly that quantity, but against the *final* schedule:
//! an operation in a shut-down cone is only gated if its controlling
//! condition is computed in a strictly earlier control step (otherwise the
//! controller cannot know whether to disable the input registers — the
//! single-subtractor discussion at the end of Section II-B).

use std::collections::BTreeMap;

use cdfg::{Cdfg, NodeId, OpClass};
use sched::Schedule;

use crate::report::ManagedMux;

/// Per-multiplexor probability that the select input evaluates to 1.
///
/// Unlisted multiplexors use the fair default of 0.5, matching the paper's
/// equal-probability assumption.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SelectProbabilities {
    probabilities: BTreeMap<NodeId, f64>,
}

impl SelectProbabilities {
    /// Fair probabilities (0.5 everywhere).
    pub fn fair() -> Self {
        SelectProbabilities::default()
    }

    /// Builds probabilities from `(mux, p_select_is_one)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a probability is outside `[0, 1]`.
    pub fn from_pairs<I: IntoIterator<Item = (NodeId, f64)>>(pairs: I) -> Self {
        let probabilities: BTreeMap<NodeId, f64> = pairs.into_iter().collect();
        for (&mux, &p) in &probabilities {
            assert!(
                (0.0..=1.0).contains(&p),
                "probability for {mux} must be within [0, 1], got {p}"
            );
        }
        SelectProbabilities { probabilities }
    }

    /// Sets the probability that `mux`'s select evaluates to 1.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn set(&mut self, mux: NodeId, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability must be within [0, 1], got {p}");
        self.probabilities.insert(mux, p);
    }

    /// Probability that `mux` selects its 1-input (0.5 by default).
    pub fn select_one(&self, mux: NodeId) -> f64 {
        self.probabilities.get(&mux).copied().unwrap_or(0.5)
    }

    /// Probability that `mux` selects its 0-input.
    pub fn select_zero(&self, mux: NodeId) -> f64 {
        1.0 - self.select_one(mux)
    }
}

/// The result of activation analysis: an execution probability per
/// functional node.
#[derive(Debug, Clone, PartialEq)]
pub struct Activation {
    probabilities: BTreeMap<NodeId, f64>,
    gating: BTreeMap<NodeId, Vec<NodeId>>,
    classes: BTreeMap<NodeId, OpClass>,
}

impl Activation {
    /// Computes activation probabilities for every functional node of `cdfg`
    /// under `schedule`, considering the shut-down opportunities described by
    /// `managed` and the branch probabilities `probs`.
    ///
    /// An operation `n` in the shut-down set of multiplexor `m` contributes a
    /// factor of `P(branch of n is taken)` — but only if the select of `m` is
    /// known before `n` executes: either the select comes straight from a
    /// primary input, or its driver is scheduled in a strictly earlier
    /// control step than `n`.
    pub fn compute(
        cdfg: &Cdfg,
        schedule: &Schedule,
        managed: &[ManagedMux],
        probs: &SelectProbabilities,
    ) -> Self {
        let mut probabilities: BTreeMap<NodeId, f64> = BTreeMap::new();
        let mut gating: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        let mut classes: BTreeMap<NodeId, OpClass> = BTreeMap::new();
        for node in cdfg.functional_nodes() {
            probabilities.insert(node, 1.0);
            gating.insert(node, Vec::new());
            classes.insert(node, cdfg.node(node).expect("live node").op.class());
        }

        for mm in managed {
            let condition_step = if mm.select_functional {
                // A functional select driver must be in the schedule; the
                // `u32::MAX` fallback keeps release builds safe (the mux is
                // simply treated as never-gating), but an absent driver means
                // the ManagedMux list and the schedule disagree about which
                // graph they describe — catch that instead of silently
                // reporting zero savings for the mux.
                debug_assert!(
                    schedule.step_of(mm.select_driver).is_some(),
                    "select driver {} of managed mux {} is missing from the schedule",
                    mm.select_driver,
                    mm.mux
                );
                schedule.step_of(mm.select_driver).unwrap_or(u32::MAX)
            } else {
                0
            };
            let p_one = probs.select_one(mm.mux);
            for (set, p_exec) in [(&mm.shutdown_true, p_one), (&mm.shutdown_false, 1.0 - p_one)] {
                for &node in set {
                    let node_step = match schedule.step_of(node) {
                        Some(step) => step,
                        None => continue,
                    };
                    if condition_step < node_step {
                        if let Some(prob) = probabilities.get_mut(&node) {
                            *prob *= p_exec;
                        }
                        gating.entry(node).or_default().push(mm.mux);
                    }
                }
            }
        }

        Activation { probabilities, gating, classes }
    }

    /// Execution probability of `node` (1.0 for nodes that always run).
    pub fn probability(&self, node: NodeId) -> f64 {
        self.probabilities.get(&node).copied().unwrap_or(1.0)
    }

    /// Nodes whose execution probability is strictly below 1 — the
    /// operations the controller actually shuts down for some samples.
    pub fn gated_nodes(&self) -> Vec<NodeId> {
        self.probabilities.iter().filter(|(_, &p)| p < 1.0).map(|(&n, _)| n).collect()
    }

    /// The multiplexors gating `node` (empty for always-on operations).
    pub fn gating_muxes(&self, node: NodeId) -> &[NodeId] {
        self.gating.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Multiplexors that gate at least one operation — the number the paper
    /// reports in the "P.Man. Muxs" column of Table II.
    pub fn effective_muxes(&self) -> Vec<NodeId> {
        let mut muxes: Vec<NodeId> = self.gating.values().flatten().copied().collect();
        muxes.sort();
        muxes.dedup();
        muxes
    }

    /// Expected number of executions per operation class in one computation
    /// (the "Number of Operations" columns of Table II).
    pub fn expected_counts(&self) -> BTreeMap<OpClass, f64> {
        let mut totals: BTreeMap<OpClass, f64> = BTreeMap::new();
        for (node, p) in self.iter() {
            if let Some(&class) = self.classes.get(&node) {
                *totals.entry(class).or_insert(0.0) += p;
            }
        }
        totals
    }

    /// Iterates over `(node, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, f64)> + '_ {
        self.probabilities.iter().map(|(&n, &p)| (n, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{power_manage, PowerManagementOptions};
    use cdfg::Op;

    fn abs_diff() -> Cdfg {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        g
    }

    #[test]
    fn fair_probabilities_default_to_half() {
        let probs = SelectProbabilities::fair();
        assert_eq!(probs.select_one(NodeId::new(3)), 0.5);
        assert_eq!(probs.select_zero(NodeId::new(3)), 0.5);
        let mut probs = probs;
        probs.set(NodeId::new(3), 0.75);
        assert_eq!(probs.select_one(NodeId::new(3)), 0.75);
        assert!((probs.select_zero(NodeId::new(3)) - 0.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn probabilities_outside_unit_interval_panic() {
        let mut probs = SelectProbabilities::fair();
        probs.set(NodeId::new(0), 1.5);
    }

    #[test]
    fn abs_diff_three_steps_gates_both_subtractions() {
        let g = abs_diff();
        let result = power_manage(&g, &PowerManagementOptions::with_latency(3)).unwrap();
        let activation = result.activation(&SelectProbabilities::fair());
        let expected = activation.expected_counts();
        // Each subtraction runs with probability 0.5, so on average exactly
        // one of the two executes per sample.
        assert!((expected[&OpClass::Sub] - 1.0).abs() < 1e-9);
        assert!((expected[&OpClass::Comp] - 1.0).abs() < 1e-9);
        assert!((expected[&OpClass::Mux] - 1.0).abs() < 1e-9);
        assert_eq!(activation.gated_nodes().len(), 2);
        assert_eq!(activation.effective_muxes().len(), 1);
    }

    #[test]
    fn two_step_schedule_gates_nothing() {
        // With only two control steps (Figure 1) the comparison and both
        // subtractions share step 1, so nothing can be gated.
        let g = abs_diff();
        let result = power_manage(&g, &PowerManagementOptions::with_latency(2)).unwrap();
        let activation = result.activation(&SelectProbabilities::fair());
        assert!(activation.gated_nodes().is_empty());
        let expected = activation.expected_counts();
        assert!((expected[&OpClass::Sub] - 2.0).abs() < 1e-9);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "missing from the schedule")]
    fn inconsistent_managed_mux_is_caught() {
        // Hand-build a ManagedMux whose (functional) select driver is not in
        // the schedule at all — e.g. stale analysis paired with a schedule of
        // a different graph.  The debug assertion must catch the mismatch
        // instead of silently treating the mux as never-gating.
        let g = abs_diff();
        let result = power_manage(&g, &PowerManagementOptions::with_latency(3)).unwrap();
        let bogus_driver = NodeId::new(9_999);
        let real = &result.managed_muxes()[0];
        let broken = crate::report::ManagedMux {
            mux: real.mux,
            select_driver: bogus_driver,
            select_functional: true,
            shutdown_false: real.shutdown_false.clone(),
            shutdown_true: real.shutdown_true.clone(),
            accepted: true,
            control_edges: Vec::new(),
        };
        let _ = Activation::compute(
            result.cdfg(),
            result.schedule(),
            &[broken],
            &SelectProbabilities::fair(),
        );
    }

    #[test]
    fn skewed_probabilities_shift_expected_counts() {
        let g = abs_diff();
        let result = power_manage(&g, &PowerManagementOptions::with_latency(3)).unwrap();
        let mux = result.cdfg().mux_nodes()[0];
        let mut probs = SelectProbabilities::fair();
        probs.set(mux, 0.9); // a > b almost always
        let activation = result.activation(&probs);
        let expected = activation.expected_counts();
        // Still exactly one subtraction on average (0.9 + 0.1), but the
        // individual probabilities are skewed.
        assert!((expected[&OpClass::Sub] - 1.0).abs() < 1e-9);
        let gated = activation.gated_nodes();
        let probs_seen: Vec<f64> = gated.iter().map(|&n| activation.probability(n)).collect();
        assert!(probs_seen.iter().any(|p| (*p - 0.9).abs() < 1e-9));
        assert!(probs_seen.iter().any(|p| (*p - 0.1).abs() < 1e-9));
    }
}
