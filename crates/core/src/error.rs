//! Error type for the power-management scheduling flow.

use std::fmt;

use cdfg::CdfgError;
use sched::ScheduleError;

/// Errors produced by [`crate::power_manage`] and the supporting passes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PowerManageError {
    /// The input CDFG failed structural validation.
    InvalidCdfg(CdfgError),
    /// The final scheduling step failed (e.g. the latency is below the
    /// critical path even without any power-management constraint).
    Scheduling(ScheduleError),
    /// The requested pipeline depth is zero.
    InvalidPipelineDepth,
}

impl fmt::Display for PowerManageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerManageError::InvalidCdfg(e) => write!(f, "invalid CDFG: {e}"),
            PowerManageError::Scheduling(e) => write!(f, "scheduling failed: {e}"),
            PowerManageError::InvalidPipelineDepth => {
                f.write_str("pipeline depth must be at least one stage")
            }
        }
    }
}

impl std::error::Error for PowerManageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PowerManageError::InvalidCdfg(e) => Some(e),
            PowerManageError::Scheduling(e) => Some(e),
            PowerManageError::InvalidPipelineDepth => None,
        }
    }
}

impl From<CdfgError> for PowerManageError {
    fn from(e: CdfgError) -> Self {
        PowerManageError::InvalidCdfg(e)
    }
}

impl From<ScheduleError> for PowerManageError {
    fn from(e: ScheduleError) -> Self {
        PowerManageError::Scheduling(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn conversions_and_sources() {
        let e: PowerManageError = CdfgError::NoOutputs.into();
        assert!(matches!(e, PowerManageError::InvalidCdfg(_)));
        assert!(e.source().is_some());
        let e: PowerManageError =
            ScheduleError::LatencyTooSmall { requested: 1, critical_path: 2 }.into();
        assert!(e.to_string().contains("scheduling failed"));
        assert!(PowerManageError::InvalidPipelineDepth.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PowerManageError>();
    }
}
