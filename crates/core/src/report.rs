//! Result types of the power-management scheduling flow.

use std::collections::BTreeSet;
use std::fmt;

use cdfg::{Cdfg, EdgeId, NodeId, OpCounts};
use sched::{ResourceSet, Schedule};

use crate::activation::{Activation, SelectProbabilities};
use crate::savings::{OpWeights, SavingsReport};

/// One multiplexor considered for power management, together with the
/// operations it can shut down and the precedence edges that were added for
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManagedMux {
    /// The multiplexor node.
    pub mux: NodeId,
    /// The "last node in the control input fanin": the driver of the select
    /// input.
    pub select_driver: NodeId,
    /// Whether the select driver is a functional operation (computed at run
    /// time) or a primary input/constant (known from step 1).
    pub select_functional: bool,
    /// Operations that may be shut down when the select evaluates to 1
    /// (their value is only consumed by the 0-branch).
    pub shutdown_false: BTreeSet<NodeId>,
    /// Operations that may be shut down when the select evaluates to 0.
    pub shutdown_true: BTreeSet<NodeId>,
    /// Whether the selection loop accepted this multiplexor (the throughput
    /// still had enough slack for the control edges).
    pub accepted: bool,
    /// The control edges inserted for this multiplexor (empty when the
    /// select comes straight from a primary input, or when the multiplexor
    /// was rejected or later relaxed to meet a resource constraint).
    pub control_edges: Vec<EdgeId>,
}

impl ManagedMux {
    /// Number of operations that could potentially be shut down through this
    /// multiplexor.
    pub fn shutdown_candidate_count(&self) -> usize {
        self.shutdown_false.len() + self.shutdown_true.len()
    }
}

/// The complete result of [`crate::power_manage`].
#[derive(Debug, Clone)]
pub struct PowerManagementResult {
    pub(crate) cdfg: Cdfg,
    pub(crate) schedule: Schedule,
    pub(crate) baseline_schedule: Schedule,
    pub(crate) managed: Vec<ManagedMux>,
    pub(crate) latency: u32,
}

impl PowerManagementResult {
    /// The CDFG after power management, including the inserted control
    /// edges.
    pub fn cdfg(&self) -> &Cdfg {
        &self.cdfg
    }

    /// The power-managed schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The schedule a traditional (non-power-aware) run of the same
    /// scheduler produces for the same constraints — the comparison baseline
    /// of Tables II and III.
    pub fn baseline_schedule(&self) -> &Schedule {
        &self.baseline_schedule
    }

    /// The latency (control steps) both schedules were produced for.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Every multiplexor that was examined and has at least one shut-down
    /// candidate, in the order they were processed.
    pub fn managed_muxes(&self) -> &[ManagedMux] {
        &self.managed
    }

    /// Multiplexors accepted by the selection loop (control-edge insertion
    /// was feasible for the throughput).
    pub fn accepted_muxes(&self) -> Vec<&ManagedMux> {
        self.managed.iter().filter(|m| m.accepted).collect()
    }

    /// Number of multiplexors that actually gate at least one operation in
    /// the final schedule — the "P.Man. Muxs" column of Table II.
    pub fn managed_mux_count(&self) -> usize {
        self.activation(&SelectProbabilities::fair()).effective_muxes().len()
    }

    /// Activation analysis of the final schedule under the given branch
    /// probabilities.
    pub fn activation(&self, probs: &SelectProbabilities) -> Activation {
        Activation::compute(&self.cdfg, &self.schedule, &self.managed, probs)
    }

    /// Datapath power savings report under fair branch probabilities and the
    /// paper's relative power weights.
    pub fn savings(&self) -> SavingsReport {
        self.savings_with(&SelectProbabilities::fair(), &OpWeights::paper_power())
    }

    /// Datapath power savings report under explicit probabilities and
    /// weights.
    pub fn savings_with(&self, probs: &SelectProbabilities, weights: &OpWeights) -> SavingsReport {
        let activation = self.activation(probs);
        SavingsReport::compute(self.op_counts(), &activation, weights)
    }

    /// Static operation counts of the design (Table I columns).
    pub fn op_counts(&self) -> OpCounts {
        self.cdfg.op_counts()
    }

    /// Execution units required by the power-managed schedule.
    pub fn resource_usage(&self) -> ResourceSet {
        self.schedule.resource_usage(&self.cdfg)
    }

    /// Execution units required by the baseline schedule.
    pub fn baseline_resource_usage(&self) -> ResourceSet {
        self.baseline_schedule.resource_usage(&self.cdfg)
    }

    /// Execution-unit area ratio of the power-managed allocation relative to
    /// the baseline allocation (the "Area Incr." column of Table II), using
    /// the given relative area weights.
    ///
    /// The baseline is taken as the *cheaper* of the two allocations: a
    /// traditional scheduler could always adopt the power-managed operation
    /// placement (ignoring the gating), so the true minimum-resource
    /// baseline never costs more than either schedule.  This keeps the ratio
    /// at 1.0 or above even when the heuristic baseline scheduler happens to
    /// pick a slightly larger allocation.
    pub fn area_increase(&self, area_weights: &OpWeights) -> f64 {
        let weigh = |set: &ResourceSet| -> f64 {
            set.iter().map(|(class, count)| area_weights.weight(class) * count as f64).sum()
        };
        let managed = weigh(&self.resource_usage());
        let baseline = weigh(&self.baseline_resource_usage()).min(managed);
        if baseline > 0.0 {
            managed / baseline
        } else {
            1.0
        }
    }

    /// Control edges inserted across all accepted multiplexors.
    pub fn control_edge_count(&self) -> usize {
        self.managed.iter().map(|m| m.control_edges.len()).sum()
    }
}

impl fmt::Display for PowerManagementResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "power-managed schedule for `{}`: {} control steps, {} managed multiplexors, {:.1}% datapath power reduction",
            self.cdfg.name(),
            self.latency,
            self.managed_mux_count(),
            self.savings().reduction_percent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::{power_manage, PowerManagementOptions};
    use cdfg::Op;

    fn abs_diff() -> Cdfg {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        g
    }

    #[test]
    fn report_accessors_are_consistent() {
        let g = abs_diff();
        let result = power_manage(&g, &PowerManagementOptions::with_latency(3)).unwrap();
        assert_eq!(result.latency(), 3);
        assert_eq!(result.managed_muxes().len(), 1);
        assert_eq!(result.accepted_muxes().len(), 1);
        assert_eq!(result.managed_mux_count(), 1);
        assert!(result.control_edge_count() >= 1);
        assert_eq!(result.op_counts().sub, 2);
        assert!(result.schedule().validate(result.cdfg()).is_ok());
        let display = result.to_string();
        assert!(display.contains("abs_diff"));
        assert!(display.contains("managed multiplexors"));
    }

    #[test]
    fn area_increase_is_one_when_allocations_match() {
        let g = abs_diff();
        let result = power_manage(&g, &PowerManagementOptions::with_latency(3)).unwrap();
        let ratio = result.area_increase(&OpWeights::paper_area());
        assert!(ratio > 0.5 && ratio < 3.0, "sane area ratio, got {ratio}");
    }

    #[test]
    fn shutdown_candidate_count_sums_branches() {
        let g = abs_diff();
        let result = power_manage(&g, &PowerManagementOptions::with_latency(3)).unwrap();
        let mm = &result.managed_muxes()[0];
        assert_eq!(mm.shutdown_candidate_count(), 2);
        assert!(mm.select_functional);
        assert!(mm.accepted);
    }
}
