//! Multiplexor fanin-cone analysis (steps 2–3 of the paper's algorithm).
//!
//! For every multiplexor we need to know three things:
//!
//! 1. which operations feed its *control* (select) input — these must be
//!    scheduled early so the decision is available,
//! 2. which operations feed only its 0-input — these can be shut down
//!    whenever the select evaluates to 1,
//! 3. which operations feed only its 1-input — these can be shut down
//!    whenever the select evaluates to 0.
//!
//! The paper excludes from shut-down any operation that is in both data
//! cones, or whose result "fans out to other nodes besides the current
//! multiplexor".  Both exclusions are captured here by a single, stronger
//! criterion: an operation is shut-down eligible for a branch only if every
//! path from it to a primary output passes through that branch's data input
//! of the multiplexor.  If any other path exists the value is needed
//! regardless of the branch outcome.
//!
//! # Implementation
//!
//! The analysis runs on dense bitsets over node indices through a reusable
//! [`ConeWorkspace`]: cone membership is a BFS over the CSR
//! [`cdfg::Slices`] data adjacency, and the shut-down criterion is evaluated
//! by one reverse-topological "needed" sweep over the cone members instead
//! of a whole-graph reverse reachability per branch.  Per working graph, the
//! data-reachability-to-outputs set (whose complement is the dead-end set)
//! is computed once by [`ConeWorkspace::prepare`] and shared by every
//! multiplexor — control edges never change it, so the per-mux loop in
//! [`crate::algorithm`] prepares once and analyzes hundreds of muxes against
//! the same set.  The public [`MuxCones`] sets stay `BTreeSet` so reports
//! and orderings are byte-identical to the original implementation (the
//! retained [`crate::naive`] reference pins this equality in the
//! cone-identity property tests).

use std::collections::BTreeSet;

use cdfg::{Cdfg, DenseBitSet, NodeId, Slices, MUX_FALSE_PORT, MUX_SELECT_PORT, MUX_TRUE_PORT};

/// Reusable scratch state for mux-cone analysis: dense bitsets and node
/// buffers sized to the graph once per [`ConeWorkspace::prepare`] call and
/// recycled across every multiplexor of the design.
#[derive(Debug, Clone, Default)]
pub struct ConeWorkspace {
    /// Slot count the workspace was prepared for (sanity-checked on use).
    slots: usize,
    /// Nodes with a *data* path to a primary output; the complement over
    /// functional nodes is the dead-end set.  Valid as long as the data
    /// edges of the prepared graph are unchanged — control-edge insertion
    /// and removal never invalidate it.
    reaches_output: DenseBitSet,
    /// Membership of the port cone currently being analysed.
    cone: DenseBitSet,
    /// Cone members proven "needed" (observable besides the branch input)
    /// during the reverse sweep of the current branch.
    needed: DenseBitSet,
    /// Scratch set for ancestor queries (the selection loop's cycle check).
    scratch: DenseBitSet,
    stack: Vec<NodeId>,
    cone_nodes: Vec<NodeId>,
    branch_nodes: Vec<NodeId>,
}

impl ConeWorkspace {
    /// A fresh workspace; call [`ConeWorkspace::prepare`] before analysing.
    pub fn new() -> Self {
        ConeWorkspace::default()
    }

    /// Sizes the buffers for `cdfg` and computes the data-only
    /// reachability-to-outputs set.
    ///
    /// Must be called again whenever the *data* edges or node set of the
    /// graph change; adding or removing control edges does not require
    /// re-preparation (precedence edges carry no value flow, so neither cone
    /// membership inputs nor dead-end detection see them).
    pub fn prepare(&mut self, cdfg: &Cdfg) {
        let slices = cdfg.slices();
        let slots = slices.slot_count();
        self.slots = slots;
        self.reaches_output.resize_cleared(slots);
        self.cone.resize_cleared(slots);
        self.needed.resize_cleared(slots);
        self.scratch.resize_cleared(slots);
        self.stack.clear();
        for &o in cdfg.outputs() {
            if self.reaches_output.insert(o.index()) {
                self.stack.push(o);
            }
        }
        while let Some(n) = self.stack.pop() {
            for &p in slices.data_preds(n) {
                if self.reaches_output.insert(p.index()) {
                    self.stack.push(p);
                }
            }
        }
    }

    /// `node` plus every ancestor of `node` via data *and* control edges, as
    /// a borrowed bitset.  This is the selection loop's mutation-free cycle
    /// check: a control edge `select_driver -> top` would close a cycle iff
    /// `top` is an ancestor of the select driver.
    ///
    /// # Panics
    ///
    /// Panics if the workspace was not prepared for a graph of this size.
    pub fn ancestors_of(&mut self, cdfg: &Cdfg, node: NodeId) -> &DenseBitSet {
        let slices = cdfg.slices();
        self.assert_prepared(slices);
        self.scratch.clear();
        self.stack.clear();
        self.scratch.insert(node.index());
        self.stack.push(node);
        while let Some(n) = self.stack.pop() {
            for &p in slices.preds(n) {
                if self.scratch.insert(p.index()) {
                    self.stack.push(p);
                }
            }
        }
        &self.scratch
    }

    fn assert_prepared(&self, slices: &Slices) {
        assert_eq!(
            self.slots,
            slices.slot_count(),
            "ConeWorkspace::prepare was not called for this graph"
        );
    }

    /// BFS over data predecessors from `driver`, filling `cone` /
    /// `cone_nodes` with the driver and its transitive data fanin.
    fn collect_port_cone(&mut self, slices: &Slices, driver: NodeId) {
        self.cone.clear();
        self.cone_nodes.clear();
        self.stack.clear();
        self.cone.insert(driver.index());
        self.cone_nodes.push(driver);
        self.stack.push(driver);
        while let Some(n) = self.stack.pop() {
            for &p in slices.data_preds(n) {
                if self.cone.insert(p.index()) {
                    self.cone_nodes.push(p);
                    self.stack.push(p);
                }
            }
        }
    }

    /// The functional members of the collected cone as the public
    /// `BTreeSet` representation.
    fn functional_cone_set(&self, slices: &Slices) -> BTreeSet<NodeId> {
        self.cone_nodes.iter().copied().filter(|&n| slices.is_functional(n)).collect()
    }

    /// Computes the shut-down-eligible subset of the collected cone for one
    /// branch: one reverse-topological sweep over the cone members.
    ///
    /// A member is "needed" — and therefore not eligible — iff it is a
    /// functional dead end (it must execute unconditionally) or any of its
    /// successors observes it besides the branch input under consideration:
    /// the multiplexor itself through another port, any node outside the
    /// cone, or a cone member that is itself needed.  Every node outside the
    /// cone is always needed (it either reaches an output without the branch
    /// edge or is a dead end), so the sweep never has to leave the cone —
    /// this is what replaces the original whole-graph reverse reachability
    /// per branch.
    fn shutdown_set(
        &mut self,
        cdfg: &Cdfg,
        slices: &Slices,
        mux: NodeId,
        driver: NodeId,
        port: u16,
    ) -> BTreeSet<NodeId> {
        self.branch_nodes.clear();
        self.branch_nodes.extend_from_slice(&self.cone_nodes);
        self.branch_nodes.sort_unstable_by_key(|&n| std::cmp::Reverse(slices.topo_pos(n)));
        self.needed.clear();
        let mut out = BTreeSet::new();
        for i in 0..self.branch_nodes.len() {
            let n = self.branch_nodes[i];
            let functional = slices.is_functional(n);
            // Functional dead ends still execute, so their inputs must stay
            // available; structural members (inputs, constants) are never
            // observation points on their own.
            let mut needed = functional && !self.reaches_output.contains(n.index());
            if !needed {
                for &s in slices.succs(n) {
                    let needed_via_s = if s == mux {
                        // Value flowing into the mux through `port` does not
                        // make its producer needed — unless the producer
                        // also feeds another port of the same mux.
                        n != driver || feeds_other_port(cdfg, mux, port, n)
                    } else {
                        // Successors processed earlier in the reverse sweep;
                        // everything outside the cone is always needed.
                        !self.cone.contains(s.index()) || self.needed.contains(s.index())
                    };
                    if needed_via_s {
                        needed = true;
                        break;
                    }
                }
            }
            if needed {
                self.needed.insert(n.index());
            } else if functional {
                out.insert(n);
            }
        }
        out
    }
}

/// Does `n` drive an input port of `mux` other than `port`?
fn feeds_other_port(cdfg: &Cdfg, mux: NodeId, port: u16, n: NodeId) -> bool {
    (0..3u16).filter(|&p| p != port).any(|p| cdfg.operand(mux, p) == Some(n))
}

/// The cone structure of one multiplexor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuxCones {
    /// The multiplexor node.
    pub mux: NodeId,
    /// Driver of the select (control) input.  This is the "last node in the
    /// control input fanin": once it has executed, the branch decision is
    /// known.
    pub select_driver: NodeId,
    /// `true` when the select driver is a functional operation (a comparison
    /// computed at run time); `false` when the select comes straight from a
    /// primary input or constant, in which case the decision is available
    /// from step 1 and no control edge is needed.
    pub select_driver_is_functional: bool,
    /// Functional operations in the transitive fanin of the select input
    /// (including the driver itself when functional).
    pub select_cone: BTreeSet<NodeId>,
    /// Functional operations in the transitive fanin of the 0-input
    /// (including its driver).
    pub false_cone: BTreeSet<NodeId>,
    /// Functional operations in the transitive fanin of the 1-input
    /// (including its driver).
    pub true_cone: BTreeSet<NodeId>,
    /// Subset of [`MuxCones::false_cone`] that may be shut down when the
    /// select is 1 (their only use is the discarded 0-branch value).
    pub shutdown_false: BTreeSet<NodeId>,
    /// Subset of [`MuxCones::true_cone`] that may be shut down when the
    /// select is 0.
    pub shutdown_true: BTreeSet<NodeId>,
}

impl MuxCones {
    /// Analyses one multiplexor of `cdfg`.
    ///
    /// Convenience wrapper that prepares a fresh [`ConeWorkspace`]; callers
    /// analysing many multiplexors of the same graph should prepare one
    /// workspace and use [`MuxCones::analyze_with`].
    ///
    /// # Panics
    ///
    /// Panics if `mux` is not a multiplexor node of a structurally valid
    /// CDFG (every mux input driven).
    pub fn analyze(cdfg: &Cdfg, mux: NodeId) -> Self {
        let mut ws = ConeWorkspace::new();
        ws.prepare(cdfg);
        MuxCones::analyze_with(cdfg, mux, &mut ws)
    }

    /// Analyses one multiplexor against a prepared workspace.
    ///
    /// # Panics
    ///
    /// Panics if `mux` is not a multiplexor node of a structurally valid
    /// CDFG, or if `ws` was not [prepared](ConeWorkspace::prepare) for this
    /// graph.
    pub fn analyze_with(cdfg: &Cdfg, mux: NodeId, ws: &mut ConeWorkspace) -> Self {
        assert!(
            cdfg.node(mux).map(|d| d.op.is_mux()).unwrap_or(false),
            "MuxCones::analyze called on a non-mux node"
        );
        let slices = cdfg.slices();
        ws.assert_prepared(slices);
        let select_driver = cdfg.operand(mux, MUX_SELECT_PORT).expect("mux select driven");
        let false_driver = cdfg.operand(mux, MUX_FALSE_PORT).expect("mux 0-input driven");
        let true_driver = cdfg.operand(mux, MUX_TRUE_PORT).expect("mux 1-input driven");

        let select_driver_is_functional =
            cdfg.node(select_driver).map(|d| d.op.is_functional()).unwrap_or(false);

        ws.collect_port_cone(slices, select_driver);
        let select_cone = ws.functional_cone_set(slices);

        ws.collect_port_cone(slices, false_driver);
        let false_cone = ws.functional_cone_set(slices);
        let shutdown_false = ws.shutdown_set(cdfg, slices, mux, false_driver, MUX_FALSE_PORT);

        ws.collect_port_cone(slices, true_driver);
        let true_cone = ws.functional_cone_set(slices);
        let shutdown_true = ws.shutdown_set(cdfg, slices, mux, true_driver, MUX_TRUE_PORT);

        MuxCones {
            mux,
            select_driver,
            select_driver_is_functional,
            select_cone,
            false_cone,
            true_cone,
            shutdown_false,
            shutdown_true,
        }
    }

    /// Analyses every multiplexor of the design through one shared
    /// workspace.
    pub fn analyze_all(cdfg: &Cdfg) -> Vec<MuxCones> {
        let mut ws = ConeWorkspace::new();
        ws.prepare(cdfg);
        cdfg.mux_nodes().into_iter().map(|m| MuxCones::analyze_with(cdfg, m, &mut ws)).collect()
    }

    /// Returns `true` when at least one operation can be shut down through
    /// this multiplexor, i.e. power management is worth attempting.
    pub fn has_shutdown_candidates(&self) -> bool {
        !self.shutdown_false.is_empty() || !self.shutdown_true.is_empty()
    }

    /// Nodes of a shut-down set with no predecessor inside the same set —
    /// the "top nodes in the 0 and 1 fanin" that receive the new control
    /// edges in step 10 of the paper's algorithm.
    pub fn top_nodes(&self, cdfg: &Cdfg, set: &BTreeSet<NodeId>) -> Vec<NodeId> {
        set.iter().copied().filter(|&n| cdfg.preds(n).iter().all(|p| !set.contains(p))).collect()
    }

    /// Number of operations (across both branches) that can be shut down.
    pub fn shutdown_candidate_count(&self) -> usize {
        self.shutdown_false.len() + self.shutdown_true.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::Op;

    fn abs_diff() -> (Cdfg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        (g, gt, amb, bma, m)
    }

    #[test]
    fn abs_diff_cones() {
        let (g, gt, amb, bma, m) = abs_diff();
        let cones = MuxCones::analyze(&g, m);
        assert_eq!(cones.select_driver, gt);
        assert!(cones.select_driver_is_functional);
        assert_eq!(cones.select_cone, [gt].into_iter().collect());
        assert_eq!(cones.false_cone, [bma].into_iter().collect());
        assert_eq!(cones.true_cone, [amb].into_iter().collect());
        // Both subtractions are exclusively used by their own branch, so both
        // can be shut down.
        assert_eq!(cones.shutdown_false, [bma].into_iter().collect());
        assert_eq!(cones.shutdown_true, [amb].into_iter().collect());
        assert!(cones.has_shutdown_candidates());
        assert_eq!(cones.shutdown_candidate_count(), 2);
        assert_eq!(cones.top_nodes(&g, &cones.shutdown_false), vec![bma]);
    }

    #[test]
    fn shared_operation_is_not_shut_down() {
        // out = (a > b) ? (a + b) : ((a + b) - b) — the addition feeds both
        // branches so it must always execute.
        let mut g = Cdfg::new("shared");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let cmp = g.add_op(Op::Gt, &[a, b]).unwrap();
        let sum = g.add_op(Op::Add, &[a, b]).unwrap();
        let diff = g.add_op(Op::Sub, &[sum, b]).unwrap();
        let m = g.add_mux(cmp, diff, sum).unwrap();
        g.add_output("o", m).unwrap();

        let cones = MuxCones::analyze(&g, m);
        assert!(cones.false_cone.contains(&sum));
        assert!(cones.true_cone.contains(&sum));
        assert!(!cones.shutdown_false.contains(&sum), "shared op stays on");
        assert!(!cones.shutdown_true.contains(&sum), "shared op stays on");
        // The subtraction is exclusive to the false branch.
        assert_eq!(cones.shutdown_false, [diff].into_iter().collect());
        assert!(cones.shutdown_true.is_empty());
    }

    #[test]
    fn fanout_past_the_mux_is_not_shut_down() {
        // The false-branch value also drives a second primary output, so it
        // is needed no matter what the select says.
        let mut g = Cdfg::new("fanout");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let cmp = g.add_op(Op::Gt, &[a, b]).unwrap();
        let diff = g.add_op(Op::Sub, &[a, b]).unwrap();
        let sum = g.add_op(Op::Add, &[a, b]).unwrap();
        let m = g.add_mux(cmp, diff, sum).unwrap();
        g.add_output("o", m).unwrap();
        g.add_output("also_diff", diff).unwrap();

        let cones = MuxCones::analyze(&g, m);
        assert!(cones.false_cone.contains(&diff));
        assert!(!cones.shutdown_false.contains(&diff), "value escapes through another output");
        assert_eq!(cones.shutdown_true, [sum].into_iter().collect());
    }

    #[test]
    fn select_from_primary_input_is_not_functional() {
        let mut g = Cdfg::new("ext_sel");
        let sel = g.add_input("sel");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let sum = g.add_op(Op::Add, &[a, b]).unwrap();
        let diff = g.add_op(Op::Sub, &[a, b]).unwrap();
        let m = g.add_mux(sel, sum, diff).unwrap();
        g.add_output("o", m).unwrap();

        let cones = MuxCones::analyze(&g, m);
        assert_eq!(cones.select_driver, sel);
        assert!(!cones.select_driver_is_functional);
        assert!(cones.select_cone.is_empty());
        assert_eq!(cones.shutdown_false, [sum].into_iter().collect());
        assert_eq!(cones.shutdown_true, [diff].into_iter().collect());
    }

    #[test]
    fn nested_muxes_report_nested_cones() {
        // out = c1 ? (c2 ? x*y : x+y) : x-y
        let mut g = Cdfg::new("nested");
        let x = g.add_input("x");
        let y = g.add_input("y");
        let c1 = g.add_op(Op::Gt, &[x, y]).unwrap();
        let c2 = g.add_op(Op::Lt, &[x, y]).unwrap();
        let prod = g.add_op(Op::Mul, &[x, y]).unwrap();
        let sum = g.add_op(Op::Add, &[x, y]).unwrap();
        let inner = g.add_mux(c2, sum, prod).unwrap();
        let diff = g.add_op(Op::Sub, &[x, y]).unwrap();
        let outer = g.add_mux(c1, diff, inner).unwrap();
        g.add_output("o", outer).unwrap();

        let all = MuxCones::analyze_all(&g);
        assert_eq!(all.len(), 2);
        let outer_cones = all.iter().find(|c| c.mux == outer).unwrap();
        let inner_cones = all.iter().find(|c| c.mux == inner).unwrap();
        // The whole inner computation (mux, comparison, mul, add) is
        // exclusive to the outer true branch.
        assert!(outer_cones.shutdown_true.contains(&inner));
        assert!(outer_cones.shutdown_true.contains(&c2));
        assert!(outer_cones.shutdown_true.contains(&prod));
        assert!(outer_cones.shutdown_true.contains(&sum));
        assert_eq!(outer_cones.shutdown_false, [diff].into_iter().collect());
        // The inner mux shuts down exactly one of mul/add per branch.
        assert_eq!(inner_cones.shutdown_false, [sum].into_iter().collect());
        assert_eq!(inner_cones.shutdown_true, [prod].into_iter().collect());
    }

    #[test]
    fn values_read_by_dead_code_are_not_shut_down() {
        // `diff` feeds the mux's 1-input *and* a comparison whose result is
        // never used (dead code).  The dead comparison still executes, so
        // `diff` must not be shut down even though no primary output depends
        // on it outside the mux branch.
        let mut g = Cdfg::new("dead");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let cmp = g.add_op(Op::Gt, &[a, b]).unwrap();
        let diff = g.add_op(Op::Sub, &[a, b]).unwrap();
        let sum = g.add_op(Op::Add, &[a, b]).unwrap();
        let _dead = g.add_op(Op::Lt, &[diff, a]).unwrap();
        let m = g.add_mux(cmp, sum, diff).unwrap();
        g.add_output("o", m).unwrap();

        let cones = MuxCones::analyze(&g, m);
        assert!(!cones.shutdown_true.contains(&diff), "dead reader keeps diff alive");
        assert_eq!(cones.shutdown_false, [sum].into_iter().collect());
    }

    #[test]
    #[should_panic(expected = "non-mux")]
    fn analyze_rejects_non_mux_nodes() {
        let (g, gt, ..) = abs_diff();
        let _ = MuxCones::analyze(&g, gt);
    }

    #[test]
    #[should_panic(expected = "prepare was not called")]
    fn analyze_with_rejects_unprepared_workspace() {
        let (g, _, _, _, m) = abs_diff();
        let mut ws = ConeWorkspace::new();
        let _ = MuxCones::analyze_with(&g, m, &mut ws);
    }

    /// Builds a three-mux circuit with dead code hanging off shared and
    /// branch-exclusive values:
    ///
    /// ```text
    /// m1 = (a > b) ? (a - b) : (a + b)
    /// m2 = (a < b) ? (m1 * b) : m1
    /// m3 = (a > b) ? (b - a) : m2
    /// dead  = Lt(a - b, a)        (reads the m1 true-branch value)
    /// dead2 = Neg(dead)           (second-level dead code)
    /// ```
    fn three_mux_with_dead_code() -> (Cdfg, [NodeId; 3]) {
        let mut g = Cdfg::new("three_mux_dead");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c1 = g.add_op(Op::Gt, &[a, b]).unwrap();
        let c2 = g.add_op(Op::Lt, &[a, b]).unwrap();
        let diff = g.add_op(Op::Sub, &[a, b]).unwrap();
        let sum = g.add_op(Op::Add, &[a, b]).unwrap();
        let m1 = g.add_mux(c1, sum, diff).unwrap();
        let prod = g.add_op(Op::Mul, &[m1, b]).unwrap();
        let m2 = g.add_mux(c2, m1, prod).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m3 = g.add_mux(c1, m2, bma).unwrap();
        g.add_output("o", m3).unwrap();
        // Dead code: reads the m1 true-branch value, result never used.
        let dead = g.add_op(Op::Lt, &[diff, a]).unwrap();
        let _dead2 = g.add_op(Op::Neg, &[dead]).unwrap();
        (g, [m1, m2, m3])
    }

    #[test]
    fn dead_code_on_three_mux_circuit_matches_naive_reference() {
        // The satellite regression for the O(n²) dead-end fix: the one-sweep
        // shutdown sets must equal the original whole-graph traversal on a
        // circuit where dead code keeps branch values alive.
        let (g, muxes) = three_mux_with_dead_code();
        g.validate().unwrap();
        for mux in muxes {
            let fast = MuxCones::analyze(&g, mux);
            let slow = crate::naive::analyze(&g, mux);
            assert_eq!(fast, slow, "cones diverged on mux {mux}");
        }
        // Spot-check the semantics, not just the identity: `diff` is read by
        // the dead comparison, so m1's true branch must keep it alive...
        let m1 = MuxCones::analyze(&g, muxes[0]);
        assert!(!m1.shutdown_true.iter().any(|n| g.node(*n).unwrap().op == Op::Sub));
        assert!(!m1.shutdown_false.is_empty(), "the addition is still eligible");
        // ...and the dead operations themselves are needed (they execute
        // unconditionally), so they never appear in any shutdown set.
        let m2 = MuxCones::analyze(&g, muxes[1]);
        for n in m2.shutdown_true.iter().chain(&m2.shutdown_false) {
            assert!(
                cdfg::cone::distance_to_output(&g, *n).is_some(),
                "dead-end op {n} must not be shut down"
            );
        }
    }

    #[test]
    fn one_prepared_workspace_serves_every_mux() {
        let (g, muxes) = three_mux_with_dead_code();
        let mut ws = ConeWorkspace::new();
        ws.prepare(&g);
        for mux in muxes {
            assert_eq!(
                MuxCones::analyze_with(&g, mux, &mut ws),
                MuxCones::analyze(&g, mux),
                "workspace reuse changed the analysis of {mux}"
            );
        }
        // Reuse across graphs after re-preparation.
        let (g2, _, _, _, m) = abs_diff();
        ws.prepare(&g2);
        assert_eq!(MuxCones::analyze_with(&g2, m, &mut ws), MuxCones::analyze(&g2, m));
    }

    #[test]
    fn ancestors_of_matches_reachability() {
        let (mut g, gt, amb, bma, m) = abs_diff();
        g.add_control_edge(gt, bma).unwrap();
        let mut ws = ConeWorkspace::new();
        ws.prepare(&g);
        let anc = ws.ancestors_of(&g, bma);
        assert!(anc.contains(bma.index()), "a node is its own ancestor here");
        assert!(anc.contains(gt.index()), "control edges count as ancestry");
        assert!(!anc.contains(m.index()));
        assert!(!anc.contains(amb.index()));
        let anc = ws.ancestors_of(&g, m);
        for n in [gt, amb, bma, m] {
            assert!(anc.contains(n.index()), "{n} is an ancestor of the mux");
        }
    }
}
