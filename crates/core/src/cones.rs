//! Multiplexor fanin-cone analysis (steps 2–3 of the paper's algorithm).
//!
//! For every multiplexor we need to know three things:
//!
//! 1. which operations feed its *control* (select) input — these must be
//!    scheduled early so the decision is available,
//! 2. which operations feed only its 0-input — these can be shut down
//!    whenever the select evaluates to 1,
//! 3. which operations feed only its 1-input — these can be shut down
//!    whenever the select evaluates to 0.
//!
//! The paper excludes from shut-down any operation that is in both data
//! cones, or whose result "fans out to other nodes besides the current
//! multiplexor".  Both exclusions are captured here by a single, stronger
//! criterion: an operation is shut-down eligible for a branch only if every
//! path from it to a primary output passes through that branch's data input
//! of the multiplexor.  If any other path exists the value is needed
//! regardless of the branch outcome.

use std::collections::BTreeSet;

use cdfg::{cone, Cdfg, NodeId, MUX_FALSE_PORT, MUX_SELECT_PORT, MUX_TRUE_PORT};

/// The cone structure of one multiplexor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuxCones {
    /// The multiplexor node.
    pub mux: NodeId,
    /// Driver of the select (control) input.  This is the "last node in the
    /// control input fanin": once it has executed, the branch decision is
    /// known.
    pub select_driver: NodeId,
    /// `true` when the select driver is a functional operation (a comparison
    /// computed at run time); `false` when the select comes straight from a
    /// primary input or constant, in which case the decision is available
    /// from step 1 and no control edge is needed.
    pub select_driver_is_functional: bool,
    /// Functional operations in the transitive fanin of the select input
    /// (including the driver itself when functional).
    pub select_cone: BTreeSet<NodeId>,
    /// Functional operations in the transitive fanin of the 0-input
    /// (including its driver).
    pub false_cone: BTreeSet<NodeId>,
    /// Functional operations in the transitive fanin of the 1-input
    /// (including its driver).
    pub true_cone: BTreeSet<NodeId>,
    /// Subset of [`MuxCones::false_cone`] that may be shut down when the
    /// select is 1 (their only use is the discarded 0-branch value).
    pub shutdown_false: BTreeSet<NodeId>,
    /// Subset of [`MuxCones::true_cone`] that may be shut down when the
    /// select is 0.
    pub shutdown_true: BTreeSet<NodeId>,
}

impl MuxCones {
    /// Analyses one multiplexor of `cdfg`.
    ///
    /// # Panics
    ///
    /// Panics if `mux` is not a multiplexor node of a structurally valid
    /// CDFG (every mux input driven).
    pub fn analyze(cdfg: &Cdfg, mux: NodeId) -> Self {
        assert!(
            cdfg.node(mux).map(|d| d.op.is_mux()).unwrap_or(false),
            "MuxCones::analyze called on a non-mux node"
        );
        let select_driver = cdfg.operand(mux, MUX_SELECT_PORT).expect("mux select driven");
        let false_driver = cdfg.operand(mux, MUX_FALSE_PORT).expect("mux 0-input driven");
        let true_driver = cdfg.operand(mux, MUX_TRUE_PORT).expect("mux 1-input driven");

        let select_driver_is_functional =
            cdfg.node(select_driver).map(|d| d.op.is_functional()).unwrap_or(false);

        let select_cone =
            cone::functional_only(cdfg, &cone::port_fanin(cdfg, mux, MUX_SELECT_PORT));
        let false_cone = cone::functional_only(cdfg, &cone::port_fanin(cdfg, mux, MUX_FALSE_PORT));
        let true_cone = cone::functional_only(cdfg, &cone::port_fanin(cdfg, mux, MUX_TRUE_PORT));

        let shutdown_false = shutdown_set(cdfg, mux, false_driver, MUX_FALSE_PORT, &false_cone);
        let shutdown_true = shutdown_set(cdfg, mux, true_driver, MUX_TRUE_PORT, &true_cone);

        MuxCones {
            mux,
            select_driver,
            select_driver_is_functional,
            select_cone,
            false_cone,
            true_cone,
            shutdown_false,
            shutdown_true,
        }
    }

    /// Analyses every multiplexor of the design.
    pub fn analyze_all(cdfg: &Cdfg) -> Vec<MuxCones> {
        cdfg.mux_nodes().into_iter().map(|m| MuxCones::analyze(cdfg, m)).collect()
    }

    /// Returns `true` when at least one operation can be shut down through
    /// this multiplexor, i.e. power management is worth attempting.
    pub fn has_shutdown_candidates(&self) -> bool {
        !self.shutdown_false.is_empty() || !self.shutdown_true.is_empty()
    }

    /// Nodes of a shut-down set with no predecessor inside the same set —
    /// the "top nodes in the 0 and 1 fanin" that receive the new control
    /// edges in step 10 of the paper's algorithm.
    pub fn top_nodes(&self, cdfg: &Cdfg, set: &BTreeSet<NodeId>) -> Vec<NodeId> {
        set.iter()
            .copied()
            .filter(|&n| cdfg.predecessors(n).into_iter().all(|p| !set.contains(&p)))
            .collect()
    }

    /// Number of operations (across both branches) that can be shut down.
    pub fn shutdown_candidate_count(&self) -> usize {
        self.shutdown_false.len() + self.shutdown_true.len()
    }
}

/// Computes the shut-down-eligible subset of one branch cone.
///
/// A node is eligible iff it cannot reach any primary output once the edge
/// `branch_driver -> mux(port)` is ignored.  This simultaneously rejects
/// nodes shared between the 0 and 1 cones and nodes whose value fans out past
/// the multiplexor.
fn shutdown_set(
    cdfg: &Cdfg,
    mux: NodeId,
    _branch_driver: NodeId,
    port: u16,
    branch_cone: &BTreeSet<NodeId>,
) -> BTreeSet<NodeId> {
    // Nodes that can reach an observation point without using the mux input
    // edge for `port`.  We do a reverse reachability from all observation
    // points, refusing to traverse that single edge.  Observation points are
    // the primary outputs plus any dead-end operation (an operation with no
    // path to an output still executes unconditionally, so everything it
    // reads must be available — dead code is never a licence to shut down
    // its inputs).
    let mut needed: BTreeSet<NodeId> = BTreeSet::new();
    let mut stack: Vec<NodeId> = cdfg.outputs().to_vec();
    for &o in cdfg.outputs() {
        needed.insert(o);
    }
    for node in cdfg.functional_nodes() {
        if cone::distance_to_output(cdfg, node).is_none() && needed.insert(node) {
            stack.push(node);
        }
    }
    while let Some(n) = stack.pop() {
        for pred in cdfg.predecessors(n) {
            // Skip the branch edge under consideration: value flowing into
            // `mux` through `port` does not make its producer "needed".
            if n == mux && cdfg.operand(mux, port) == Some(pred) {
                // The predecessor may still feed the mux through another
                // port (e.g. it is also the select driver); check those.
                let feeds_other_port =
                    (0..3u16).filter(|&p| p != port).any(|p| cdfg.operand(mux, p) == Some(pred));
                if !feeds_other_port {
                    continue;
                }
            }
            if needed.insert(pred) {
                stack.push(pred);
            }
        }
    }
    branch_cone.iter().copied().filter(|n| !needed.contains(n)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::Op;

    fn abs_diff() -> (Cdfg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        (g, gt, amb, bma, m)
    }

    #[test]
    fn abs_diff_cones() {
        let (g, gt, amb, bma, m) = abs_diff();
        let cones = MuxCones::analyze(&g, m);
        assert_eq!(cones.select_driver, gt);
        assert!(cones.select_driver_is_functional);
        assert_eq!(cones.select_cone, [gt].into_iter().collect());
        assert_eq!(cones.false_cone, [bma].into_iter().collect());
        assert_eq!(cones.true_cone, [amb].into_iter().collect());
        // Both subtractions are exclusively used by their own branch, so both
        // can be shut down.
        assert_eq!(cones.shutdown_false, [bma].into_iter().collect());
        assert_eq!(cones.shutdown_true, [amb].into_iter().collect());
        assert!(cones.has_shutdown_candidates());
        assert_eq!(cones.shutdown_candidate_count(), 2);
        assert_eq!(cones.top_nodes(&g, &cones.shutdown_false), vec![bma]);
    }

    #[test]
    fn shared_operation_is_not_shut_down() {
        // out = (a > b) ? (a + b) : ((a + b) - b) — the addition feeds both
        // branches so it must always execute.
        let mut g = Cdfg::new("shared");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let cmp = g.add_op(Op::Gt, &[a, b]).unwrap();
        let sum = g.add_op(Op::Add, &[a, b]).unwrap();
        let diff = g.add_op(Op::Sub, &[sum, b]).unwrap();
        let m = g.add_mux(cmp, diff, sum).unwrap();
        g.add_output("o", m).unwrap();

        let cones = MuxCones::analyze(&g, m);
        assert!(cones.false_cone.contains(&sum));
        assert!(cones.true_cone.contains(&sum));
        assert!(!cones.shutdown_false.contains(&sum), "shared op stays on");
        assert!(!cones.shutdown_true.contains(&sum), "shared op stays on");
        // The subtraction is exclusive to the false branch.
        assert_eq!(cones.shutdown_false, [diff].into_iter().collect());
        assert!(cones.shutdown_true.is_empty());
    }

    #[test]
    fn fanout_past_the_mux_is_not_shut_down() {
        // The false-branch value also drives a second primary output, so it
        // is needed no matter what the select says.
        let mut g = Cdfg::new("fanout");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let cmp = g.add_op(Op::Gt, &[a, b]).unwrap();
        let diff = g.add_op(Op::Sub, &[a, b]).unwrap();
        let sum = g.add_op(Op::Add, &[a, b]).unwrap();
        let m = g.add_mux(cmp, diff, sum).unwrap();
        g.add_output("o", m).unwrap();
        g.add_output("also_diff", diff).unwrap();

        let cones = MuxCones::analyze(&g, m);
        assert!(cones.false_cone.contains(&diff));
        assert!(!cones.shutdown_false.contains(&diff), "value escapes through another output");
        assert_eq!(cones.shutdown_true, [sum].into_iter().collect());
    }

    #[test]
    fn select_from_primary_input_is_not_functional() {
        let mut g = Cdfg::new("ext_sel");
        let sel = g.add_input("sel");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let sum = g.add_op(Op::Add, &[a, b]).unwrap();
        let diff = g.add_op(Op::Sub, &[a, b]).unwrap();
        let m = g.add_mux(sel, sum, diff).unwrap();
        g.add_output("o", m).unwrap();

        let cones = MuxCones::analyze(&g, m);
        assert_eq!(cones.select_driver, sel);
        assert!(!cones.select_driver_is_functional);
        assert!(cones.select_cone.is_empty());
        assert_eq!(cones.shutdown_false, [sum].into_iter().collect());
        assert_eq!(cones.shutdown_true, [diff].into_iter().collect());
    }

    #[test]
    fn nested_muxes_report_nested_cones() {
        // out = c1 ? (c2 ? x*y : x+y) : x-y
        let mut g = Cdfg::new("nested");
        let x = g.add_input("x");
        let y = g.add_input("y");
        let c1 = g.add_op(Op::Gt, &[x, y]).unwrap();
        let c2 = g.add_op(Op::Lt, &[x, y]).unwrap();
        let prod = g.add_op(Op::Mul, &[x, y]).unwrap();
        let sum = g.add_op(Op::Add, &[x, y]).unwrap();
        let inner = g.add_mux(c2, sum, prod).unwrap();
        let diff = g.add_op(Op::Sub, &[x, y]).unwrap();
        let outer = g.add_mux(c1, diff, inner).unwrap();
        g.add_output("o", outer).unwrap();

        let all = MuxCones::analyze_all(&g);
        assert_eq!(all.len(), 2);
        let outer_cones = all.iter().find(|c| c.mux == outer).unwrap();
        let inner_cones = all.iter().find(|c| c.mux == inner).unwrap();
        // The whole inner computation (mux, comparison, mul, add) is
        // exclusive to the outer true branch.
        assert!(outer_cones.shutdown_true.contains(&inner));
        assert!(outer_cones.shutdown_true.contains(&c2));
        assert!(outer_cones.shutdown_true.contains(&prod));
        assert!(outer_cones.shutdown_true.contains(&sum));
        assert_eq!(outer_cones.shutdown_false, [diff].into_iter().collect());
        // The inner mux shuts down exactly one of mul/add per branch.
        assert_eq!(inner_cones.shutdown_false, [sum].into_iter().collect());
        assert_eq!(inner_cones.shutdown_true, [prod].into_iter().collect());
    }

    #[test]
    fn values_read_by_dead_code_are_not_shut_down() {
        // `diff` feeds the mux's 1-input *and* a comparison whose result is
        // never used (dead code).  The dead comparison still executes, so
        // `diff` must not be shut down even though no primary output depends
        // on it outside the mux branch.
        let mut g = Cdfg::new("dead");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let cmp = g.add_op(Op::Gt, &[a, b]).unwrap();
        let diff = g.add_op(Op::Sub, &[a, b]).unwrap();
        let sum = g.add_op(Op::Add, &[a, b]).unwrap();
        let _dead = g.add_op(Op::Lt, &[diff, a]).unwrap();
        let m = g.add_mux(cmp, sum, diff).unwrap();
        g.add_output("o", m).unwrap();

        let cones = MuxCones::analyze(&g, m);
        assert!(!cones.shutdown_true.contains(&diff), "dead reader keeps diff alive");
        assert_eq!(cones.shutdown_false, [sum].into_iter().collect());
    }

    #[test]
    #[should_panic(expected = "non-mux")]
    fn analyze_rejects_non_mux_nodes() {
        let (g, gt, ..) = abs_diff();
        let _ = MuxCones::analyze(&g, gt);
    }
}
