//! The power-management scheduling algorithm (Figure 3 of the paper).
//!
//! ```text
//! 1:  Generate CDFG
//! 2:  For each multiplexor mux {
//! 3:      Annotate nodes in fanin of the 0, 1 and control inputs of mux
//! 4:      Compute new ASAP of each node in the fanin of the 0 and 1 inputs
//! 5:      Compute new ALAP of each node in the fanin of the control input
//! 6:      If for any node ASAP > ALAP
//! 7:          then power management not possible for mux
//! 8:          else assign new ASAP and ALAP values to nodes
//! 9:  }
//! 10: Create control edges between last node in the control fanin and top
//!     nodes in 0 and 1 fanin of muxes for which power management is possible
//! 11: Execute Hyper scheduling
//! 12: Generate final Datapath and Controller circuits
//! ```
//!
//! Steps 4–8 are implemented incrementally: one ASAP/ALAP analysis is carried
//! across the whole per-mux loop and [`sched::Timing::tighten`] re-propagates
//! only from the endpoints of the control edges a multiplexor would add — the
//! new edges force exactly the "data cone after control cone" ordering the
//! paper describes, and the feasibility test "ASAP > ALAP for any node"
//! surfaces as `tighten` returning `false` (restoring the previous fixed
//! point).  Control edges are physically inserted only for *accepted*
//! multiplexors; cycles are pre-checked against a bitset ancestor query, so a
//! rejected candidate never mutates the working graph at all.  The retained
//! [`crate::naive`] reference implements the original
//! insert-recompute-rollback formulation and the identity tests pin both
//! paths to the same decisions.  Step 12 (datapath and controller generation)
//! lives in the `binding` and `rtl` crates.

use cdfg::{Cdfg, NodeId};
use sched::hyper::{self, HyperOptions};
use sched::{ResourceConstraint, ScheduleError, Timing, TimingDelta};

use crate::cones::{ConeWorkspace, MuxCones};
use crate::error::PowerManageError;
use crate::mux_order::MuxOrder;
use crate::report::{ManagedMux, PowerManagementResult};

/// User-facing constraints for a power-management scheduling run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PowerManagementOptions {
    /// Number of control steps one computation may take (the throughput
    /// constraint; column 2 of Table II).
    pub latency: u32,
    /// Execution-unit constraint handed to the final scheduling step.
    pub resources: ResourceConstraint,
    /// Order in which multiplexors are examined (Section IV-A).
    pub mux_order: MuxOrder,
}

impl PowerManagementOptions {
    /// Latency-only constraints: the scheduler may allocate as many
    /// execution units as it needs (it still minimises them).
    pub fn with_latency(latency: u32) -> Self {
        PowerManagementOptions {
            latency,
            resources: ResourceConstraint::Unlimited,
            mux_order: MuxOrder::OutputsFirst,
        }
    }

    /// Latency plus an explicit execution-unit allocation.
    pub fn with_resources(latency: u32, resources: ResourceConstraint) -> Self {
        PowerManagementOptions { latency, resources, mux_order: MuxOrder::OutputsFirst }
    }

    /// Replaces the multiplexor processing order.
    pub fn mux_order(mut self, order: MuxOrder) -> Self {
        self.mux_order = order;
        self
    }
}

/// Runs the power-management scheduling algorithm on `cdfg`.
///
/// The returned [`PowerManagementResult`] contains the constrained CDFG
/// (with control edges), the power-managed schedule, the traditional
/// baseline schedule for the same constraints, and the per-multiplexor
/// shut-down information needed by the controller generator and by the
/// power/area reports.
///
/// # Errors
///
/// * [`PowerManageError::InvalidCdfg`] if the input graph fails validation,
/// * [`PowerManageError::Scheduling`] if even the baseline schedule cannot
///   meet the latency / resource constraints.
pub fn power_manage(
    cdfg: &Cdfg,
    options: &PowerManagementOptions,
) -> Result<PowerManagementResult, PowerManageError> {
    let mut workspace = sched::force::Workspace::new();
    power_manage_with_workspace(cdfg, options, &mut workspace)
}

/// Like [`power_manage`], but warm-started: every scheduling run (the
/// baseline and the final HYPER pass) reuses the buffers of `workspace`.
///
/// This is the entry point for walking one circuit across a whole range of
/// latency budgets (the Pareto explorer): adjacent budgets reuse the
/// previous budget's ASAP/ALAP and kernel buffers, and the results are
/// bit-identical to per-budget [`power_manage`] calls — the warm-start
/// identity tests pin the equality against the `sched::naive` reference.
///
/// # Errors
///
/// Same conditions as [`power_manage`].
pub fn power_manage_with_workspace(
    cdfg: &Cdfg,
    options: &PowerManagementOptions,
    workspace: &mut sched::force::Workspace,
) -> Result<PowerManagementResult, PowerManageError> {
    cdfg.validate()?;

    // Baseline: what a traditional scheduler does with the same constraints.
    let baseline_schedule = hyper::schedule_with_workspace(
        cdfg,
        &HyperOptions { latency: options.latency, resources: options.resources.clone() },
        workspace,
    )?;

    let mut working = cdfg.clone();
    let order = options.mux_order.order(cdfg);
    let mut managed: Vec<ManagedMux> = Vec::new();
    // Analysis state carried across the per-mux loop: the cone workspace is
    // prepared once (control edges never change data reachability, so its
    // dead-end set stays valid for the whole loop), and the ASAP/ALAP
    // analysis is seeded once and then only tightened from the endpoints of
    // each candidate's control edges.
    let mut cone_ws = ConeWorkspace::new();
    cone_ws.prepare(&working);
    let mut timing = Timing::empty();
    timing.compute_into(&working, options.latency);
    let mut delta = TimingDelta::default();
    let mut edge_plan: Vec<(NodeId, NodeId)> = Vec::new();

    // Steps 2-10: examine each multiplexor, keeping its control edges only
    // when every node still satisfies ASAP <= ALAP for the requested latency.
    for mux in order {
        let cones = MuxCones::analyze_with(&working, mux, &mut cone_ws);
        if !cones.has_shutdown_candidates() {
            continue;
        }

        let mut entry = ManagedMux {
            mux,
            select_driver: cones.select_driver,
            select_functional: cones.select_driver_is_functional,
            shutdown_false: cones.shutdown_false.clone(),
            shutdown_true: cones.shutdown_true.clone(),
            accepted: false,
            control_edges: Vec::new(),
        };

        if !cones.select_driver_is_functional {
            // The branch decision comes straight from a primary input or a
            // constant: it is available before step 1, so no ordering
            // constraint is needed and the multiplexor is trivially
            // manageable.
            entry.accepted = true;
            managed.push(entry);
            continue;
        }

        // Step 10 (tentatively): control edges from the last control-cone
        // node to the top nodes of each shut-down cone.  An edge
        // `select_driver -> top` would close a cycle iff `top` is already an
        // ancestor of the select driver — in that case the select driver
        // depends on the node and the multiplexor cannot be managed.
        edge_plan.clear();
        let mut ok = true;
        let ancestors = cone_ws.ancestors_of(&working, cones.select_driver);
        for set in [&cones.shutdown_false, &cones.shutdown_true] {
            for top in cones.top_nodes(&working, set) {
                if ancestors.contains(top.index()) {
                    ok = false;
                }
                edge_plan.push((cones.select_driver, top));
            }
        }

        // Steps 4-8: the feasibility test.  `tighten` re-propagates ASAP
        // forward from the edge destinations and ALAP backward from the edge
        // sources; on infeasibility it restores the previous fixed point, so
        // a rejected candidate leaves no trace anywhere.
        if ok {
            ok = timing.tighten(&working, &edge_plan, &mut delta);
        }

        if ok {
            entry.accepted = true;
            for &(before, after) in &edge_plan {
                let edge = working
                    .add_control_edge(before, after)
                    .expect("edge pre-checked against the ancestor set");
                entry.control_edges.push(edge);
            }
        }
        managed.push(entry);
    }

    // Step 11: HYPER-style scheduling of the constrained graph.  Under an
    // explicit resource limit the extra precedence edges may push the
    // schedule past the latency even though the pure timing test passed; in
    // that case relax the *most*-recently accepted multiplexor first (LIFO —
    // `rposition` below) and repeat until the constraint is met again (the
    // paper's "algorithm chooses a schedule only if the required throughput
    // and hardware constraints are met").  Unwinding newest-first keeps the
    // decisions of earlier, higher-priority multiplexors intact: the order
    // heuristics examine the most promising muxes first, so the marginal
    // acceptances are the cheapest to give back.
    let schedule = loop {
        match hyper::schedule_with_workspace(
            &working,
            &HyperOptions { latency: options.latency, resources: options.resources.clone() },
            workspace,
        ) {
            Ok(s) => break s,
            Err(err) => {
                let relaxable =
                    managed.iter().rposition(|m| m.accepted && !m.control_edges.is_empty());
                match relaxable {
                    Some(idx) if is_resource_pressure(&err) => {
                        for edge in std::mem::take(&mut managed[idx].control_edges) {
                            working.remove_control_edge(edge);
                        }
                        // The multiplexor may still be partially effective
                        // (operations that happen to land after the condition
                        // are gated), so it stays in the list but is no
                        // longer marked as accepted.
                        managed[idx].accepted = false;
                    }
                    _ => return Err(err.into()),
                }
            }
        }
    };

    Ok(PowerManagementResult {
        cdfg: working,
        schedule,
        baseline_schedule,
        managed,
        latency: options.latency,
    })
}

/// Errors that can be cured by removing control edges (as opposed to the
/// latency simply being below the critical path of the *original* design).
pub(crate) fn is_resource_pressure(err: &ScheduleError) -> bool {
    matches!(
        err,
        ScheduleError::LatencyExceeded { .. }
            | ScheduleError::InsufficientResources { .. }
            | ScheduleError::LatencyTooSmall { .. }
    )
}

/// Runs [`power_manage`] with several multiplexor orders (Section IV-A) and
/// returns the result with the highest estimated datapath power reduction.
///
/// The candidate orders are the outputs-first default, the savings-driven
/// greedy order and the inputs-first order; for designs with at most
/// `exhaustive_limit` multiplexors every permutation is tried as well.  All
/// candidates share one scheduling workspace, so only the first pays the
/// buffer-growth cost; the results are bit-identical to cold per-candidate
/// [`power_manage`] calls.
///
/// # Errors
///
/// Same conditions as [`power_manage`].
pub fn power_manage_reordered(
    cdfg: &Cdfg,
    options: &PowerManagementOptions,
    exhaustive_limit: usize,
) -> Result<PowerManagementResult, PowerManageError> {
    let mut candidates: Vec<MuxOrder> =
        vec![MuxOrder::OutputsFirst, MuxOrder::BySavings, MuxOrder::InputsFirst];

    let muxes = cdfg.mux_nodes();
    if muxes.len() <= exhaustive_limit && muxes.len() > 1 {
        candidates.extend(permutations(&muxes).into_iter().map(MuxOrder::Explicit));
    }

    let mut workspace = sched::force::Workspace::new();
    let mut best: Option<PowerManagementResult> = None;
    for order in candidates {
        let run =
            power_manage_with_workspace(cdfg, &options.clone().mux_order(order), &mut workspace)?;
        let better = match &best {
            None => true,
            Some(current) => {
                run.savings().reduction_percent > current.savings().reduction_percent + 1e-9
            }
        };
        if better {
            best = Some(run);
        }
    }
    Ok(best.expect("at least one candidate order was evaluated"))
}

fn permutations<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for i in 0..items.len() {
        let mut rest = items.to_vec();
        let head = rest.remove(i);
        for mut tail in permutations(&rest) {
            let mut perm = vec![head.clone()];
            perm.append(&mut tail);
            out.push(perm);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::{NodeId, Op, OpClass};
    use sched::ResourceConstraint;

    fn abs_diff() -> (Cdfg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        (g, gt, amb, bma, m)
    }

    #[test]
    fn figure_2b_comparison_first_with_three_steps() {
        let (g, gt, amb, bma, m) = abs_diff();
        let result = power_manage(&g, &PowerManagementOptions::with_latency(3)).unwrap();
        let s = result.schedule();
        s.validate(result.cdfg()).unwrap();
        assert_eq!(s.step_of(gt), Some(1), "controlling comparison is scheduled first");
        assert_eq!(s.step_of(amb), Some(2));
        assert_eq!(s.step_of(bma), Some(2));
        assert_eq!(s.step_of(m), Some(3));
        assert_eq!(result.accepted_muxes().len(), 1);
        assert!(result.control_edge_count() >= 2);
    }

    #[test]
    fn figure_1_two_steps_no_power_management() {
        // "If only two control steps are allowed, there is no flexibility...
        // our scheduling algorithm will produce the same result as the
        // traditional method: no power management is possible."
        let (g, ..) = abs_diff();
        let result = power_manage(&g, &PowerManagementOptions::with_latency(2)).unwrap();
        assert_eq!(result.accepted_muxes().len(), 0);
        assert_eq!(result.managed_mux_count(), 0);
        assert_eq!(result.schedule().num_steps(), 2);
        assert!((result.savings().reduction_percent - 0.0).abs() < 1e-9);
        // The baseline and managed schedules need the same resources.
        assert_eq!(result.resource_usage(), result.baseline_resource_usage());
    }

    #[test]
    fn single_subtractor_partial_management() {
        // End of Section II-B: with one subtractor the subtraction scheduled
        // after the comparison can still be disabled, even though both
        // cannot be moved behind the condition simultaneously.
        let (g, ..) = abs_diff();
        let constraint =
            ResourceConstraint::limited([(OpClass::Sub, 1), (OpClass::Comp, 1), (OpClass::Mux, 1)]);
        let options = PowerManagementOptions::with_resources(3, constraint);
        let result = power_manage(&g, &options).unwrap();
        result.schedule().validate(result.cdfg()).unwrap();
        let savings = result.savings();
        // One subtraction always runs, the other runs half the time:
        // expected subtractions = 1.5 (vs 2.0 unmanaged).
        assert!((savings.expected(OpClass::Sub) - 1.5).abs() < 1e-9);
        assert!(savings.reduction_percent > 0.0);
        assert_eq!(result.resource_usage().count(OpClass::Sub), 1);
    }

    #[test]
    fn latency_below_critical_path_errors() {
        let (g, ..) = abs_diff();
        let err = power_manage(&g, &PowerManagementOptions::with_latency(1)).unwrap_err();
        assert!(matches!(err, PowerManageError::Scheduling(_)));
    }

    #[test]
    fn invalid_cdfg_is_rejected() {
        let g = Cdfg::new("empty");
        let err = power_manage(&g, &PowerManagementOptions::with_latency(3)).unwrap_err();
        assert!(matches!(err, PowerManageError::InvalidCdfg(_)));
    }

    #[test]
    fn design_without_muxes_still_schedules() {
        let mut g = Cdfg::new("sum");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let s = g.add_op(Op::Add, &[a, b]).unwrap();
        g.add_output("s", s).unwrap();
        let result = power_manage(&g, &PowerManagementOptions::with_latency(2)).unwrap();
        assert_eq!(result.managed_muxes().len(), 0);
        assert_eq!(result.savings().reduction_percent, 0.0);
    }

    #[test]
    fn more_slack_never_hurts_savings() {
        let (g, ..) = abs_diff();
        let three = power_manage(&g, &PowerManagementOptions::with_latency(3)).unwrap();
        let four = power_manage(&g, &PowerManagementOptions::with_latency(4)).unwrap();
        assert!(four.savings().reduction_percent >= three.savings().reduction_percent - 1e-9);
    }

    #[test]
    fn warm_workspace_runs_match_cold_runs_across_budgets() {
        // One workspace reused across the whole budget range (the Pareto
        // explorer's inner loop) must reproduce the cold per-budget results
        // exactly: same schedules, same accepted muxes, same savings.
        let (g, ..) = abs_diff();
        let mut ws = sched::force::Workspace::new();
        for latency in 2..8 {
            let options = PowerManagementOptions::with_latency(latency);
            let warm = power_manage_with_workspace(&g, &options, &mut ws).unwrap();
            let cold = power_manage(&g, &options).unwrap();
            assert_eq!(warm.schedule(), cold.schedule(), "latency {latency}");
            assert_eq!(warm.baseline_schedule(), cold.baseline_schedule(), "latency {latency}");
            assert_eq!(warm.accepted_muxes().len(), cold.accepted_muxes().len());
            assert_eq!(
                warm.savings().reduction_percent,
                cold.savings().reduction_percent,
                "bit-identical savings at latency {latency}"
            );
        }
    }

    #[test]
    fn reordered_search_is_at_least_as_good_as_default() {
        // Nested conditionals where processing order matters.
        let mut g = Cdfg::new("nested");
        let x = g.add_input("x");
        let y = g.add_input("y");
        let c1 = g.add_op(Op::Gt, &[x, y]).unwrap();
        let c2 = g.add_op(Op::Lt, &[x, y]).unwrap();
        let prod = g.add_op(Op::Mul, &[x, y]).unwrap();
        let sum = g.add_op(Op::Add, &[x, y]).unwrap();
        let inner = g.add_mux(c2, sum, prod).unwrap();
        let diff = g.add_op(Op::Sub, &[x, y]).unwrap();
        let outer = g.add_mux(c1, diff, inner).unwrap();
        g.add_output("o", outer).unwrap();

        let options = PowerManagementOptions::with_latency(4);
        let default = power_manage(&g, &options).unwrap();
        let best = power_manage_reordered(&g, &options, 4).unwrap();
        assert!(best.savings().reduction_percent >= default.savings().reduction_percent - 1e-9);
        best.schedule().validate(best.cdfg()).unwrap();
    }

    #[test]
    fn permutations_cover_all_orders() {
        let perms = permutations(&[1, 2, 3]);
        assert_eq!(perms.len(), 6);
        assert!(perms.contains(&vec![3, 1, 2]));
    }

    /// Two independent `|x - y|` blocks sharing one comparator.
    fn two_abs_diff_blocks() -> (Cdfg, NodeId, NodeId) {
        let mut g = Cdfg::new("two_blocks");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt1 = g.add_op(Op::Gt, &[a, b]).unwrap();
        let s1 = g.add_op(Op::Sub, &[a, b]).unwrap();
        let s2 = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m1 = g.add_mux(gt1, s2, s1).unwrap();
        g.add_output("abs1", m1).unwrap();
        let c = g.add_input("c");
        let d = g.add_input("d");
        let gt2 = g.add_op(Op::Gt, &[c, d]).unwrap();
        let s3 = g.add_op(Op::Sub, &[c, d]).unwrap();
        let s4 = g.add_op(Op::Sub, &[d, c]).unwrap();
        let m2 = g.add_mux(gt2, s4, s3).unwrap();
        g.add_output("abs2", m2).unwrap();
        (g, m1, m2)
    }

    #[test]
    fn relaxation_drops_most_recently_accepted_mux_first() {
        // With one comparator, three steps cannot fit both managed blocks:
        // both comparisons would have to run in step 1.  The relaxation loop
        // unwinds LIFO, so the *first*-accepted multiplexor (m1, examined
        // first by the outputs-first order) must survive and the second must
        // lose its control edges.
        let (g, m1, m2) = two_abs_diff_blocks();
        let constraint =
            ResourceConstraint::limited([(OpClass::Comp, 1), (OpClass::Sub, 2), (OpClass::Mux, 2)]);
        let options = PowerManagementOptions::with_resources(3, constraint);
        let result = power_manage(&g, &options).unwrap();
        result.schedule().validate(result.cdfg()).unwrap();

        let entry1 = result.managed_muxes().iter().find(|m| m.mux == m1).unwrap();
        let entry2 = result.managed_muxes().iter().find(|m| m.mux == m2).unwrap();
        assert!(entry1.accepted, "the first-accepted mux keeps its edges");
        assert!(!entry2.accepted, "the most recent acceptance is relaxed first");
        assert!(entry2.control_edges.is_empty(), "relaxed edges were removed");
        // Block 1 really is managed: its comparison precedes its subtractions.
        let s = result.schedule();
        assert_eq!(s.step_of(entry1.select_driver), Some(1));
        assert_eq!(result.accepted_muxes().len(), 1);
    }

    #[test]
    fn reordered_search_matches_cold_per_order_runs() {
        // The shared-workspace candidate loop must pick exactly the result a
        // cold evaluation of the same candidate orders picks.
        let mut g = Cdfg::new("nested");
        let x = g.add_input("x");
        let y = g.add_input("y");
        let c1 = g.add_op(Op::Gt, &[x, y]).unwrap();
        let c2 = g.add_op(Op::Lt, &[x, y]).unwrap();
        let prod = g.add_op(Op::Mul, &[x, y]).unwrap();
        let sum = g.add_op(Op::Add, &[x, y]).unwrap();
        let inner = g.add_mux(c2, sum, prod).unwrap();
        let diff = g.add_op(Op::Sub, &[x, y]).unwrap();
        let outer = g.add_mux(c1, diff, inner).unwrap();
        g.add_output("o", outer).unwrap();

        let options = PowerManagementOptions::with_latency(4);
        let warm = power_manage_reordered(&g, &options, 4).unwrap();

        let mut candidates: Vec<MuxOrder> =
            vec![MuxOrder::OutputsFirst, MuxOrder::BySavings, MuxOrder::InputsFirst];
        candidates.extend(permutations(&g.mux_nodes()).into_iter().map(MuxOrder::Explicit));
        let mut cold: Option<PowerManagementResult> = None;
        for order in candidates {
            let run = power_manage(&g, &options.clone().mux_order(order)).unwrap();
            let better = match &cold {
                None => true,
                Some(current) => {
                    run.savings().reduction_percent > current.savings().reduction_percent + 1e-9
                }
            };
            if better {
                cold = Some(run);
            }
        }
        let cold = cold.unwrap();
        assert_eq!(warm.schedule(), cold.schedule());
        assert_eq!(warm.baseline_schedule(), cold.baseline_schedule());
        assert_eq!(warm.savings().reduction_percent, cold.savings().reduction_percent);
        assert_eq!(warm.accepted_muxes().len(), cold.accepted_muxes().len());
    }

    #[test]
    fn incremental_path_matches_naive_reference_decisions() {
        // Same circuits the module tests above use, across a budget range,
        // pinned against the retained insert-recompute-rollback reference.
        let (g, ..) = abs_diff();
        let (g2, ..) = two_abs_diff_blocks();
        for graph in [&g, &g2] {
            for latency in 2..7 {
                let options = PowerManagementOptions::with_latency(latency);
                let fast = power_manage(graph, &options).unwrap();
                let slow = crate::naive::power_manage(graph, &options).unwrap();
                assert_eq!(fast.schedule(), slow.schedule(), "latency {latency}");
                assert_eq!(fast.baseline_schedule(), slow.baseline_schedule());
                assert_eq!(fast.managed_muxes().len(), slow.managed_muxes().len());
                for (f, s) in fast.managed_muxes().iter().zip(slow.managed_muxes()) {
                    assert_eq!(f.mux, s.mux);
                    assert_eq!(f.accepted, s.accepted, "latency {latency}, mux {}", f.mux);
                    assert_eq!(f.shutdown_false, s.shutdown_false);
                    assert_eq!(f.shutdown_true, s.shutdown_true);
                }
                assert_eq!(
                    fast.savings().reduction_percent,
                    slow.savings().reduction_percent,
                    "bit-identical savings at latency {latency}"
                );
            }
        }
    }
}
