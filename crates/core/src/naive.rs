//! Retained naive reference for the mux-analysis hot path.
//!
//! PR 6 rewrote [`crate::cones`] onto dense bitsets with a single
//! reverse-reachability sweep per branch, and [`crate::algorithm`] onto an
//! incremental per-mux feasibility check.  This module keeps the original
//! `BTreeSet`-walking implementation — [`analyze`] for the cone analysis and
//! [`power_manage`] for the whole selection loop — exactly as it was, as an
//! executable specification.  The cone-identity property tests in
//! `crates/gen/tests/` pin the bitset path against it on every generated
//! circuit family, and `bench_core` measures the speedup against it.
//!
//! Like `sched::naive`, the module is compiled for tests and behind the
//! `reference` feature only; production builds never pay for it.

use std::collections::BTreeSet;

use cdfg::{cone, Cdfg, NodeId, MUX_FALSE_PORT, MUX_SELECT_PORT, MUX_TRUE_PORT};
use sched::hyper::{self, HyperOptions};
use sched::Timing;

use crate::algorithm::PowerManagementOptions;
use crate::cones::MuxCones;
use crate::error::PowerManageError;
use crate::report::{ManagedMux, PowerManagementResult};

/// The original per-mux cone analysis: three `BTreeSet` fanin walks plus one
/// full reverse-reachability traversal per branch (with a per-node
/// `distance_to_output` scan inside — the O(n²) pass the bitset rewrite
/// removed).
///
/// # Panics
///
/// Panics if `mux` is not a multiplexor node of a structurally valid CDFG.
pub fn analyze(cdfg: &Cdfg, mux: NodeId) -> MuxCones {
    assert!(
        cdfg.node(mux).map(|d| d.op.is_mux()).unwrap_or(false),
        "MuxCones::analyze called on a non-mux node"
    );
    let select_driver = cdfg.operand(mux, MUX_SELECT_PORT).expect("mux select driven");
    let false_driver = cdfg.operand(mux, MUX_FALSE_PORT).expect("mux 0-input driven");
    let true_driver = cdfg.operand(mux, MUX_TRUE_PORT).expect("mux 1-input driven");

    let select_driver_is_functional =
        cdfg.node(select_driver).map(|d| d.op.is_functional()).unwrap_or(false);

    let select_cone = cone::functional_only(cdfg, &cone::port_fanin(cdfg, mux, MUX_SELECT_PORT));
    let false_cone = cone::functional_only(cdfg, &cone::port_fanin(cdfg, mux, MUX_FALSE_PORT));
    let true_cone = cone::functional_only(cdfg, &cone::port_fanin(cdfg, mux, MUX_TRUE_PORT));

    let shutdown_false = shutdown_set(cdfg, mux, false_driver, MUX_FALSE_PORT, &false_cone);
    let shutdown_true = shutdown_set(cdfg, mux, true_driver, MUX_TRUE_PORT, &true_cone);

    MuxCones {
        mux,
        select_driver,
        select_driver_is_functional,
        select_cone,
        false_cone,
        true_cone,
        shutdown_false,
        shutdown_true,
    }
}

/// The original shut-down-set computation: reverse reachability from all
/// observation points, refusing to traverse the branch's mux-input edge.
fn shutdown_set(
    cdfg: &Cdfg,
    mux: NodeId,
    _branch_driver: NodeId,
    port: u16,
    branch_cone: &BTreeSet<NodeId>,
) -> BTreeSet<NodeId> {
    let mut needed: BTreeSet<NodeId> = BTreeSet::new();
    let mut stack: Vec<NodeId> = cdfg.outputs().to_vec();
    for &o in cdfg.outputs() {
        needed.insert(o);
    }
    for node in cdfg.functional_nodes() {
        if cone::distance_to_output(cdfg, node).is_none() && needed.insert(node) {
            stack.push(node);
        }
    }
    while let Some(n) = stack.pop() {
        for pred in cdfg.predecessors(n) {
            if n == mux && cdfg.operand(mux, port) == Some(pred) {
                let feeds_other_port =
                    (0..3u16).filter(|&p| p != port).any(|p| cdfg.operand(mux, p) == Some(pred));
                if !feeds_other_port {
                    continue;
                }
            }
            if needed.insert(pred) {
                stack.push(pred);
            }
        }
    }
    branch_cone.iter().copied().filter(|n| !needed.contains(n)).collect()
}

/// The original selection loop: per mux, re-analyze cones from scratch,
/// physically insert the tentative control edges (cycle check per edge),
/// recompute the whole ASAP/ALAP analysis, and roll the edges back on
/// rejection.
///
/// Decision-equivalent to [`crate::power_manage`]; the identity tests compare
/// schedules, accepted flags, shut-down sets and savings (control-edge *ids*
/// may differ, because the incremental path only inserts edges for accepted
/// muxes and therefore draws different ids from the graph's free list).
///
/// # Errors
///
/// Same conditions as [`crate::power_manage`].
pub fn power_manage(
    cdfg: &Cdfg,
    options: &PowerManagementOptions,
) -> Result<PowerManagementResult, PowerManageError> {
    cdfg.validate()?;

    let mut workspace = sched::force::Workspace::new();
    let baseline_schedule = hyper::schedule_with_workspace(
        cdfg,
        &HyperOptions { latency: options.latency, resources: options.resources.clone() },
        &mut workspace,
    )?;

    let mut working = cdfg.clone();
    let order = options.mux_order.order(cdfg);
    let mut managed: Vec<ManagedMux> = Vec::new();
    let mut timing = Timing::empty();

    for mux in order {
        let cones = analyze(&working, mux);
        if !cones.has_shutdown_candidates() {
            continue;
        }

        let mut entry = ManagedMux {
            mux,
            select_driver: cones.select_driver,
            select_functional: cones.select_driver_is_functional,
            shutdown_false: cones.shutdown_false.clone(),
            shutdown_true: cones.shutdown_true.clone(),
            accepted: false,
            control_edges: Vec::new(),
        };

        if !cones.select_driver_is_functional {
            entry.accepted = true;
            managed.push(entry);
            continue;
        }

        let mut added = Vec::new();
        let mut ok = true;
        for set in [&cones.shutdown_false, &cones.shutdown_true] {
            for top in cones.top_nodes(&working, set) {
                match working.add_control_edge(cones.select_driver, top) {
                    Ok(edge) => added.push(edge),
                    Err(_) => ok = false,
                }
            }
        }

        if ok {
            timing.compute_into(&working, options.latency);
            ok = timing.is_feasible();
        }

        if ok {
            entry.accepted = true;
            entry.control_edges = added;
        } else {
            for edge in added {
                working.remove_control_edge(edge);
            }
        }
        managed.push(entry);
    }

    let schedule = loop {
        match hyper::schedule_with_workspace(
            &working,
            &HyperOptions { latency: options.latency, resources: options.resources.clone() },
            &mut workspace,
        ) {
            Ok(s) => break s,
            Err(err) => {
                let relaxable =
                    managed.iter().rposition(|m| m.accepted && !m.control_edges.is_empty());
                match relaxable {
                    Some(idx) if crate::algorithm::is_resource_pressure(&err) => {
                        for edge in std::mem::take(&mut managed[idx].control_edges) {
                            working.remove_control_edge(edge);
                        }
                        managed[idx].accepted = false;
                    }
                    _ => return Err(err.into()),
                }
            }
        }
    };

    Ok(PowerManagementResult {
        cdfg: working,
        schedule,
        baseline_schedule,
        managed,
        latency: options.latency,
    })
}
