//! Power-management-aware scheduling for behavioral synthesis.
//!
//! This crate is a from-scratch implementation of the scheduling technique of
//! Monteiro, Devadas, Ashar and Mauskar, *"Scheduling Techniques to Enable
//! Power Management"*, DAC 1996.  The observation behind the paper: in a
//! conditional computation such as `|a - b|`, a traditional scheduler happily
//! executes both `a - b` and `b - a` even though only one result is ever
//! used.  If instead the *controlling* operation (`a > b`) is scheduled
//! before the two subtractions, the controller can refuse to load the input
//! registers of the subtractor whose result will be discarded — eliminating
//! its switching activity for that sample.
//!
//! The crate provides:
//!
//! * [`cones`] — per-multiplexor fanin-cone analysis deciding which
//!   operations may be shut down for each branch (steps 2–3 of the paper's
//!   algorithm),
//! * [`algorithm`] — the main selection loop: feasibility-checked ASAP/ALAP
//!   tightening, control-edge insertion and final HYPER-style scheduling
//!   (steps 4–11),
//! * [`activation`] — expected execution counts per operation under a fair
//!   (or user-supplied) branch-probability model, evaluated against the
//!   *final* schedule so partially-managed designs (e.g. one shared
//!   subtractor) are handled exactly as Section II-B describes,
//! * [`savings`] — the relative datapath power model of Table II
//!   (MUX:1, COMP:4, +:3, −:3, ×:20),
//! * [`mux_order`] — the multiplexor (re)ordering heuristics of Section IV-A,
//! * [`pipeline`] — the pipelining transformation of Section IV-B,
//! * [`report`] — the result types tying everything together.
//!
//! # Quick start
//!
//! ```
//! use cdfg::{Cdfg, Op};
//! use pmsched::{PowerManagementOptions, power_manage};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // |a - b| from Figures 1 and 2 of the paper.
//! let mut g = Cdfg::new("abs_diff");
//! let a = g.add_input("a");
//! let b = g.add_input("b");
//! let gt = g.add_op(Op::Gt, &[a, b])?;
//! let amb = g.add_op(Op::Sub, &[a, b])?;
//! let bma = g.add_op(Op::Sub, &[b, a])?;
//! let m = g.add_mux(gt, bma, amb)?;
//! g.add_output("abs", m)?;
//!
//! // Three control steps leave enough slack to schedule the comparison
//! // first; one of the two subtractions is then shut down every sample.
//! let result = power_manage(&g, &PowerManagementOptions::with_latency(3))?;
//! assert_eq!(result.managed_mux_count(), 1);
//! assert!(result.savings().reduction_percent > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod algorithm;
pub mod cones;
pub mod error;
pub mod mux_order;
#[cfg(any(test, feature = "reference"))]
pub mod naive;
pub mod pipeline;
pub mod report;
pub mod savings;

pub use crate::activation::{Activation, SelectProbabilities};
pub use crate::algorithm::{power_manage, power_manage_with_workspace, PowerManagementOptions};
pub use crate::cones::{ConeWorkspace, MuxCones};
pub use crate::error::PowerManageError;
pub use crate::mux_order::MuxOrder;
pub use crate::pipeline::{pipeline_register_estimate, PipelineReport};
pub use crate::report::{ManagedMux, PowerManagementResult};
pub use crate::savings::{compose_reductions, OpWeights, SavingsReport};
