//! Pipelining as a power-management enabler (Section IV-B of the paper).
//!
//! Tight throughput constraints leave no slack for reordering operations, so
//! nothing can be shut down.  Pipelining processes `k` input samples
//! concurrently: each sample may now take `k ×` as many control steps
//! without reducing throughput, and that extra slack is exactly what the
//! power-management pass needs to schedule the controlling operations first.
//! The costs are increased latency (in clock cycles per sample) and extra
//! pipeline registers on values that cross stage boundaries.

use cdfg::Cdfg;

use crate::algorithm::{power_manage, PowerManagementOptions};
use crate::error::PowerManageError;
use crate::report::PowerManagementResult;

/// The outcome of power-managing a pipelined version of a design.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// Number of pipeline stages (1 = no pipelining).
    pub stages: u32,
    /// Control steps available to one sample after pipelining
    /// (`stages × base latency`).
    pub effective_latency: u32,
    /// Latency in clock cycles for one sample to traverse the pipeline; with
    /// this simple model it equals the effective latency.
    pub sample_latency: u32,
    /// Estimated number of extra pipeline registers: values produced in one
    /// stage and consumed in a later one.
    pub extra_registers: usize,
    /// The power-management result obtained with the enlarged latency.
    pub result: PowerManagementResult,
}

impl PipelineReport {
    /// Convenience accessor for the datapath power reduction of the
    /// pipelined, power-managed design.
    pub fn reduction_percent(&self) -> f64 {
        self.result.savings().reduction_percent
    }
}

/// Runs the power-management flow on a `stages`-deep pipelined version of
/// the design.
///
/// `options.latency` is interpreted as the *throughput* constraint (control
/// steps between consecutive samples); the scheduler is given
/// `options.latency × stages` steps for one sample.
///
/// # Errors
///
/// * [`PowerManageError::InvalidPipelineDepth`] when `stages` is zero,
/// * any error from [`power_manage`].
pub fn power_manage_pipelined(
    cdfg: &Cdfg,
    options: &PowerManagementOptions,
    stages: u32,
) -> Result<PipelineReport, PowerManageError> {
    if stages == 0 {
        return Err(PowerManageError::InvalidPipelineDepth);
    }
    let effective_latency = options.latency.saturating_mul(stages);
    let mut pipelined_options = options.clone();
    pipelined_options.latency = effective_latency;
    let result = power_manage(cdfg, &pipelined_options)?;
    let extra_registers = pipeline_register_estimate(&result, options.latency, stages);
    Ok(PipelineReport {
        stages,
        effective_latency,
        sample_latency: effective_latency,
        extra_registers,
        result,
    })
}

/// Counts data values produced in one pipeline stage and consumed in a later
/// one — each needs a pipeline register per stage boundary it crosses.
///
/// `result` must have been scheduled with `base_latency × stages` control
/// steps (as [`power_manage_pipelined`] does); callers that cache one
/// schedule and re-derive the register cost for several `(base latency,
/// stages)` factorings of the same effective latency can call this directly.
pub fn pipeline_register_estimate(
    result: &PowerManagementResult,
    base_latency: u32,
    stages: u32,
) -> usize {
    if stages <= 1 {
        return 0;
    }
    let stage_of = |step: u32| -> u32 { (step - 1) / base_latency.max(1) };
    let cdfg = result.cdfg();
    let schedule = result.schedule();
    let mut crossings = 0usize;
    for node in cdfg.functional_nodes() {
        let Some(src_step) = schedule.step_of(node) else { continue };
        for consumer in cdfg.data_successors(node) {
            if let Some(dst_step) = schedule.step_of(consumer) {
                let delta = stage_of(dst_step).saturating_sub(stage_of(src_step));
                crossings += delta as usize;
            }
        }
    }
    crossings
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::Op;

    /// A design whose critical path equals the throughput constraint, so the
    /// unpipelined run has zero slack and cannot manage anything.
    fn tight_design() -> Cdfg {
        let mut g = Cdfg::new("tight");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let cmp = g.add_op(Op::Gt, &[a, b]).unwrap();
        let diff = g.add_op(Op::Sub, &[a, b]).unwrap();
        let sum = g.add_op(Op::Add, &[a, b]).unwrap();
        let m = g.add_mux(cmp, sum, diff).unwrap();
        g.add_output("o", m).unwrap();
        g
    }

    #[test]
    fn pipelining_creates_slack_for_power_management() {
        let g = tight_design();
        let options = PowerManagementOptions::with_latency(2);
        let unpipelined = power_manage(&g, &options).unwrap();
        assert_eq!(unpipelined.managed_mux_count(), 0, "no slack at latency 2");

        let pipelined = power_manage_pipelined(&g, &options, 2).unwrap();
        assert_eq!(pipelined.effective_latency, 4);
        assert_eq!(pipelined.result.managed_mux_count(), 1);
        assert!(pipelined.reduction_percent() > 0.0);
    }

    #[test]
    fn zero_stages_is_rejected() {
        let g = tight_design();
        let err =
            power_manage_pipelined(&g, &PowerManagementOptions::with_latency(2), 0).unwrap_err();
        assert_eq!(err, PowerManageError::InvalidPipelineDepth);
    }

    #[test]
    fn single_stage_matches_plain_power_management() {
        let g = tight_design();
        let options = PowerManagementOptions::with_latency(3);
        let plain = power_manage(&g, &options).unwrap();
        let piped = power_manage_pipelined(&g, &options, 1).unwrap();
        assert_eq!(piped.effective_latency, 3);
        assert_eq!(piped.extra_registers, 0);
        assert_eq!(piped.result.savings().reduction_percent, plain.savings().reduction_percent);
    }

    #[test]
    fn deeper_pipelines_cost_registers_and_latency() {
        let g = tight_design();
        let options = PowerManagementOptions::with_latency(2);
        let two = power_manage_pipelined(&g, &options, 2).unwrap();
        let three = power_manage_pipelined(&g, &options, 3).unwrap();
        assert!(three.sample_latency > two.sample_latency);
        // The disadvantage the paper lists: latency and registers grow.
        assert!(three.effective_latency == 6);
        assert!(two.extra_registers <= three.extra_registers + 2);
    }
}
