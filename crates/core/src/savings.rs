//! The relative power and area model of the paper's evaluation.
//!
//! Table II of the paper computes datapath power savings from the *expected
//! number of executions* of each operation, weighted by relative power
//! weights obtained from timing simulation of an 8-bit datapath:
//! MUX: 1, COMP: 4, +: 3, −: 3, ×: 20.  The same relative style is used for
//! the execution-unit area ratio ("Area Incr." column).

use std::collections::BTreeMap;
use std::fmt;

use cdfg::{OpClass, OpCounts};

use crate::activation::Activation;

/// Relative per-operation weights (power or area) indexed by [`OpClass`].
#[derive(Debug, Clone, PartialEq)]
pub struct OpWeights {
    weights: BTreeMap<OpClass, f64>,
}

impl OpWeights {
    /// The paper's relative datapath *power* weights for an 8-bit datapath:
    /// MUX: 1, COMP: 4, +: 3, −: 3, ×: 20.  Division is treated like a
    /// multiplier and shift/logic like a multiplexor (extensions beyond the
    /// paper's operation set).
    pub fn paper_power() -> Self {
        OpWeights::from_pairs([
            (OpClass::Mux, 1.0),
            (OpClass::Comp, 4.0),
            (OpClass::Add, 3.0),
            (OpClass::Sub, 3.0),
            (OpClass::Mul, 20.0),
            (OpClass::Div, 20.0),
            (OpClass::Logic, 1.0),
        ])
    }

    /// Relative execution-unit *area* weights for an 8-bit datapath (a mux
    /// is the unit; a ripple-carry adder/subtractor is several times larger,
    /// an array multiplier dominates).
    pub fn paper_area() -> Self {
        OpWeights::from_pairs([
            (OpClass::Mux, 1.0),
            (OpClass::Comp, 3.0),
            (OpClass::Add, 6.0),
            (OpClass::Sub, 6.0),
            (OpClass::Mul, 40.0),
            (OpClass::Div, 40.0),
            (OpClass::Logic, 2.0),
        ])
    }

    /// Builds weights from `(class, weight)` pairs; unlisted classes weigh 0.
    pub fn from_pairs<I: IntoIterator<Item = (OpClass, f64)>>(pairs: I) -> Self {
        OpWeights { weights: pairs.into_iter().collect() }
    }

    /// The weight of `class` (0 when unlisted).
    pub fn weight(&self, class: OpClass) -> f64 {
        self.weights.get(&class).copied().unwrap_or(0.0)
    }

    /// Weighted sum of an operation-count vector.
    pub fn weighted_counts(&self, counts: &OpCounts) -> f64 {
        OpClass::FUNCTIONAL.iter().map(|&c| self.weight(c) * counts.count(c) as f64).sum()
    }

    /// Weighted sum of an expected-execution map.
    pub fn weighted_expected(&self, expected: &BTreeMap<OpClass, f64>) -> f64 {
        expected.iter().map(|(&c, &n)| self.weight(c) * n).sum()
    }
}

impl Default for OpWeights {
    fn default() -> Self {
        OpWeights::paper_power()
    }
}

/// Datapath power-savings summary in the style of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct SavingsReport {
    /// Weighted datapath power with every operation executing each sample
    /// (no power management).
    pub baseline_weighted: f64,
    /// Weighted datapath power with the expected execution counts of the
    /// power-managed schedule.
    pub managed_weighted: f64,
    /// `100 * (baseline - managed) / baseline` — the "Power Red. (%)" column.
    pub reduction_percent: f64,
    /// Expected executions per operation class (the "Number of Operations"
    /// columns of Table II).
    pub expected_counts: BTreeMap<OpClass, f64>,
    /// Static operation counts of the design (Table I).
    pub total_counts: OpCounts,
}

impl SavingsReport {
    /// Computes the savings report from an activation analysis.
    pub fn compute(total_counts: OpCounts, activation: &Activation, weights: &OpWeights) -> Self {
        let expected_counts = activation.expected_counts();
        let baseline_weighted = weights.weighted_counts(&total_counts);
        let managed_weighted = weights.weighted_expected(&expected_counts);
        let reduction_percent = if baseline_weighted > 0.0 {
            100.0 * (baseline_weighted - managed_weighted) / baseline_weighted
        } else {
            0.0
        };
        SavingsReport {
            baseline_weighted,
            managed_weighted,
            reduction_percent,
            expected_counts,
            total_counts,
        }
    }

    /// Expected executions of `class` per computation.
    pub fn expected(&self, class: OpClass) -> f64 {
        self.expected_counts.get(&class).copied().unwrap_or(0.0)
    }
}

/// Composes two independent percentage reductions multiplicatively:
/// applying an `a`-percent reduction and then a `b`-percent reduction to
/// what remains leaves `(1 - a/100) · (1 - b/100)` of the original, so the
/// combined reduction is `100 · (1 - (1 - a/100)(1 - b/100))`.
///
/// This is how shut-down savings (fewer expected executions) compose with
/// slowdown savings (lower energy per execution under a scaled-delay /
/// DVS model): the two mechanisms are independent per-operation factors,
/// so their relative reductions multiply rather than add.
pub fn compose_reductions(a_percent: f64, b_percent: f64) -> f64 {
    100.0 * (1.0 - (1.0 - a_percent / 100.0) * (1.0 - b_percent / 100.0))
}

impl fmt::Display for SavingsReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "datapath power {:.2} -> {:.2} ({:.2}% reduction)",
            self.baseline_weighted, self.managed_weighted, self.reduction_percent
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_power_weights_match_table_ii_footnote() {
        let w = OpWeights::paper_power();
        assert_eq!(w.weight(OpClass::Mux), 1.0);
        assert_eq!(w.weight(OpClass::Comp), 4.0);
        assert_eq!(w.weight(OpClass::Add), 3.0);
        assert_eq!(w.weight(OpClass::Sub), 3.0);
        assert_eq!(w.weight(OpClass::Mul), 20.0);
        assert_eq!(w.weight(OpClass::Structural), 0.0);
        assert_eq!(OpWeights::default(), w);
    }

    #[test]
    fn weighted_counts_sums_by_class() {
        let counts = OpCounts { mux: 1, comp: 1, add: 0, sub: 2, mul: 0, div: 0, logic: 0 };
        // 1*1 + 1*4 + 2*3 = 11
        assert_eq!(OpWeights::paper_power().weighted_counts(&counts), 11.0);
    }

    #[test]
    fn weighted_expected_sums_fractions() {
        let mut expected = BTreeMap::new();
        expected.insert(OpClass::Sub, 1.0);
        expected.insert(OpClass::Comp, 1.0);
        expected.insert(OpClass::Mux, 1.0);
        // 3 + 4 + 1 = 8; with both subs always on it would be 11.
        assert_eq!(OpWeights::paper_power().weighted_expected(&expected), 8.0);
    }

    #[test]
    fn composed_reductions_multiply_the_remainders() {
        // 50% then 50% leaves a quarter: 75% combined.
        assert!((compose_reductions(50.0, 50.0) - 75.0).abs() < 1e-12);
        // Composition with zero is the identity, in both positions.
        assert!((compose_reductions(30.0, 0.0) - 30.0).abs() < 1e-12);
        assert!((compose_reductions(0.0, 30.0) - 30.0).abs() < 1e-12);
        // Commutative, and never exceeds 100% for reductions in [0, 100].
        assert!((compose_reductions(20.0, 60.0) - compose_reductions(60.0, 20.0)).abs() < 1e-12);
        assert!(compose_reductions(100.0, 40.0) <= 100.0);
        // A negative "reduction" (a regression) composes symmetrically too:
        // saving 50% then regressing 10% leaves 0.5 * 1.1 = 55% => 45%.
        assert!((compose_reductions(50.0, -10.0) - 45.0).abs() < 1e-12);
    }

    #[test]
    fn area_weights_make_multiplier_dominant() {
        let w = OpWeights::paper_area();
        assert!(w.weight(OpClass::Mul) > w.weight(OpClass::Add));
        assert!(w.weight(OpClass::Add) > w.weight(OpClass::Mux));
    }
}
