//! Property-based tests for the power-management scheduling algorithm.

use cdfg::{Cdfg, NodeId, Op};
use pmsched::{power_manage, PowerManagementOptions, SelectProbabilities};
use proptest::prelude::*;
use sched::ResourceConstraint;

/// Random conditional-heavy CDFGs: a pool of values extended by arithmetic
/// operations and by conditionals `cond ? x : y` with a freshly computed
/// comparison as the select.
#[derive(Debug, Clone)]
struct Recipe {
    num_inputs: usize,
    steps: Vec<(u8, usize, usize, usize)>,
    extra_latency: u32,
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    (2usize..5, prop::collection::vec((0u8..8, 0usize..64, 0usize..64, 0usize..64), 1..24), 0u32..5)
        .prop_map(|(num_inputs, steps, extra_latency)| Recipe { num_inputs, steps, extra_latency })
}

fn build(recipe: &Recipe) -> Cdfg {
    let mut g = Cdfg::new("random");
    let mut values: Vec<NodeId> = Vec::new();
    for i in 0..recipe.num_inputs {
        values.push(g.add_input(format!("in{i}")));
    }
    for &(opcode, a, b, c) in &recipe.steps {
        let pick = |idx: usize| values[idx % values.len()];
        let node = match opcode {
            0 => g.add_op(Op::Add, &[pick(a), pick(b)]).unwrap(),
            1 => g.add_op(Op::Sub, &[pick(a), pick(b)]).unwrap(),
            2 => g.add_op(Op::Mul, &[pick(a), pick(b)]).unwrap(),
            3 => g.add_op(Op::Gt, &[pick(a), pick(b)]).unwrap(),
            // Conditionals dominate so that power management has something
            // to work with.
            _ => {
                let sel = g.add_op(Op::Gt, &[pick(a), pick(b)]).unwrap();
                g.add_mux(sel, pick(b), pick(c)).unwrap()
            }
        };
        values.push(node);
    }
    let last = *values.last().expect("nonempty");
    g.add_output("out", last).unwrap();
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Power management never produces an invalid schedule and never exceeds
    /// the requested latency.
    #[test]
    fn managed_schedules_are_valid(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let latency = g.critical_path_length().max(1) + recipe.extra_latency;
        let result = power_manage(&g, &PowerManagementOptions::with_latency(latency)).unwrap();
        prop_assert!(result.schedule().validate(result.cdfg()).is_ok());
        prop_assert!(result.schedule().last_used_step() <= latency);
        prop_assert!(result.baseline_schedule().last_used_step() <= latency);
    }

    /// Savings are always within [0, 100] percent: gating can only remove
    /// work, never add it.
    #[test]
    fn savings_are_bounded(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let latency = g.critical_path_length().max(1) + recipe.extra_latency;
        let result = power_manage(&g, &PowerManagementOptions::with_latency(latency)).unwrap();
        let savings = result.savings();
        prop_assert!(savings.reduction_percent >= -1e-9);
        prop_assert!(savings.reduction_percent <= 100.0 + 1e-9);
        prop_assert!(savings.managed_weighted <= savings.baseline_weighted + 1e-9);
    }

    /// Every gated operation really is scheduled after its controlling
    /// condition, so the controller can make the decision in time.
    #[test]
    fn gated_ops_follow_their_condition(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let latency = g.critical_path_length().max(1) + recipe.extra_latency;
        let result = power_manage(&g, &PowerManagementOptions::with_latency(latency)).unwrap();
        let activation = result.activation(&SelectProbabilities::fair());
        for node in activation.gated_nodes() {
            let node_step = result.schedule().step_of(node).unwrap();
            for &mux in activation.gating_muxes(node) {
                let mm = result
                    .managed_muxes()
                    .iter()
                    .find(|m| m.mux == mux)
                    .expect("gating mux is recorded");
                if mm.select_functional {
                    let cond_step = result.schedule().step_of(mm.select_driver).unwrap();
                    prop_assert!(cond_step < node_step);
                }
            }
        }
    }

    /// Expected executions never exceed the static operation counts, and
    /// equal them when nothing is gated.
    #[test]
    fn expected_counts_bounded_by_static_counts(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let latency = g.critical_path_length().max(1) + recipe.extra_latency;
        let result = power_manage(&g, &PowerManagementOptions::with_latency(latency)).unwrap();
        let savings = result.savings();
        for (class, count) in result.op_counts().iter() {
            prop_assert!(savings.expected(class) <= count as f64 + 1e-9);
        }
        if result.managed_mux_count() == 0 {
            prop_assert!((savings.reduction_percent).abs() < 1e-9);
        }
    }

    /// Restricting the schedule to the baseline's own execution-unit
    /// allocation still succeeds (possibly with fewer managed muxes) — the
    /// algorithm honours hardware constraints rather than failing.
    #[test]
    fn resource_constrained_runs_succeed(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let latency = g.critical_path_length().max(1) + recipe.extra_latency;
        let unconstrained = power_manage(&g, &PowerManagementOptions::with_latency(latency)).unwrap();
        let baseline_units = unconstrained.baseline_resource_usage();
        let options = PowerManagementOptions::with_resources(
            latency,
            ResourceConstraint::Limited(baseline_units.clone()),
        );
        let constrained = power_manage(&g, &options).unwrap();
        prop_assert!(constrained
            .schedule()
            .validate_with(constrained.cdfg(), &ResourceConstraint::Limited(baseline_units))
            .is_ok());
        prop_assert!(constrained.savings().reduction_percent >= -1e-9);
    }
}
