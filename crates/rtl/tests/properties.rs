//! Property-based tests for the RTL stage: for random conditional designs,
//! random latencies and random input samples, the power-managed RTL must
//! always compute the same outputs as the untimed reference semantics, and
//! gating must only ever remove switching activity.

use std::collections::BTreeMap;

use cdfg::{Cdfg, NodeId, Op};
use pmsched::{power_manage, PowerManagementOptions};
use proptest::prelude::*;
use rtl::{Controller, Simulator};

#[derive(Debug, Clone)]
struct Recipe {
    num_inputs: usize,
    steps: Vec<(u8, usize, usize, usize)>,
    extra_latency: u32,
    stimuli: Vec<i64>,
}

fn recipe_strategy() -> impl Strategy<Value = Recipe> {
    (
        2usize..5,
        prop::collection::vec((0u8..8, 0usize..64, 0usize..64, 0usize..64), 1..20),
        0u32..4,
        prop::collection::vec(-300i64..300, 8..24),
    )
        .prop_map(|(num_inputs, steps, extra_latency, stimuli)| Recipe {
            num_inputs,
            steps,
            extra_latency,
            stimuli,
        })
}

fn build(recipe: &Recipe) -> Cdfg {
    let mut g = Cdfg::new("random");
    let mut values: Vec<NodeId> = Vec::new();
    for i in 0..recipe.num_inputs {
        values.push(g.add_input(format!("in{i}")));
    }
    for &(opcode, a, b, c) in &recipe.steps {
        let pick = |idx: usize| values[idx % values.len()];
        let node = match opcode {
            0 => g.add_op(Op::Add, &[pick(a), pick(b)]).unwrap(),
            1 => g.add_op(Op::Sub, &[pick(a), pick(b)]).unwrap(),
            2 => g.add_op(Op::Mul, &[pick(a), pick(b)]).unwrap(),
            3 => g.add_op(Op::Ge, &[pick(a), pick(b)]).unwrap(),
            _ => {
                let sel = g.add_op(Op::Gt, &[pick(a), pick(b)]).unwrap();
                g.add_mux(sel, pick(b), pick(c)).unwrap()
            }
        };
        values.push(node);
    }
    let last = *values.last().expect("nonempty");
    g.add_output("out", last).unwrap();
    g
}

fn samples(recipe: &Recipe, cdfg: &Cdfg) -> Vec<BTreeMap<String, i64>> {
    let names: Vec<String> =
        cdfg.inputs().iter().map(|&n| cdfg.node(n).unwrap().name.clone()).collect();
    recipe
        .stimuli
        .chunks(names.len().max(1))
        .filter(|chunk| chunk.len() == names.len())
        .map(|chunk| names.iter().cloned().zip(chunk.iter().copied()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The power-managed RTL always matches the reference semantics — the
    /// simulator's built-in cross-check would fail the run otherwise — and
    /// the controller's gating never touches operations outside the
    /// shut-down sets.
    #[test]
    fn managed_rtl_matches_reference(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let latency = g.critical_path_length().max(1) + recipe.extra_latency;
        let result = power_manage(&g, &PowerManagementOptions::with_latency(latency)).unwrap();
        let controller = Controller::generate(&result);
        let mut sim = Simulator::new(result.cdfg(), result.schedule(), &controller).unwrap();

        let all_shutdown: Vec<NodeId> = result
            .managed_muxes()
            .iter()
            .flat_map(|m| m.shutdown_false.iter().chain(m.shutdown_true.iter()).copied())
            .collect();

        for sample in samples(&recipe, &g) {
            let run = sim.run_sample(&sample).unwrap();
            for gated in &run.gated {
                prop_assert!(all_shutdown.contains(gated), "{gated} gated but never a candidate");
            }
            // Everything scheduled is either executed or gated.
            prop_assert_eq!(run.executed.len() + run.gated.len(), g.functional_nodes().len());
        }
    }

    /// Over identical stimuli, the managed design never toggles more bits
    /// than the unmanaged baseline plus a small tolerance (held operand
    /// registers can only remove transitions).
    #[test]
    fn gating_only_removes_switching(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let latency = g.critical_path_length().max(1) + recipe.extra_latency;
        let result = power_manage(&g, &PowerManagementOptions::with_latency(latency)).unwrap();

        let managed_ctrl = Controller::generate(&result);
        let baseline_ctrl = Controller::ungated(&g, result.baseline_schedule());
        let mut managed = Simulator::new(result.cdfg(), result.schedule(), &managed_ctrl).unwrap();
        let mut baseline = Simulator::new(&g, result.baseline_schedule(), &baseline_ctrl).unwrap();

        for sample in samples(&recipe, &g) {
            managed.run_sample(&sample).unwrap();
            baseline.run_sample(&sample).unwrap();
        }
        prop_assert_eq!(baseline.total_gated_cycles(), 0);
        // Per-operation switching accounting: gating holds operand registers,
        // so the managed total can only be lower or equal.
        prop_assert!(
            managed.total_toggled_bits() <= baseline.total_toggled_bits(),
            "managed toggles {} > baseline {}",
            managed.total_toggled_bits(),
            baseline.total_toggled_bits()
        );
    }

    /// The generated VHDL contains one guarded assignment per gated enable
    /// and mentions every primary port.
    #[test]
    fn vhdl_structure_matches_controller(recipe in recipe_strategy()) {
        let g = build(&recipe);
        let latency = g.critical_path_length().max(1) + recipe.extra_latency;
        let result = power_manage(&g, &PowerManagementOptions::with_latency(latency)).unwrap();
        let controller = Controller::generate(&result);
        let vhdl = rtl::vhdl::emit(&result, &controller);
        prop_assert_eq!(vhdl.matches("-- power managed").count(), controller.gated_enable_count());
        for &input in g.inputs() {
            let name = &g.node(input).unwrap().name;
            prop_assert!(vhdl.contains(name.as_str()));
        }
        prop_assert!(vhdl.contains("end architecture rtl;"));
    }
}
