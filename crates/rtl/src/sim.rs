//! Cycle-accurate register-transfer simulation with switching-activity
//! accounting.
//!
//! This is the DesignPower substitute used for Table III: the design is
//! executed sample by sample, control step by control step, honouring the
//! controller's (possibly gated) enables.  For every execution unit the
//! simulator records how often it computed and how many input/output bits
//! toggled; an idle (shut-down) unit holds its previous operand values and
//! contributes no switching that cycle.
//!
//! The simulator also cross-checks every sample against the untimed
//! functional semantics of the CDFG ([`cdfg::Cdfg::evaluate`]) — if the
//! shut-down analysis ever disabled an operation whose value was actually
//! needed, the outputs would differ and the run would fail.

use std::collections::BTreeMap;
use std::fmt;

use binding::Datapath;
use cdfg::{Cdfg, NodeId, Op};
use sched::Schedule;

use crate::controller::Controller;

/// Errors produced by the RTL simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A primary input value is missing from the sample.
    MissingInput(String),
    /// An operation needed a value that was never computed — this indicates
    /// an unsound shut-down decision (or an invalid schedule).
    MissingValue {
        /// The operation that could not execute.
        node: NodeId,
        /// The operand whose value is missing.
        operand: NodeId,
    },
    /// The timed execution produced a different result than the untimed
    /// reference semantics.
    Mismatch {
        /// Output name where the difference was observed.
        output: String,
        /// Value produced by the RTL execution.
        rtl: i64,
        /// Value produced by the functional reference.
        reference: i64,
    },
    /// The datapath could not be constructed for this schedule.
    Binding(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingInput(name) => write!(f, "missing value for primary input `{name}`"),
            SimError::MissingValue { node, operand } => {
                write!(f, "operation {node} needs operand {operand} which was shut down or never computed")
            }
            SimError::Mismatch { output, rtl, reference } => {
                write!(
                    f,
                    "output `{output}` mismatch: rtl produced {rtl}, reference expects {reference}"
                )
            }
            SimError::Binding(msg) => write!(f, "datapath binding failed: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Per-unit activity accumulated over a simulation run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UnitActivity {
    /// Number of control steps in which the unit actually computed.
    pub active_cycles: u64,
    /// Number of control steps in which the unit was scheduled to compute
    /// but was shut down by the controller.
    pub gated_cycles: u64,
    /// Total number of input/output bits that toggled on the unit.
    pub toggled_bits: u64,
}

/// The result of simulating one input sample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SampleResult {
    /// Primary output values.
    pub outputs: BTreeMap<String, i64>,
    /// Operations that executed this sample.
    pub executed: Vec<NodeId>,
    /// Operations that were shut down this sample.
    pub gated: Vec<NodeId>,
}

/// A cycle-accurate simulator for one scheduled, power-managed design.
#[derive(Debug, Clone)]
pub struct Simulator {
    cdfg: Cdfg,
    schedule: Schedule,
    controller: Controller,
    datapath: Datapath,
    mask: i64,
    /// Last operand/result values seen by each *operation* (persists across
    /// samples, modelling the operand registers whose load enables the
    /// controller gates; a shut-down operation holds its previous values).
    op_state: BTreeMap<NodeId, Vec<i64>>,
    activity: BTreeMap<binding::UnitId, UnitActivity>,
    samples_run: u64,
}

impl Simulator {
    /// Builds a simulator for the given design, schedule and controller.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Binding`] when the datapath cannot be built (e.g.
    /// the schedule is incomplete).
    pub fn new(
        cdfg: &Cdfg,
        schedule: &Schedule,
        controller: &Controller,
    ) -> Result<Self, SimError> {
        let datapath =
            Datapath::build(cdfg, schedule).map_err(|e| SimError::Binding(e.to_string()))?;
        let mask =
            if cdfg.default_bitwidth() >= 64 { -1 } else { (1i64 << cdfg.default_bitwidth()) - 1 };
        Ok(Simulator {
            cdfg: cdfg.clone(),
            schedule: schedule.clone(),
            controller: controller.clone(),
            datapath,
            mask,
            op_state: BTreeMap::new(),
            activity: BTreeMap::new(),
            samples_run: 0,
        })
    }

    /// The datapath the simulator executes on.
    pub fn datapath(&self) -> &Datapath {
        &self.datapath
    }

    /// Number of samples simulated so far.
    pub fn samples_run(&self) -> u64 {
        self.samples_run
    }

    /// Runs one input sample through the whole schedule and returns the
    /// outputs together with the executed/gated operation sets.
    ///
    /// # Errors
    ///
    /// See [`SimError`]; in particular a [`SimError::Mismatch`] or
    /// [`SimError::MissingValue`] indicates an unsound power-management
    /// decision.
    pub fn run_sample(&mut self, inputs: &BTreeMap<String, i64>) -> Result<SampleResult, SimError> {
        // Seed values: primary inputs and constants.  Values are kept at
        // full word precision so the timed execution matches the untimed
        // reference semantics exactly; the datapath bitwidth only affects
        // the switching-activity accounting below.
        let mut values: BTreeMap<NodeId, i64> = BTreeMap::new();
        for (node, data) in self.cdfg.iter_nodes() {
            match data.op {
                Op::Input => {
                    let v = *inputs
                        .get(&data.name)
                        .ok_or_else(|| SimError::MissingInput(data.name.clone()))?;
                    values.insert(node, v);
                }
                Op::Const(c) => {
                    values.insert(node, c);
                }
                _ => {}
            }
        }

        let mut executed = Vec::new();
        let mut gated = Vec::new();

        for step in 1..=self.schedule.num_steps() {
            // Deterministic order within the step.
            for node in self.schedule.nodes_in_step(step) {
                let Some(enable) = self.controller.enable(node) else { continue };
                // Evaluate the gating conjunction using values recorded in
                // earlier steps.
                let mut active = true;
                for cond in &enable.conditions {
                    let cond_value = values.get(&cond.condition).copied().unwrap_or(0) != 0;
                    if cond_value != cond.active_when_one {
                        active = false;
                        break;
                    }
                }
                if !active {
                    gated.push(node);
                    if let Some(unit) = self.datapath.fu_binding().unit_of(node) {
                        self.activity.entry(unit).or_default().gated_cycles += 1;
                    }
                    continue;
                }

                // Gather operand values.
                let operands = self.cdfg.operands(node);
                let mut args = Vec::with_capacity(operands.len());
                for operand in &operands {
                    match values.get(operand) {
                        Some(&v) => args.push(v),
                        None => {
                            // The mux is special: only the selected data
                            // input needs a value (the other one may have
                            // been shut down).
                            if self.cdfg.op(node) == Op::Mux {
                                args.push(0);
                            } else {
                                return Err(SimError::MissingValue { node, operand: *operand });
                            }
                        }
                    }
                }
                let result = if self.cdfg.op(node) == Op::Mux {
                    // Re-read the selected input explicitly so a missing
                    // discarded input cannot corrupt the result.
                    let select = args[0];
                    let chosen = if select != 0 { operands[2] } else { operands[1] };
                    match values.get(&chosen) {
                        Some(&v) => v,
                        None => return Err(SimError::MissingValue { node, operand: chosen }),
                    }
                } else {
                    self.cdfg.op(node).eval(&args)
                };
                values.insert(node, result);
                executed.push(node);

                // Switching accounting on the unit executing this node,
                // restricted to the datapath word width.
                if let Some(unit) = self.datapath.fu_binding().unit_of(node) {
                    let mut snapshot: Vec<i64> = args.iter().map(|v| v & self.mask).collect();
                    snapshot.push(result & self.mask);
                    let entry = self.activity.entry(unit).or_default();
                    entry.active_cycles += 1;
                    let previous = self.op_state.entry(node).or_default();
                    let toggles = hamming(previous, &snapshot);
                    entry.toggled_bits += toggles;
                    *previous = snapshot;
                }
            }
        }

        // Collect and cross-check outputs.
        let reference = self.cdfg.evaluate(inputs);
        let mut outputs = BTreeMap::new();
        for &out in self.cdfg.outputs() {
            let name = self.cdfg.node(out).expect("live output").name.clone();
            let driver = self.cdfg.operands(out)[0];
            let value = values
                .get(&driver)
                .copied()
                .ok_or(SimError::MissingValue { node: out, operand: driver })?;
            let expect = reference[&name];
            if value != expect {
                return Err(SimError::Mismatch { output: name, rtl: value, reference: expect });
            }
            outputs.insert(name, value);
        }

        self.samples_run += 1;
        Ok(SampleResult { outputs, executed, gated })
    }

    /// Runs a batch of samples, returning the per-sample results.
    ///
    /// # Errors
    ///
    /// Stops at the first failing sample.
    pub fn run_samples(
        &mut self,
        samples: &[BTreeMap<String, i64>],
    ) -> Result<Vec<SampleResult>, SimError> {
        samples.iter().map(|s| self.run_sample(s)).collect()
    }

    /// Accumulated per-unit activity.
    pub fn activity(&self) -> &BTreeMap<binding::UnitId, UnitActivity> {
        &self.activity
    }

    /// Total toggled bits across all units (the raw switching count).
    pub fn total_toggled_bits(&self) -> u64 {
        self.activity.values().map(|a| a.toggled_bits).sum()
    }

    /// Total unit-cycles that were gated off.
    pub fn total_gated_cycles(&self) -> u64 {
        self.activity.values().map(|a| a.gated_cycles).sum()
    }
}

/// Bit-difference between two value snapshots (shorter snapshots are
/// zero-extended).
fn hamming(old: &[i64], new: &[i64]) -> u64 {
    let len = old.len().max(new.len());
    let mut toggles = 0u64;
    for i in 0..len {
        let a = old.get(i).copied().unwrap_or(0);
        let b = new.get(i).copied().unwrap_or(0);
        toggles += (a ^ b).count_ones() as u64;
    }
    toggles
}

#[cfg(test)]
mod tests {
    use super::*;
    use pmsched::{power_manage, PowerManagementOptions};

    fn abs_diff() -> Cdfg {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        g
    }

    fn sample(a: i64, b: i64) -> BTreeMap<String, i64> {
        let mut s = BTreeMap::new();
        s.insert("a".to_owned(), a);
        s.insert("b".to_owned(), b);
        s
    }

    fn simulator(latency: u32) -> Simulator {
        let g = abs_diff();
        let result = power_manage(&g, &PowerManagementOptions::with_latency(latency)).unwrap();
        let controller = Controller::generate(&result);
        Simulator::new(result.cdfg(), result.schedule(), &controller).unwrap()
    }

    #[test]
    fn outputs_match_reference_for_both_branches() {
        let mut sim = simulator(3);
        assert_eq!(sim.run_sample(&sample(9, 4)).unwrap().outputs["abs"], 5);
        assert_eq!(sim.run_sample(&sample(4, 9)).unwrap().outputs["abs"], 5);
        assert_eq!(sim.run_sample(&sample(7, 7)).unwrap().outputs["abs"], 0);
        assert_eq!(sim.samples_run(), 3);
    }

    #[test]
    fn managed_design_gates_one_subtraction_per_sample() {
        let mut sim = simulator(3);
        let r = sim.run_sample(&sample(9, 4)).unwrap();
        assert_eq!(r.gated.len(), 1, "exactly one subtraction is shut down");
        let r = sim.run_sample(&sample(4, 9)).unwrap();
        assert_eq!(r.gated.len(), 1);
        assert!(sim.total_gated_cycles() >= 2);
    }

    #[test]
    fn unmanaged_design_gates_nothing_and_toggles_more() {
        let mut managed = simulator(3);
        let mut unmanaged = simulator(2);
        for i in 0..50i64 {
            let s = sample((i * 37) % 256, (i * 91) % 256);
            managed.run_sample(&s).unwrap();
            unmanaged.run_sample(&s).unwrap();
        }
        assert_eq!(unmanaged.total_gated_cycles(), 0);
        assert!(managed.total_gated_cycles() >= 50);
        // The managed design executes fewer operations, so it toggles fewer
        // bits on its subtractor units overall.
        assert!(managed.total_toggled_bits() < unmanaged.total_toggled_bits() * 2);
    }

    #[test]
    fn missing_input_is_reported() {
        let mut sim = simulator(3);
        let err = sim.run_sample(&BTreeMap::new()).unwrap_err();
        assert!(matches!(err, SimError::MissingInput(_)));
    }

    #[test]
    fn wide_values_still_match_the_reference() {
        let mut sim = simulator(3);
        // Word-level values match the untimed reference exactly; only the
        // switching-activity accounting is restricted to the 8-bit width.
        let r = sim.run_sample(&sample(300, 10)).unwrap();
        assert_eq!(r.outputs["abs"], 290);
        assert!(sim.total_toggled_bits() > 0);
    }

    #[test]
    fn run_samples_batches() {
        let mut sim = simulator(3);
        let batch: Vec<_> = (0..10).map(|i| sample(i, 10 - i)).collect();
        let results = sim.run_samples(&batch).unwrap();
        assert_eq!(results.len(), 10);
    }
}
