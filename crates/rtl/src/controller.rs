//! Controller (finite state machine) generation.
//!
//! The controller has one state per control step.  In each state it asserts
//! the execute/load-enable signals of the operations scheduled in that step.
//! For a power-managed design, the enable of an operation inside a shut-down
//! cone is *conditional*: it is only asserted when the condition value,
//! computed in an earlier step and held in a register, selects that
//! operation's branch.  This is exactly the mechanism by which the idle
//! execution unit sees no new operand values and therefore dissipates no
//! switching power.

use std::collections::BTreeMap;
use std::fmt;

use cdfg::NodeId;
use pmsched::PowerManagementResult;

/// One gating term: the operation may only execute when the recorded value
/// of `condition` matches `active_when_one`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateCondition {
    /// The multiplexor whose branch decision gates the operation.
    pub mux: NodeId,
    /// The node computing the condition (the mux's select driver).  For
    /// selects driven by primary inputs this is the input node itself.
    pub condition: NodeId,
    /// `true` if the operation executes when the condition evaluates to a
    /// non-zero value (it feeds the 1-input of the mux), `false` if it
    /// executes when the condition is zero.
    pub active_when_one: bool,
}

/// The enable of one operation in its control step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperationEnable {
    /// The operation.
    pub node: NodeId,
    /// The control step (state) in which it executes.
    pub step: u32,
    /// Conjunctive gating terms; empty means the operation always executes
    /// in its step (no power management for it).
    pub conditions: Vec<GateCondition>,
}

impl OperationEnable {
    /// Whether this enable is gated at all.
    pub fn is_gated(&self) -> bool {
        !self.conditions.is_empty()
    }
}

/// The generated controller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Controller {
    num_steps: u32,
    enables: BTreeMap<NodeId, OperationEnable>,
}

impl Controller {
    /// Generates the controller for a power-management scheduling result.
    ///
    /// Every functional operation of the design gets an [`OperationEnable`];
    /// operations inside an accepted shut-down cone whose condition is
    /// available in an earlier step get gating terms.
    pub fn generate(result: &PowerManagementResult) -> Self {
        let cdfg = result.cdfg();
        let schedule = result.schedule();
        let mut enables: BTreeMap<NodeId, OperationEnable> = BTreeMap::new();

        for node in cdfg.functional_nodes() {
            let step = schedule.step_of(node).unwrap_or(0);
            enables.insert(node, OperationEnable { node, step, conditions: Vec::new() });
        }

        for mm in result.managed_muxes() {
            let condition_step = if mm.select_functional {
                schedule.step_of(mm.select_driver).unwrap_or(u32::MAX)
            } else {
                0
            };
            for (set, active_when_one) in [(&mm.shutdown_true, true), (&mm.shutdown_false, false)] {
                for &node in set {
                    let Some(node_step) = schedule.step_of(node) else { continue };
                    if condition_step < node_step {
                        if let Some(enable) = enables.get_mut(&node) {
                            enable.conditions.push(GateCondition {
                                mux: mm.mux,
                                condition: mm.select_driver,
                                active_when_one,
                            });
                        }
                    }
                }
            }
        }

        Controller { num_steps: schedule.num_steps(), enables }
    }

    /// Generates a traditional (ungated) controller for an arbitrary
    /// schedule: every operation simply executes in its control step.  This
    /// is the controller of the paper's baseline ("Orig") designs in
    /// Table III.
    pub fn ungated(cdfg: &cdfg::Cdfg, schedule: &sched::Schedule) -> Self {
        let mut enables: BTreeMap<NodeId, OperationEnable> = BTreeMap::new();
        for node in cdfg.functional_nodes() {
            let step = schedule.step_of(node).unwrap_or(0);
            enables.insert(node, OperationEnable { node, step, conditions: Vec::new() });
        }
        Controller { num_steps: schedule.num_steps(), enables }
    }

    /// Number of controller states (= control steps).
    pub fn num_steps(&self) -> u32 {
        self.num_steps
    }

    /// The enable record of `node`, if it is a functional operation.
    pub fn enable(&self, node: NodeId) -> Option<&OperationEnable> {
        self.enables.get(&node)
    }

    /// All enables, ordered by node id.
    pub fn enables(&self) -> impl Iterator<Item = &OperationEnable> + '_ {
        self.enables.values()
    }

    /// Enables asserted (possibly conditionally) in `step`.
    pub fn enables_in_step(&self, step: u32) -> Vec<&OperationEnable> {
        self.enables.values().filter(|e| e.step == step).collect()
    }

    /// Number of gated enables — a measure of the extra controller
    /// complexity the paper mentions ("the controller is somewhat more
    /// complex").
    pub fn gated_enable_count(&self) -> usize {
        self.enables.values().filter(|e| e.is_gated()).count()
    }

    /// Total number of gating terms across all enables.
    pub fn gating_term_count(&self) -> usize {
        self.enables.values().map(|e| e.conditions.len()).sum()
    }

    /// Distinct condition nodes the controller must store and route —
    /// each needs a 1-bit status register inside the controller.
    pub fn condition_signals(&self) -> Vec<NodeId> {
        let mut signals: Vec<NodeId> =
            self.enables.values().flat_map(|e| e.conditions.iter().map(|c| c.condition)).collect();
        signals.sort();
        signals.dedup();
        signals
    }
}

impl fmt::Display for Controller {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "controller with {} states, {} enables ({} gated)",
            self.num_steps,
            self.enables.len(),
            self.gated_enable_count()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::{Cdfg, Op};
    use pmsched::{power_manage, PowerManagementOptions};

    fn abs_diff() -> (Cdfg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        (g, gt, amb, bma, m)
    }

    #[test]
    fn managed_design_has_gated_enables() {
        let (g, gt, amb, bma, m) = abs_diff();
        let result = power_manage(&g, &PowerManagementOptions::with_latency(3)).unwrap();
        let ctrl = Controller::generate(&result);
        assert_eq!(ctrl.num_steps(), 3);
        assert_eq!(ctrl.gated_enable_count(), 2);
        assert_eq!(ctrl.condition_signals(), vec![gt]);

        let amb_enable = ctrl.enable(amb).unwrap();
        assert!(amb_enable.is_gated());
        assert!(amb_enable.conditions[0].active_when_one, "a-b runs when a>b");
        let bma_enable = ctrl.enable(bma).unwrap();
        assert!(!bma_enable.conditions[0].active_when_one, "b-a runs when a<=b");
        assert!(!ctrl.enable(m).unwrap().is_gated(), "the mux itself always runs");
        assert!(!ctrl.enable(gt).unwrap().is_gated());
    }

    #[test]
    fn unmanaged_design_has_no_gating() {
        let (g, ..) = abs_diff();
        let result = power_manage(&g, &PowerManagementOptions::with_latency(2)).unwrap();
        let ctrl = Controller::generate(&result);
        assert_eq!(ctrl.gated_enable_count(), 0);
        assert_eq!(ctrl.gating_term_count(), 0);
        assert!(ctrl.condition_signals().is_empty());
        assert!(ctrl.to_string().contains("0 gated"));
    }

    #[test]
    fn enables_per_step_cover_the_schedule() {
        let (g, ..) = abs_diff();
        let result = power_manage(&g, &PowerManagementOptions::with_latency(3)).unwrap();
        let ctrl = Controller::generate(&result);
        let total: usize = (1..=3).map(|s| ctrl.enables_in_step(s).len()).sum();
        assert_eq!(total, g.functional_nodes().len());
    }
}
