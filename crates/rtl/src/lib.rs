//! RTL generation and simulation for the power-management synthesis flow.
//!
//! This crate implements step 12 of the paper's algorithm — "Generate final
//! Datapath and Controller circuits" — together with the infrastructure the
//! paper obtained from Synopsys tools:
//!
//! * [`controller`] — the finite-state-machine controller.  For a
//!   power-managed design the load enables of the registers feeding a
//!   shut-down operation depend on a condition value computed in an earlier
//!   control step; this is the "somewhat more complex" controller the paper
//!   had to write a new routine for,
//! * [`vhdl`] — emission of synthesisable-style VHDL text for the datapath
//!   and controller (the artifact the paper fed to Synopsys Design
//!   Compiler),
//! * [`gates`] — a simple technology mapping model that expands the RTL
//!   into gate-equivalent counts (the Design Compiler area substitute used
//!   for Table III),
//! * [`sim`] — a cycle-accurate register-transfer simulator that executes
//!   the schedule sample by sample, honours the gated enables, checks
//!   functional equivalence against the untimed CDFG semantics and records
//!   switching activity (the DesignPower substitute used for Table III).
//!
//! # Example
//!
//! ```
//! use cdfg::{Cdfg, Op};
//! use pmsched::{power_manage, PowerManagementOptions};
//! use rtl::controller::Controller;
//! use rtl::sim::Simulator;
//! use std::collections::BTreeMap;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = Cdfg::new("abs_diff");
//! let a = g.add_input("a");
//! let b = g.add_input("b");
//! let gt = g.add_op(Op::Gt, &[a, b])?;
//! let amb = g.add_op(Op::Sub, &[a, b])?;
//! let bma = g.add_op(Op::Sub, &[b, a])?;
//! let m = g.add_mux(gt, bma, amb)?;
//! g.add_output("abs", m)?;
//!
//! let result = power_manage(&g, &PowerManagementOptions::with_latency(3))?;
//! let controller = Controller::generate(&result);
//! let mut sim = Simulator::new(result.cdfg(), result.schedule(), &controller)?;
//! let mut sample = BTreeMap::new();
//! sample.insert("a".to_owned(), 9);
//! sample.insert("b".to_owned(), 4);
//! let outputs = sim.run_sample(&sample)?.outputs;
//! assert_eq!(outputs["abs"], 5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod controller;
pub mod gates;
pub mod sim;
pub mod vhdl;

pub use crate::controller::{Controller, GateCondition};
pub use crate::gates::{GateModel, GateReport};
pub use crate::sim::{SampleResult, SimError, Simulator};
