//! Gate-level expansion: a Design Compiler substitute for area estimation.
//!
//! Table III of the paper synthesises the generated VHDL with Synopsys
//! Design Compiler and reports cell area.  Reproducing a 1996 commercial
//! library is neither possible nor necessary — what matters is the relative
//! area of the original and the power-managed designs.  This model expands
//! every datapath and controller component into equivalent two-input-gate
//! counts using textbook structures (ripple-carry adders, array multipliers,
//! one-hot FSMs) so that the ratio between the two designs is meaningful.

use std::fmt;

use binding::Datapath;
use cdfg::OpClass;

use crate::controller::Controller;

/// Gate-equivalent counts per component type.
#[derive(Debug, Clone, PartialEq)]
pub struct GateModel {
    /// Gates per bit of a ripple-carry adder / subtractor.
    pub adder_bit: f64,
    /// Gates per bit of a magnitude comparator.
    pub comparator_bit: f64,
    /// Gates per bit of a 2:1 word multiplexor.
    pub mux_bit: f64,
    /// Gates per bit² of an array multiplier (n-bit multiplier ≈ n² cells).
    pub multiplier_bit2: f64,
    /// Gates per bit of a shifter / logic unit.
    pub logic_bit: f64,
    /// Gates per register bit (a D flip-flop with enable).
    pub register_bit: f64,
    /// Gates per steering-multiplexor data input bit.
    pub steering_bit: f64,
    /// Gates per controller state (one-hot state register plus decode).
    pub state: f64,
    /// Gates per unconditional enable signal.
    pub enable: f64,
    /// Extra gates per gated (power-managed) enable: the condition register
    /// readback and the AND/OR gating term.
    pub gated_enable: f64,
}

impl GateModel {
    /// A textbook static-CMOS model (values in two-input-NAND equivalents).
    pub fn new() -> Self {
        GateModel {
            adder_bit: 7.0,
            comparator_bit: 4.5,
            mux_bit: 3.0,
            multiplier_bit2: 6.0,
            logic_bit: 2.0,
            register_bit: 6.0,
            steering_bit: 3.0,
            state: 8.0,
            enable: 2.0,
            gated_enable: 4.0,
        }
    }

    /// Gate count of one execution unit of `class` at `bits` width.
    pub fn unit_gates(&self, class: OpClass, bits: u32) -> f64 {
        let b = f64::from(bits);
        match class {
            OpClass::Add | OpClass::Sub => self.adder_bit * b,
            OpClass::Comp => self.comparator_bit * b,
            OpClass::Mux => self.mux_bit * b,
            OpClass::Mul | OpClass::Div => self.multiplier_bit2 * b * b,
            OpClass::Logic => self.logic_bit * b,
            OpClass::Structural => 0.0,
        }
    }

    /// Expands a datapath and its controller into a gate report.
    pub fn expand(&self, datapath: &Datapath, controller: &Controller) -> GateReport {
        let bits = datapath.bitwidth();
        let datapath_gates: f64 =
            datapath.units().iter().map(|u| self.unit_gates(u.class, bits)).sum();
        let register_gates =
            datapath.registers().len() as f64 * self.register_bit * f64::from(bits);
        let steering_gates =
            datapath.steering_input_count() as f64 * self.steering_bit * f64::from(bits);

        let plain_enables = controller.enables().count() - controller.gated_enable_count();
        let controller_gates = controller.num_steps() as f64 * self.state
            + plain_enables as f64 * self.enable
            + controller.gated_enable_count() as f64 * (self.enable + self.gated_enable)
            + controller.condition_signals().len() as f64 * self.register_bit;

        GateReport { datapath_gates, register_gates, steering_gates, controller_gates }
    }
}

impl Default for GateModel {
    fn default() -> Self {
        GateModel::new()
    }
}

/// Gate-equivalent area breakdown of a synthesised design.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GateReport {
    /// Execution units.
    pub datapath_gates: f64,
    /// Registers.
    pub register_gates: f64,
    /// Steering (interconnect) multiplexors.
    pub steering_gates: f64,
    /// Controller (FSM, enables, condition storage).
    pub controller_gates: f64,
}

impl GateReport {
    /// Total gate-equivalent area.
    pub fn total(&self) -> f64 {
        self.datapath_gates + self.register_gates + self.steering_gates + self.controller_gates
    }
}

impl fmt::Display for GateReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "gates: datapath {:.0}, registers {:.0}, steering {:.0}, controller {:.0}, total {:.0}",
            self.datapath_gates,
            self.register_gates,
            self.steering_gates,
            self.controller_gates,
            self.total()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::{Cdfg, Op};
    use pmsched::{power_manage, PowerManagementOptions};

    fn flow(latency: u32) -> (Datapath, Controller) {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        let result = power_manage(&g, &PowerManagementOptions::with_latency(latency)).unwrap();
        let controller = Controller::generate(&result);
        let datapath = Datapath::build(result.cdfg(), result.schedule()).unwrap();
        (datapath, controller)
    }

    #[test]
    fn managed_controller_costs_more_gates_than_unmanaged() {
        let model = GateModel::new();
        let (dp2, ctrl2) = flow(2);
        let (dp3, ctrl3) = flow(3);
        let unmanaged = model.expand(&dp2, &ctrl2);
        let managed = model.expand(&dp3, &ctrl3);
        // The managed controller carries gated enables and condition
        // storage, so it is strictly larger — the effect the paper mentions
        // when explaining why Table III savings are below Table II savings.
        assert!(managed.controller_gates > unmanaged.controller_gates);
        assert!(ctrl3.gated_enable_count() > ctrl2.gated_enable_count());
        // The power-managed schedule keeps both subtractors busy in the same
        // step (Figure 2(b)), so the datapath does not shrink.
        assert!(managed.datapath_gates >= unmanaged.datapath_gates);
        assert!(managed.total() > 0.0 && unmanaged.total() > 0.0);
    }

    #[test]
    fn multiplier_dominates_unit_gates() {
        let model = GateModel::new();
        assert!(model.unit_gates(OpClass::Mul, 8) > model.unit_gates(OpClass::Add, 8) * 5.0);
        assert_eq!(model.unit_gates(OpClass::Structural, 8), 0.0);
    }

    #[test]
    fn report_total_sums_components_and_displays() {
        let model = GateModel::default();
        let (dp, ctrl) = flow(3);
        let report = model.expand(&dp, &ctrl);
        let sum = report.datapath_gates
            + report.register_gates
            + report.steering_gates
            + report.controller_gates;
        assert!((report.total() - sum).abs() < 1e-9);
        assert!(report.to_string().starts_with("gates:"));
    }
}
