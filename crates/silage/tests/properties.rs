//! Property-based tests for the Silage-like frontend: randomly generated
//! programs always lex, parse and elaborate, and the elaborated CDFG agrees
//! with a direct interpretation of the AST.

use std::collections::BTreeMap;

use proptest::prelude::*;
use silage::{parser, BinaryOp, Expr};

/// A random expression over a fixed set of input names, kept small so the
/// generated programs stay readable in failure reports.
fn expr_strategy() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        Just("a".to_owned()),
        Just("b".to_owned()),
        Just("c".to_owned()),
        (0i64..100).prop_map(|n| n.to_string()),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} + {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} - {r})")),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} * {r})")),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, t, e)| format!("(if {c} > {t} then {t} else {e})")),
            inner.clone().prop_map(|e| format!("(-{e})")),
        ]
    })
}

/// A random program with one to three statements, the last of which defines
/// the output.
fn program_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(expr_strategy(), 1..4).prop_map(|exprs| {
        let mut body = String::new();
        for (i, expr) in exprs.iter().enumerate() {
            body.push_str(&format!("    t{i} = {expr};\n"));
        }
        let last = exprs.len() - 1;
        body.push_str(&format!("    y = t{last} + 0;\n"));
        format!("func generated(a, b, c) -> (y) {{\n{body}}}\n")
    })
}

/// Interprets an AST expression directly, mirroring the semantics the CDFG
/// elaboration is supposed to implement.
fn interpret(expr: &Expr, env: &BTreeMap<String, i64>) -> i64 {
    match expr {
        Expr::Number(n) => *n,
        Expr::Name(name) => env[name],
        Expr::Neg(inner) => interpret(inner, env).wrapping_neg(),
        Expr::Binary { op, lhs, rhs } => {
            let l = interpret(lhs, env);
            let r = interpret(rhs, env);
            match op {
                BinaryOp::Add => l.wrapping_add(r),
                BinaryOp::Sub => l.wrapping_sub(r),
                BinaryOp::Mul => l.wrapping_mul(r),
                BinaryOp::Div => {
                    if r == 0 {
                        0
                    } else {
                        l.wrapping_div(r)
                    }
                }
                BinaryOp::Lt => i64::from(l < r),
                BinaryOp::Le => i64::from(l <= r),
                BinaryOp::Gt => i64::from(l > r),
                BinaryOp::Ge => i64::from(l >= r),
                BinaryOp::Eq => i64::from(l == r),
                BinaryOp::Ne => i64::from(l != r),
            }
        }
        Expr::If { cond, then_branch, else_branch } => {
            if interpret(cond, env) != 0 {
                interpret(then_branch, env)
            } else {
                interpret(else_branch, env)
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every generated program compiles to a structurally valid CDFG whose
    /// multiplexor count equals the number of conditionals in the source.
    #[test]
    fn generated_programs_compile(source in program_strategy()) {
        let program = parser::parse(&source).unwrap();
        let conditionals: usize = program.functions[0]
            .body
            .iter()
            .map(|s| s.expr.conditional_count())
            .sum();
        let cdfg = silage::compile(&source).unwrap();
        prop_assert!(cdfg.validate().is_ok());
        prop_assert_eq!(cdfg.op_counts().mux, conditionals);
        prop_assert_eq!(cdfg.inputs().len(), 3);
        prop_assert_eq!(cdfg.outputs().len(), 1);
    }

    /// The elaborated CDFG computes the same value as a direct interpretation
    /// of the AST for arbitrary inputs.
    #[test]
    fn elaboration_preserves_semantics(source in program_strategy(), a in -50i64..50, b in -50i64..50, c in -50i64..50) {
        let program = parser::parse(&source).unwrap();
        let func = &program.functions[0];
        let cdfg = silage::compile(&source).unwrap();

        let mut env = BTreeMap::new();
        env.insert("a".to_owned(), a);
        env.insert("b".to_owned(), b);
        env.insert("c".to_owned(), c);

        // Interpret the statements in order under single-assignment rules.
        let mut ast_env = env.clone();
        for stmt in &func.body {
            let value = interpret(&stmt.expr, &ast_env);
            ast_env.insert(stmt.name.clone(), value);
        }
        let expected = ast_env["y"];

        let outputs = cdfg.evaluate(&env);
        prop_assert_eq!(outputs["y"], expected);
    }

    /// Pretty-printing whitespace and comments never changes the parsed
    /// structure (the lexer is insensitive to layout; only the recorded line
    /// numbers move).
    #[test]
    fn layout_is_irrelevant(source in program_strategy()) {
        let spaced = source.replace(';', " ;\n  # trailing comment\n");
        let original = parser::parse(&source).unwrap();
        let respaced = parser::parse(&spaced).unwrap();
        let strip = |p: &silage::Program| -> Vec<(String, Expr)> {
            p.functions[0]
                .body
                .iter()
                .map(|s| (s.name.clone(), s.expr.clone()))
                .collect()
        };
        prop_assert_eq!(strip(&original), strip(&respaced));
        prop_assert_eq!(&original.functions[0].params, &respaced.functions[0].params);
        prop_assert_eq!(&original.functions[0].outputs, &respaced.functions[0].outputs);
    }
}
