//! Hand-written lexer for the Silage-like language.

use crate::error::SilageError;
use crate::token::{Token, TokenKind};

/// Splits `source` into tokens, terminated by an [`TokenKind::Eof`] token.
///
/// Comments start with `#` or `//` and run to the end of the line.
///
/// # Errors
///
/// Returns [`SilageError::UnexpectedChar`] for characters outside the
/// language and [`SilageError::NumberTooLarge`] for oversized literals.
pub fn tokenize(source: &str) -> Result<Vec<Token>, SilageError> {
    let mut tokens = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line: u32 = 1;

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    chars.next();
                }
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    while let Some(&c) = chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        chars.next();
                    }
                } else {
                    tokens.push(Token { kind: TokenKind::Slash, line });
                }
            }
            c if c.is_ascii_digit() => {
                let mut value: i64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(digit) = d.to_digit(10) {
                        value = value
                            .checked_mul(10)
                            .and_then(|v| v.checked_add(i64::from(digit)))
                            .ok_or(SilageError::NumberTooLarge { line })?;
                        chars.next();
                    } else {
                        break;
                    }
                }
                tokens.push(Token { kind: TokenKind::Number(value), line });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut ident = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        ident.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let kind = match ident.as_str() {
                    "func" => TokenKind::Func,
                    "if" => TokenKind::If,
                    "then" => TokenKind::Then,
                    "else" => TokenKind::Else,
                    "num" => TokenKind::Num,
                    _ => TokenKind::Ident(ident),
                };
                tokens.push(Token { kind, line });
            }
            '(' => push_simple(&mut tokens, &mut chars, TokenKind::LParen, line),
            ')' => push_simple(&mut tokens, &mut chars, TokenKind::RParen, line),
            '{' => push_simple(&mut tokens, &mut chars, TokenKind::LBrace, line),
            '}' => push_simple(&mut tokens, &mut chars, TokenKind::RBrace, line),
            '[' => push_simple(&mut tokens, &mut chars, TokenKind::LBracket, line),
            ']' => push_simple(&mut tokens, &mut chars, TokenKind::RBracket, line),
            ',' => push_simple(&mut tokens, &mut chars, TokenKind::Comma, line),
            ';' => push_simple(&mut tokens, &mut chars, TokenKind::Semicolon, line),
            ':' => push_simple(&mut tokens, &mut chars, TokenKind::Colon, line),
            '+' => push_simple(&mut tokens, &mut chars, TokenKind::Plus, line),
            '*' => push_simple(&mut tokens, &mut chars, TokenKind::Star, line),
            '-' => {
                chars.next();
                if chars.peek() == Some(&'>') {
                    chars.next();
                    tokens.push(Token { kind: TokenKind::Arrow, line });
                } else {
                    tokens.push(Token { kind: TokenKind::Minus, line });
                }
            }
            '<' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token { kind: TokenKind::Le, line });
                } else {
                    tokens.push(Token { kind: TokenKind::Lt, line });
                }
            }
            '>' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token { kind: TokenKind::Ge, line });
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, line });
                }
            }
            '=' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token { kind: TokenKind::EqEq, line });
                } else {
                    tokens.push(Token { kind: TokenKind::Assign, line });
                }
            }
            '!' => {
                chars.next();
                if chars.peek() == Some(&'=') {
                    chars.next();
                    tokens.push(Token { kind: TokenKind::NotEq, line });
                } else {
                    return Err(SilageError::UnexpectedChar { ch: '!', line });
                }
            }
            other => return Err(SilageError::UnexpectedChar { ch: other, line }),
        }
    }

    tokens.push(Token { kind: TokenKind::Eof, line });
    Ok(tokens)
}

fn push_simple(
    tokens: &mut Vec<Token>,
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    kind: TokenKind,
    line: u32,
) {
    chars.next();
    tokens.push(Token { kind, line });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(source: &str) -> Vec<TokenKind> {
        tokenize(source).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_keywords_idents_and_numbers() {
        let toks = kinds("func f(a) -> (b) { b = if a then 1 else 2; }");
        assert!(toks.contains(&TokenKind::Func));
        assert!(toks.contains(&TokenKind::If));
        assert!(toks.contains(&TokenKind::Then));
        assert!(toks.contains(&TokenKind::Else));
        assert!(toks.contains(&TokenKind::Ident("f".into())));
        assert!(toks.contains(&TokenKind::Number(2)));
        assert_eq!(*toks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            kinds("a <= b >= c == d != e < f > g"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Le,
                TokenKind::Ident("b".into()),
                TokenKind::Ge,
                TokenKind::Ident("c".into()),
                TokenKind::EqEq,
                TokenKind::Ident("d".into()),
                TokenKind::NotEq,
                TokenKind::Ident("e".into()),
                TokenKind::Lt,
                TokenKind::Ident("f".into()),
                TokenKind::Gt,
                TokenKind::Ident("g".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn arrow_vs_minus() {
        assert_eq!(
            kinds("a - b -> c"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Minus,
                TokenKind::Ident("b".into()),
                TokenKind::Arrow,
                TokenKind::Ident("c".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_tracked() {
        let toks = tokenize("# comment\n// another\n  x = 1;\n").unwrap();
        assert_eq!(toks[0].kind, TokenKind::Ident("x".into()));
        assert_eq!(toks[0].line, 3);
    }

    #[test]
    fn unexpected_character_is_reported_with_line() {
        let err = tokenize("a = 1;\nb = $;\n").unwrap_err();
        assert_eq!(err, SilageError::UnexpectedChar { ch: '$', line: 2 });
    }

    #[test]
    fn bare_bang_is_rejected() {
        let err = tokenize("a ! b").unwrap_err();
        assert!(matches!(err, SilageError::UnexpectedChar { ch: '!', .. }));
    }

    #[test]
    fn oversized_number_is_rejected() {
        let err = tokenize("99999999999999999999999").unwrap_err();
        assert!(matches!(err, SilageError::NumberTooLarge { .. }));
    }

    #[test]
    fn slash_is_division_unless_doubled() {
        assert_eq!(
            kinds("a / b"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Slash,
                TokenKind::Ident("b".into()),
                TokenKind::Eof
            ]
        );
    }
}
