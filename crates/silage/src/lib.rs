//! A Silage-like behavioral description frontend.
//!
//! The paper's flow starts from Silage, the applicative single-assignment
//! language of the HYPER system.  This crate implements a small language in
//! the same spirit — single assignment, expression oriented, conditionals as
//! expressions — and elaborates it into the [`cdfg::Cdfg`] consumed by the
//! scheduling passes.  Conditional expressions become multiplexor nodes,
//! which is exactly the structure the power-management algorithm looks for.
//!
//! # Syntax
//!
//! ```text
//! func abs_diff(a: num[8], b: num[8]) -> (abs: num[8]) {
//!     c   = a > b;
//!     abs = if c then a - b else b - a;
//! }
//! ```
//!
//! * one or more `func` definitions; [`compile`] elaborates the first one
//!   (or the one named `main` if present),
//! * every statement assigns a fresh name (single assignment),
//! * every declared output must be assigned exactly once,
//! * expressions: integer literals, names, `+ - * /`, comparisons
//!   `< <= > >= == !=`, unary `-`, parentheses and
//!   `if <cond> then <a> else <b>`.
//!
//! # Example
//!
//! ```
//! let source = r#"
//!     func abs_diff(a: num[8], b: num[8]) -> (abs: num[8]) {
//!         c   = a > b;
//!         abs = if c then a - b else b - a;
//!     }
//! "#;
//! let cdfg = silage::compile(source)?;
//! assert_eq!(cdfg.op_counts().mux, 1);
//! assert_eq!(cdfg.op_counts().sub, 2);
//! # Ok::<(), silage::SilageError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod elaborate;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use crate::ast::{BinaryOp, Expr, FuncDef, Param, Program, Stmt};
pub use crate::error::SilageError;

use cdfg::Cdfg;

/// Compiles a source program into a CDFG.
///
/// If the program defines several functions, the one named `main` is chosen;
/// otherwise the first definition is used.
///
/// # Errors
///
/// Returns a [`SilageError`] for lexical, syntactic or semantic problems
/// (undefined names, reassignment, unassigned outputs, ...).
pub fn compile(source: &str) -> Result<Cdfg, SilageError> {
    let program = parser::parse(source)?;
    let func = program
        .functions
        .iter()
        .find(|f| f.name == "main")
        .or_else(|| program.functions.first())
        .ok_or(SilageError::EmptyProgram)?;
    elaborate::elaborate(func)
}

/// Compiles one specific function of a source program into a CDFG.
///
/// # Errors
///
/// Returns [`SilageError::UnknownFunction`] if no function has the requested
/// name, or any lexical/syntactic/semantic error.
pub fn compile_function(source: &str, name: &str) -> Result<Cdfg, SilageError> {
    let program = parser::parse(source)?;
    let func = program
        .functions
        .iter()
        .find(|f| f.name == name)
        .ok_or_else(|| SilageError::UnknownFunction(name.to_owned()))?;
    elaborate::elaborate(func)
}
