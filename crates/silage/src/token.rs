//! Tokens of the Silage-like language.

use std::fmt;

/// A lexical token together with the line it starts on (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// 1-based source line, used in error messages.
    pub line: u32,
}

/// The kinds of token the lexer produces.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TokenKind {
    /// An identifier (name of a function, parameter or value).
    Ident(String),
    /// An integer literal.
    Number(i64),
    /// The `func` keyword.
    Func,
    /// The `if` keyword.
    If,
    /// The `then` keyword.
    Then,
    /// The `else` keyword.
    Else,
    /// The `num` type keyword.
    Num,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `:`
    Colon,
    /// `=`
    Assign,
    /// `->`
    Arrow,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "identifier `{s}`"),
            TokenKind::Number(n) => write!(f, "number `{n}`"),
            TokenKind::Func => f.write_str("`func`"),
            TokenKind::If => f.write_str("`if`"),
            TokenKind::Then => f.write_str("`then`"),
            TokenKind::Else => f.write_str("`else`"),
            TokenKind::Num => f.write_str("`num`"),
            TokenKind::LParen => f.write_str("`(`"),
            TokenKind::RParen => f.write_str("`)`"),
            TokenKind::LBrace => f.write_str("`{`"),
            TokenKind::RBrace => f.write_str("`}`"),
            TokenKind::LBracket => f.write_str("`[`"),
            TokenKind::RBracket => f.write_str("`]`"),
            TokenKind::Comma => f.write_str("`,`"),
            TokenKind::Semicolon => f.write_str("`;`"),
            TokenKind::Colon => f.write_str("`:`"),
            TokenKind::Assign => f.write_str("`=`"),
            TokenKind::Arrow => f.write_str("`->`"),
            TokenKind::Plus => f.write_str("`+`"),
            TokenKind::Minus => f.write_str("`-`"),
            TokenKind::Star => f.write_str("`*`"),
            TokenKind::Slash => f.write_str("`/`"),
            TokenKind::Lt => f.write_str("`<`"),
            TokenKind::Le => f.write_str("`<=`"),
            TokenKind::Gt => f.write_str("`>`"),
            TokenKind::Ge => f.write_str("`>=`"),
            TokenKind::EqEq => f.write_str("`==`"),
            TokenKind::NotEq => f.write_str("`!=`"),
            TokenKind::Eof => f.write_str("end of input"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_descriptive() {
        assert_eq!(TokenKind::Ident("abc".into()).to_string(), "identifier `abc`");
        assert_eq!(TokenKind::Number(42).to_string(), "number `42`");
        assert_eq!(TokenKind::Arrow.to_string(), "`->`");
        assert_eq!(TokenKind::Eof.to_string(), "end of input");
    }
}
