//! Recursive-descent parser for the Silage-like language.

use crate::ast::{BinaryOp, Expr, FuncDef, Param, Program, Stmt};
use crate::error::SilageError;
use crate::lexer::tokenize;
use crate::token::{Token, TokenKind};

/// Parses a complete source file.
///
/// # Errors
///
/// Returns a [`SilageError`] describing the first lexical or syntactic
/// problem.
pub fn parse(source: &str) -> Result<Program, SilageError> {
    let tokens = tokenize(source)?;
    let mut parser = Parser { tokens, pos: 0 };
    parser.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn advance(&mut self) -> Token {
        let tok = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        tok
    }

    fn expect(&mut self, kind: &TokenKind, expected: &str) -> Result<Token, SilageError> {
        if &self.peek().kind == kind {
            Ok(self.advance())
        } else {
            Err(self.unexpected(expected))
        }
    }

    fn unexpected(&self, expected: &str) -> SilageError {
        SilageError::UnexpectedToken {
            expected: expected.to_owned(),
            found: self.peek().kind.clone(),
            line: self.peek().line,
        }
    }

    fn program(&mut self) -> Result<Program, SilageError> {
        let mut functions = Vec::new();
        while self.peek().kind != TokenKind::Eof {
            functions.push(self.function()?);
        }
        if functions.is_empty() {
            return Err(SilageError::EmptyProgram);
        }
        Ok(Program { functions })
    }

    fn function(&mut self) -> Result<FuncDef, SilageError> {
        self.expect(&TokenKind::Func, "`func`")?;
        let name = self.ident("function name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let params = self.param_list(TokenKind::RParen)?;
        self.expect(&TokenKind::RParen, "`)`")?;
        self.expect(&TokenKind::Arrow, "`->`")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        let outputs = self.param_list(TokenKind::RParen)?;
        self.expect(&TokenKind::RParen, "`)`")?;
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut body = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            body.push(self.statement()?);
        }
        self.expect(&TokenKind::RBrace, "`}`")?;
        Ok(FuncDef { name, params, outputs, body })
    }

    fn ident(&mut self, what: &str) -> Result<String, SilageError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.advance();
                Ok(name)
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn param_list(&mut self, terminator: TokenKind) -> Result<Vec<Param>, SilageError> {
        let mut params = Vec::new();
        if self.peek().kind == terminator {
            return Ok(params);
        }
        loop {
            params.push(self.param()?);
            if self.peek().kind == TokenKind::Comma {
                self.advance();
            } else {
                break;
            }
        }
        Ok(params)
    }

    fn param(&mut self) -> Result<Param, SilageError> {
        let name = self.ident("parameter name")?;
        let mut bitwidth = None;
        if self.peek().kind == TokenKind::Colon {
            self.advance();
            self.expect(&TokenKind::Num, "`num`")?;
            if self.peek().kind == TokenKind::LBracket {
                self.advance();
                match self.peek().kind {
                    TokenKind::Number(n) if n > 0 && n <= 64 => {
                        bitwidth = Some(n as u32);
                        self.advance();
                    }
                    _ => return Err(self.unexpected("a bitwidth between 1 and 64")),
                }
                self.expect(&TokenKind::RBracket, "`]`")?;
            }
        }
        Ok(Param { name, bitwidth })
    }

    fn statement(&mut self) -> Result<Stmt, SilageError> {
        let line = self.peek().line;
        let name = self.ident("a statement (`name = expr;`)")?;
        self.expect(&TokenKind::Assign, "`=`")?;
        let expr = self.expression()?;
        self.expect(&TokenKind::Semicolon, "`;`")?;
        Ok(Stmt { name, expr, line })
    }

    fn expression(&mut self) -> Result<Expr, SilageError> {
        if self.peek().kind == TokenKind::If {
            self.advance();
            let cond = self.expression()?;
            self.expect(&TokenKind::Then, "`then`")?;
            let then_branch = self.expression()?;
            self.expect(&TokenKind::Else, "`else`")?;
            let else_branch = self.expression()?;
            return Ok(Expr::If {
                cond: Box::new(cond),
                then_branch: Box::new(then_branch),
                else_branch: Box::new(else_branch),
            });
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<Expr, SilageError> {
        let lhs = self.additive()?;
        let op = match self.peek().kind {
            TokenKind::Lt => Some(BinaryOp::Lt),
            TokenKind::Le => Some(BinaryOp::Le),
            TokenKind::Gt => Some(BinaryOp::Gt),
            TokenKind::Ge => Some(BinaryOp::Ge),
            TokenKind::EqEq => Some(BinaryOp::Eq),
            TokenKind::NotEq => Some(BinaryOp::Ne),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let rhs = self.additive()?;
            Ok(Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) })
        } else {
            Ok(lhs)
        }
    }

    fn additive(&mut self) -> Result<Expr, SilageError> {
        let mut lhs = self.multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let rhs = self.multiplicative()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self) -> Result<Expr, SilageError> {
        let mut lhs = self.unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                _ => break,
            };
            self.advance();
            let rhs = self.unary()?;
            lhs = Expr::Binary { op, lhs: Box::new(lhs), rhs: Box::new(rhs) };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, SilageError> {
        if self.peek().kind == TokenKind::Minus {
            self.advance();
            let inner = self.unary()?;
            return Ok(Expr::Neg(Box::new(inner)));
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, SilageError> {
        match self.peek().kind.clone() {
            TokenKind::Number(n) => {
                self.advance();
                Ok(Expr::Number(n))
            }
            TokenKind::Ident(name) => {
                self.advance();
                Ok(Expr::Name(name))
            }
            TokenKind::LParen => {
                self.advance();
                let inner = self.expression()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(inner)
            }
            TokenKind::If => self.expression(),
            _ => Err(self.unexpected("an expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ABS_DIFF: &str = r#"
        func abs_diff(a: num[8], b: num[8]) -> (abs: num[8]) {
            c   = a > b;
            abs = if c then a - b else b - a;
        }
    "#;

    #[test]
    fn parses_abs_diff() {
        let program = parse(ABS_DIFF).unwrap();
        assert_eq!(program.functions.len(), 1);
        let f = &program.functions[0];
        assert_eq!(f.name, "abs_diff");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].bitwidth, Some(8));
        assert_eq!(f.outputs.len(), 1);
        assert_eq!(f.body.len(), 2);
        assert_eq!(f.body[1].expr.conditional_count(), 1);
    }

    #[test]
    fn parses_precedence() {
        let program = parse("func f(a, b, c) -> (o) { o = a + b * c - 1; }").unwrap();
        let expr = &program.functions[0].body[0].expr;
        // ((a + (b*c)) - 1)
        match expr {
            Expr::Binary { op: BinaryOp::Sub, lhs, .. } => match lhs.as_ref() {
                Expr::Binary { op: BinaryOp::Add, rhs, .. } => {
                    assert!(matches!(rhs.as_ref(), Expr::Binary { op: BinaryOp::Mul, .. }));
                }
                other => panic!("unexpected lhs {other:?}"),
            },
            other => panic!("unexpected expr {other:?}"),
        }
    }

    #[test]
    fn parses_nested_conditionals_and_parens() {
        let src =
            "func f(a, b) -> (o) { o = if a > b then (if a == b then 1 else 2) else a * (b + 1); }";
        let program = parse(src).unwrap();
        assert_eq!(program.functions[0].body[0].expr.conditional_count(), 2);
    }

    #[test]
    fn parses_unary_negation() {
        let program = parse("func f(a) -> (o) { o = -a + 1; }").unwrap();
        let expr = &program.functions[0].body[0].expr;
        assert!(matches!(expr, Expr::Binary { op: BinaryOp::Add, .. }));
    }

    #[test]
    fn parses_multiple_functions() {
        let src = "func f(a) -> (o) { o = a + 1; } func g(b) -> (p) { p = b - 1; }";
        let program = parse(src).unwrap();
        assert_eq!(program.functions.len(), 2);
        assert_eq!(program.functions[1].name, "g");
    }

    #[test]
    fn missing_semicolon_is_reported() {
        let err = parse("func f(a) -> (o) { o = a + 1 }").unwrap_err();
        match err {
            SilageError::UnexpectedToken { expected, .. } => assert!(expected.contains(";")),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn empty_source_is_reported() {
        assert_eq!(parse("  \n# nothing\n").unwrap_err(), SilageError::EmptyProgram);
    }

    #[test]
    fn bad_bitwidth_is_reported() {
        let err = parse("func f(a: num[0]) -> (o) { o = a; }").unwrap_err();
        assert!(matches!(err, SilageError::UnexpectedToken { .. }));
        let err = parse("func f(a: num[128]) -> (o) { o = a; }").unwrap_err();
        assert!(matches!(err, SilageError::UnexpectedToken { .. }));
    }

    #[test]
    fn empty_parameter_list_is_allowed() {
        let program = parse("func f() -> (o) { o = 1 + 2; }").unwrap();
        assert!(program.functions[0].params.is_empty());
    }
}
