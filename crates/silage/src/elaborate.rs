//! Elaboration: AST to CDFG.
//!
//! Conditional expressions become [`cdfg::Op::Mux`] nodes (select = the
//! condition, 1-input = the `then` branch, 0-input = the `else` branch),
//! comparisons become comparator nodes, and arithmetic maps one-to-one onto
//! the CDFG operation set.  The language is single assignment, so each
//! statement simply binds its name to the node implementing its expression.

use std::collections::BTreeMap;

use cdfg::{Cdfg, NodeId, Op};

use crate::ast::{BinaryOp, Expr, FuncDef};
use crate::error::SilageError;

/// Elaborates one function definition into a CDFG.
///
/// # Errors
///
/// Returns a [`SilageError`] for undefined names, reassignment, duplicate
/// declarations or unassigned outputs.
pub fn elaborate(func: &FuncDef) -> Result<Cdfg, SilageError> {
    // The design bitwidth is the widest declared port (default 8).
    let bitwidth =
        func.params.iter().chain(func.outputs.iter()).filter_map(|p| p.bitwidth).max().unwrap_or(8);
    let mut cdfg = Cdfg::with_bitwidth(&func.name, bitwidth);
    let mut env: BTreeMap<String, NodeId> = BTreeMap::new();

    for param in &func.params {
        if env.contains_key(&param.name) {
            return Err(SilageError::DuplicateDeclaration(param.name.clone()));
        }
        let node = cdfg.add_input(&param.name);
        env.insert(param.name.clone(), node);
    }

    let mut output_names: Vec<String> = Vec::new();
    for output in &func.outputs {
        if output_names.contains(&output.name) || env.contains_key(&output.name) {
            return Err(SilageError::DuplicateDeclaration(output.name.clone()));
        }
        output_names.push(output.name.clone());
    }

    for stmt in &func.body {
        if env.contains_key(&stmt.name) {
            return Err(SilageError::Reassignment { name: stmt.name.clone(), line: stmt.line });
        }
        let node = lower_expr(&mut cdfg, &env, &stmt.expr, stmt.line)?;
        env.insert(stmt.name.clone(), node);
    }

    for name in &output_names {
        let node =
            env.get(name).copied().ok_or_else(|| SilageError::UnassignedOutput(name.clone()))?;
        cdfg.add_output(name, node)?;
    }

    cdfg.validate()?;
    Ok(cdfg)
}

fn lower_expr(
    cdfg: &mut Cdfg,
    env: &BTreeMap<String, NodeId>,
    expr: &Expr,
    line: u32,
) -> Result<NodeId, SilageError> {
    match expr {
        Expr::Number(n) => Ok(cdfg.add_const(*n)),
        Expr::Name(name) => env
            .get(name)
            .copied()
            .ok_or_else(|| SilageError::UndefinedName { name: name.clone(), line }),
        Expr::Neg(inner) => {
            let value = lower_expr(cdfg, env, inner, line)?;
            Ok(cdfg.add_op(Op::Neg, &[value])?)
        }
        Expr::Binary { op, lhs, rhs } => {
            let l = lower_expr(cdfg, env, lhs, line)?;
            let r = lower_expr(cdfg, env, rhs, line)?;
            let op = match op {
                BinaryOp::Add => Op::Add,
                BinaryOp::Sub => Op::Sub,
                BinaryOp::Mul => Op::Mul,
                BinaryOp::Div => Op::Div,
                BinaryOp::Lt => Op::Lt,
                BinaryOp::Le => Op::Le,
                BinaryOp::Gt => Op::Gt,
                BinaryOp::Ge => Op::Ge,
                BinaryOp::Eq => Op::Eq,
                BinaryOp::Ne => Op::Ne,
            };
            Ok(cdfg.add_op(op, &[l, r])?)
        }
        Expr::If { cond, then_branch, else_branch } => {
            let select = lower_expr(cdfg, env, cond, line)?;
            let when_true = lower_expr(cdfg, env, then_branch, line)?;
            let when_false = lower_expr(cdfg, env, else_branch, line)?;
            Ok(cdfg.add_mux(select, when_false, when_true)?)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use std::collections::BTreeMap as Map;

    fn compile(src: &str) -> Result<Cdfg, SilageError> {
        let program = parse(src)?;
        elaborate(&program.functions[0])
    }

    #[test]
    fn abs_diff_elaborates_and_evaluates() {
        let g = compile(
            "func abs_diff(a, b) -> (abs) { c = a > b; abs = if c then a - b else b - a; }",
        )
        .unwrap();
        assert_eq!(g.op_counts().mux, 1);
        assert_eq!(g.op_counts().comp, 1);
        assert_eq!(g.op_counts().sub, 2);
        let mut inputs = Map::new();
        inputs.insert("a".to_owned(), 3);
        inputs.insert("b".to_owned(), 10);
        assert_eq!(g.evaluate(&inputs)["abs"], 7);
    }

    #[test]
    fn bitwidth_annotation_is_honoured() {
        let g = compile("func f(a: num[16]) -> (o: num[16]) { o = a + 1; }").unwrap();
        assert_eq!(g.default_bitwidth(), 16);
    }

    #[test]
    fn undefined_name_is_reported_with_line() {
        let err = compile("func f(a) -> (o) {\n o = a + missing;\n}").unwrap_err();
        assert!(
            matches!(err, SilageError::UndefinedName { ref name, line: 2 } if name == "missing")
        );
    }

    #[test]
    fn reassignment_is_rejected() {
        let err = compile("func f(a) -> (o) { o = a; o = a + 1; }").unwrap_err();
        assert!(matches!(err, SilageError::Reassignment { .. }));
    }

    #[test]
    fn unassigned_output_is_rejected() {
        let err = compile("func f(a) -> (o, p) { o = a + 1; }").unwrap_err();
        assert_eq!(err, SilageError::UnassignedOutput("p".to_owned()));
    }

    #[test]
    fn duplicate_parameter_is_rejected() {
        let err = compile("func f(a, a) -> (o) { o = a; }").unwrap_err();
        assert_eq!(err, SilageError::DuplicateDeclaration("a".to_owned()));
        let err = compile("func f(a) -> (a) { a = 1; }").unwrap_err();
        assert_eq!(err, SilageError::DuplicateDeclaration("a".to_owned()));
    }

    #[test]
    fn nested_conditionals_build_nested_muxes() {
        let g = compile(
            "func f(a, b) -> (o) { o = if a > b then (if a == b then a + b else a - b) else a * b; }",
        )
        .unwrap();
        assert_eq!(g.op_counts().mux, 2);
        assert_eq!(g.op_counts().comp, 2);
        let mut inputs = Map::new();
        inputs.insert("a".to_owned(), 5);
        inputs.insert("b".to_owned(), 2);
        // a > b, a != b -> a - b
        assert_eq!(g.evaluate(&inputs)["o"], 3);
        inputs.insert("a".to_owned(), 1);
        // a <= b -> a * b
        assert_eq!(g.evaluate(&inputs)["o"], 2);
    }

    #[test]
    fn negation_and_constants() {
        let g = compile("func f(a) -> (o) { o = -a + 10; }").unwrap();
        let mut inputs = Map::new();
        inputs.insert("a".to_owned(), 4);
        assert_eq!(g.evaluate(&inputs)["o"], 6);
    }

    #[test]
    fn intermediate_values_can_be_shared() {
        let g = compile("func f(a, b) -> (o) { s = a + b; c = s > b; o = if c then s else b; }")
            .unwrap();
        // The addition feeds both the comparison and the mux data input.
        assert_eq!(g.op_counts().add, 1);
        let mut inputs = Map::new();
        inputs.insert("a".to_owned(), 2);
        inputs.insert("b".to_owned(), 3);
        assert_eq!(g.evaluate(&inputs)["o"], 5);
    }
}
