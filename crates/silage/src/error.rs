//! Error type for the Silage-like frontend.

use std::fmt;

use cdfg::CdfgError;

use crate::token::TokenKind;

/// Errors produced while lexing, parsing or elaborating a program.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SilageError {
    /// An unexpected character was encountered while lexing.
    UnexpectedChar {
        /// The offending character.
        ch: char,
        /// 1-based source line.
        line: u32,
    },
    /// An integer literal does not fit in a 64-bit signed word.
    NumberTooLarge {
        /// 1-based source line.
        line: u32,
    },
    /// The parser found a token it did not expect.
    UnexpectedToken {
        /// Description of what the parser expected.
        expected: String,
        /// The token that was found instead.
        found: TokenKind,
        /// 1-based source line.
        line: u32,
    },
    /// The program contains no function definitions.
    EmptyProgram,
    /// No function with the requested name exists.
    UnknownFunction(String),
    /// A name was used before being defined.
    UndefinedName {
        /// The undefined name.
        name: String,
        /// 1-based source line.
        line: u32,
    },
    /// A name was assigned more than once (the language is single
    /// assignment).
    Reassignment {
        /// The reassigned name.
        name: String,
        /// 1-based source line.
        line: u32,
    },
    /// A declared output was never assigned.
    UnassignedOutput(String),
    /// Two parameters or outputs share a name.
    DuplicateDeclaration(String),
    /// Elaboration produced a structurally invalid CDFG (internal error or a
    /// degenerate program such as one with no outputs).
    Construction(CdfgError),
}

impl fmt::Display for SilageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SilageError::UnexpectedChar { ch, line } => {
                write!(f, "line {line}: unexpected character `{ch}`")
            }
            SilageError::NumberTooLarge { line } => {
                write!(f, "line {line}: integer literal too large")
            }
            SilageError::UnexpectedToken { expected, found, line } => {
                write!(f, "line {line}: expected {expected}, found {found}")
            }
            SilageError::EmptyProgram => f.write_str("program contains no function definitions"),
            SilageError::UnknownFunction(name) => write!(f, "no function named `{name}`"),
            SilageError::UndefinedName { name, line } => {
                write!(f, "line {line}: `{name}` is used before being defined")
            }
            SilageError::Reassignment { name, line } => {
                write!(f, "line {line}: `{name}` is assigned more than once")
            }
            SilageError::UnassignedOutput(name) => write!(f, "output `{name}` is never assigned"),
            SilageError::DuplicateDeclaration(name) => {
                write!(f, "`{name}` is declared more than once")
            }
            SilageError::Construction(e) => write!(f, "elaboration failed: {e}"),
        }
    }
}

impl std::error::Error for SilageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SilageError::Construction(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CdfgError> for SilageError {
    fn from(e: CdfgError) -> Self {
        SilageError::Construction(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line_numbers() {
        let err = SilageError::UndefinedName { name: "x".into(), line: 7 };
        assert!(err.to_string().contains("line 7"));
        let err = SilageError::UnexpectedToken {
            expected: "`;`".into(),
            found: TokenKind::RBrace,
            line: 3,
        };
        assert!(err.to_string().contains("expected `;`"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SilageError>();
    }
}
