//! Abstract syntax tree of the Silage-like language.

use std::fmt;

/// A whole source file: one or more function definitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// The function definitions in source order.
    pub functions: Vec<FuncDef>,
}

/// A function definition: inputs, outputs and a body of single-assignment
/// statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDef {
    /// Function name.
    pub name: String,
    /// Primary inputs.
    pub params: Vec<Param>,
    /// Primary outputs.
    pub outputs: Vec<Param>,
    /// Body statements in source order.
    pub body: Vec<Stmt>,
}

/// A named input or output port with an optional bitwidth annotation
/// (`name: num[8]`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Param {
    /// Port name.
    pub name: String,
    /// Declared bitwidth; `None` means the design default (8 bits).
    pub bitwidth: Option<u32>,
}

/// A single-assignment statement `name = expr;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stmt {
    /// Name being defined.
    pub name: String,
    /// Defining expression.
    pub expr: Expr,
    /// 1-based source line of the statement, for error messages.
    pub line: u32,
}

/// Binary operators of the expression language.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl BinaryOp {
    /// Returns `true` for comparison operators (which produce a 1-bit
    /// condition).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Lt | BinaryOp::Le | BinaryOp::Gt | BinaryOp::Ge | BinaryOp::Eq | BinaryOp::Ne
        )
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Lt => "<",
            BinaryOp::Le => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::Ge => ">=",
            BinaryOp::Eq => "==",
            BinaryOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// An expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// An integer literal.
    Number(i64),
    /// A reference to a previously defined name or parameter.
    Name(String),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Unary negation.
    Neg(Box<Expr>),
    /// A conditional expression `if cond then a else b`, elaborated into a
    /// multiplexor.
    If {
        /// The condition (select).
        cond: Box<Expr>,
        /// Value when the condition is non-zero.
        then_branch: Box<Expr>,
        /// Value when the condition is zero.
        else_branch: Box<Expr>,
    },
}

impl Expr {
    /// Number of conditional expressions in this tree (each becomes one
    /// multiplexor).
    pub fn conditional_count(&self) -> usize {
        match self {
            Expr::Number(_) | Expr::Name(_) => 0,
            Expr::Neg(inner) => inner.conditional_count(),
            Expr::Binary { lhs, rhs, .. } => lhs.conditional_count() + rhs.conditional_count(),
            Expr::If { cond, then_branch, else_branch } => {
                1 + cond.conditional_count()
                    + then_branch.conditional_count()
                    + else_branch.conditional_count()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditional_count_recurses() {
        let e = Expr::If {
            cond: Box::new(Expr::Name("c".into())),
            then_branch: Box::new(Expr::If {
                cond: Box::new(Expr::Name("d".into())),
                then_branch: Box::new(Expr::Number(1)),
                else_branch: Box::new(Expr::Number(2)),
            }),
            else_branch: Box::new(Expr::Binary {
                op: BinaryOp::Add,
                lhs: Box::new(Expr::Name("a".into())),
                rhs: Box::new(Expr::Name("b".into())),
            }),
        };
        assert_eq!(e.conditional_count(), 2);
    }

    #[test]
    fn comparison_classification() {
        assert!(BinaryOp::Lt.is_comparison());
        assert!(BinaryOp::Ne.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
        assert_eq!(BinaryOp::Ge.to_string(), ">=");
    }
}
