//! Error type for sweep-plan construction.

use std::fmt;

/// Errors produced while building a [`crate::SweepPlan`].
///
/// Scenario *execution* failures (an infeasible latency, an unknown circuit
/// name) are not errors at this level: they are recorded per scenario in the
/// [`crate::SweepReport`] so one bad matrix point cannot abort a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineError {
    /// The plan expanded to zero scenarios.
    EmptyPlan,
    /// A latency bound of zero control steps was requested.
    InvalidLatency,
    /// A pipeline depth of zero stages was requested.
    InvalidPipelineDepth,
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::EmptyPlan => f.write_str("sweep plan expands to zero scenarios"),
            EngineError::InvalidLatency => {
                f.write_str("latency bound must be at least one control step")
            }
            EngineError::InvalidPipelineDepth => {
                f.write_str("pipeline depth must be at least one stage")
            }
        }
    }
}

impl std::error::Error for EngineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        assert!(EngineError::EmptyPlan.to_string().contains("zero scenarios"));
        assert!(EngineError::InvalidLatency.to_string().contains("control step"));
        assert!(EngineError::InvalidPipelineDepth.to_string().contains("stage"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EngineError>();
    }
}
