//! Online power management: event-stream sessions with incremental
//! schedule repair.
//!
//! The offline engine answers "what is the best schedule for this matrix
//! point"; this module answers "the operating point just *changed* — fix
//! the schedule without recomputing the world".  A [`SessionState`] holds
//! one warm [`sched::force::RepairWorkspace`] per live circuit and drives
//! each [`gen::StreamEvent`] through [`sched::force::repair`], which keeps
//! the repaired schedule **bit-identical to a cold recompute at the new
//! parameters** while touching only the nodes the delta actually
//! invalidated (per-event [`RepairStats`]).
//!
//! # Online vs. offline savings
//!
//! Every event record also evaluates a *static offline baseline*: the
//! schedule the circuit arrived with, kept unchanged for as long as it
//! still fits the current budget (and recomputed cold only when it no
//! longer does — a power manager that refuses to adapt).  Both schedules
//! are priced with the DVS scaled-delay energy model
//! ([`power::dvs::allotted_delays_into`] into a session-owned warm
//! buffer, × the paper's operation power weights under the circuit's
//! current scaling law); the per-event
//! `savings_gap` is the percentage the online repair saves over the
//! frozen baseline.  Under [`gen::Scaling::None`] the gap is zero by
//! construction — slack only pays when delay scaling converts it into
//! energy.
//!
//! # Determinism
//!
//! A session is a strictly sequential fold over the event stream (one
//! warm workspace per circuit is mutable state — there is nothing to
//! parallelise inside one stream), so a report is byte-identical across
//! runs, machines and thread counts.  [`run_streams`] parallelises
//! *across* independent streams with the engine's deterministic pool.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::AtomicBool;

use cdfg::Cdfg;
use circuits::Benchmark;
use gen::{GenError, Scaling, StreamEvent, StreamSpec};
use pmsched::OpWeights;
use power::dvs::{allotted_delays_into, DelayScaling};
use sched::force::{repair, RepairStats, RepairWorkspace};
use sched::{force, Schedule};

use crate::pool::{parallel_map_controlled, MapControl};
use crate::report::{json_number, json_string};
use crate::Progress;

/// Maps the generator's scaling label onto the power model's law.
fn delay_scaling(scaling: Scaling) -> DelayScaling {
    match scaling {
        Scaling::None => DelayScaling::None,
        Scaling::Linear => DelayScaling::Linear,
        Scaling::Quadratic => DelayScaling::Quadratic,
    }
}

/// What one successfully applied event costs and saves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventMetrics {
    /// Control steps of the repaired schedule (0 for retirements).
    pub schedule_steps: u32,
    /// Scaled-delay energy of the online (repaired) schedule at the
    /// circuit's current budget and scaling law.
    pub online_energy: f64,
    /// Scaled-delay energy of the static offline baseline at the same
    /// budget and law.
    pub offline_energy: f64,
    /// Percent the online schedule saves over the baseline
    /// (`(offline − online) / offline × 100`; 0 when the baseline is 0).
    pub savings_gap: f64,
    /// Whether this event forced the offline baseline itself to recompute
    /// (its frozen schedule no longer fit the tightened budget).
    pub offline_recomputed: bool,
}

impl EventMetrics {
    fn zero() -> Self {
        EventMetrics {
            schedule_steps: 0,
            online_energy: 0.0,
            offline_energy: 0.0,
            savings_gap: 0.0,
            offline_recomputed: false,
        }
    }
}

/// One event's outcome: the event itself, the repair cost, and the
/// metrics (or the typed scheduling error's message, e.g. a budget below
/// the critical path — the session then keeps its previous state).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Position in the stream (event order — also record order).
    pub index: usize,
    /// The event that was applied.
    pub event: StreamEvent,
    /// How much of the graph the repair re-derived.
    pub stats: RepairStats,
    /// Metrics on success, the scheduling error otherwise.
    pub outcome: Result<EventMetrics, String>,
}

/// Warm per-circuit state while the circuit is live.
#[derive(Debug)]
struct CircuitSession {
    /// The repair workspace: cached timing invariants + schedule memo.
    rw: RepairWorkspace,
    /// Current latency budget.
    budget: u32,
    /// Current delay-scaling law.
    scaling: DelayScaling,
    /// Current (repaired) schedule.
    schedule: Schedule,
    /// The static offline baseline schedule (arrival schedule, recomputed
    /// only when a tightened budget invalidates it).
    offline: Schedule,
}

/// The online session: the circuit pool and one warm workspace per live
/// circuit.  [`SessionState::apply`] is the single entry point — a session
/// is a deterministic fold over its event stream.
#[derive(Debug)]
pub struct SessionState {
    /// Every circuit the stream may reference, by name.
    pool: BTreeMap<String, Cdfg>,
    /// Live circuits, by name (BTreeMap for deterministic iteration).
    live: BTreeMap<String, CircuitSession>,
    /// The paper's relative operation power weights.
    weights: OpWeights,
    /// Warm allotted-delay buffer, reused across every energy evaluation
    /// of the session (one allocation for the whole stream).
    delay_buf: Vec<(cdfg::NodeId, u32)>,
}

impl SessionState {
    /// A session over a circuit pool (typically a generated batch).
    pub fn new<I: IntoIterator<Item = Benchmark>>(pool: I) -> Self {
        SessionState {
            pool: pool.into_iter().map(|b| (b.name, b.cdfg)).collect(),
            live: BTreeMap::new(),
            weights: OpWeights::paper_power(),
            delay_buf: Vec::new(),
        }
    }

    /// Number of currently live circuits.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }

    /// The current budget of a live circuit.
    pub fn budget_of(&self, circuit: &str) -> Option<u32> {
        self.live.get(circuit).map(|s| s.budget)
    }

    /// The current repaired schedule of a live circuit.
    pub fn schedule_of(&self, circuit: &str) -> Option<&Schedule> {
        self.live.get(circuit).map(|s| &s.schedule)
    }

    /// A circuit from the pool, live or not.
    pub fn circuit(&self, name: &str) -> Option<&Cdfg> {
        self.pool.get(name)
    }

    /// Applies one event and reports what it cost.  Unknown circuits and
    /// events that contradict the live set (arriving twice, retiring the
    /// absent) surface as `Err` outcomes without touching session state —
    /// the generated streams never produce them, but a wire client could.
    pub fn apply(&mut self, index: usize, event: &StreamEvent) -> EventRecord {
        let (stats, outcome) = self.apply_inner(event);
        EventRecord { index, event: clone_event(event), stats, outcome }
    }

    fn apply_inner(&mut self, event: &StreamEvent) -> (RepairStats, Result<EventMetrics, String>) {
        match event {
            StreamEvent::CircuitArrived { circuit, budget } => {
                if self.live.contains_key(circuit) {
                    return (RepairStats::default(), Err(format!("{circuit} is already live")));
                }
                let Some(cdfg) = self.pool.get(circuit) else {
                    return (RepairStats::default(), Err(format!("unknown circuit {circuit}")));
                };
                let mut rw = RepairWorkspace::new();
                let (result, stats) = repair(cdfg, *budget, &mut rw);
                match result {
                    Ok(schedule) => {
                        let session = CircuitSession {
                            rw,
                            budget: *budget,
                            scaling: DelayScaling::None,
                            offline: schedule.clone(),
                            schedule,
                        };
                        let metrics =
                            metrics_for(&self.weights, cdfg, &session, false, &mut self.delay_buf);
                        self.live.insert(circuit.clone(), session);
                        (stats, Ok(metrics))
                    }
                    Err(e) => (stats, Err(e.to_string())),
                }
            }
            StreamEvent::CircuitRetired { circuit } => {
                if self.live.remove(circuit).is_none() {
                    return (RepairStats::default(), Err(format!("{circuit} is not live")));
                }
                (RepairStats::default(), Ok(EventMetrics::zero()))
            }
            StreamEvent::BudgetChanged { circuit, budget } => {
                let Some(session) = self.live.get_mut(circuit) else {
                    return (RepairStats::default(), Err(format!("{circuit} is not live")));
                };
                let cdfg = self.pool.get(circuit).expect("live circuits come from the pool");
                let (result, stats) = repair(cdfg, *budget, &mut session.rw);
                match result {
                    Ok(schedule) => {
                        session.budget = *budget;
                        session.schedule = schedule;
                        // The frozen baseline survives until the budget
                        // drops below the steps it actually uses.
                        let offline_recomputed = session.offline.last_used_step() > *budget;
                        if offline_recomputed {
                            session.offline = force::schedule(cdfg, *budget)
                                .expect("repair succeeded at this budget");
                        }
                        let session = &self.live[circuit];
                        let metrics = metrics_for(
                            &self.weights,
                            cdfg,
                            session,
                            offline_recomputed,
                            &mut self.delay_buf,
                        );
                        (stats, Ok(metrics))
                    }
                    Err(e) => (stats, Err(e.to_string())),
                }
            }
            StreamEvent::ScalingChanged { circuit, scaling } => {
                let Some(session) = self.live.get_mut(circuit) else {
                    return (RepairStats::default(), Err(format!("{circuit} is not live")));
                };
                session.scaling = delay_scaling(*scaling);
                let session = &self.live[circuit];
                let cdfg = self.pool.get(circuit).expect("live circuits come from the pool");
                let metrics = metrics_for(&self.weights, cdfg, session, false, &mut self.delay_buf);
                (RepairStats::default(), Ok(metrics))
            }
        }
    }
}

/// Scaled-delay energy of `schedule` for `cdfg` at `latency` under
/// `scaling`: each operation's paper power weight times the scaling
/// factor of its allotted delay, summed in ascending node order (the
/// deterministic summation order every report in this repo uses).  The
/// delay allotment lands in `buf` ([`allotted_delays_into`]) so a warm
/// session never reallocates it.
fn energy(
    weights: &OpWeights,
    cdfg: &Cdfg,
    schedule: &Schedule,
    latency: u32,
    scaling: DelayScaling,
    buf: &mut Vec<(cdfg::NodeId, u32)>,
) -> f64 {
    allotted_delays_into(cdfg, schedule, latency, buf);
    let mut total = 0.0;
    for &(node, delay) in buf.iter() {
        let class = cdfg.node(node).expect("scheduled node is live").op.class();
        total += weights.weight(class) * scaling.factor(delay);
    }
    total
}

fn metrics_for(
    weights: &OpWeights,
    cdfg: &Cdfg,
    session: &CircuitSession,
    offline_recomputed: bool,
    buf: &mut Vec<(cdfg::NodeId, u32)>,
) -> EventMetrics {
    let online = energy(weights, cdfg, &session.schedule, session.budget, session.scaling, buf);
    let offline = energy(weights, cdfg, &session.offline, session.budget, session.scaling, buf);
    let savings_gap = if offline > 0.0 { (offline - online) / offline * 100.0 } else { 0.0 };
    EventMetrics {
        schedule_steps: session.schedule.last_used_step(),
        online_energy: online,
        offline_energy: offline,
        savings_gap,
        offline_recomputed,
    }
}

/// StreamEvent is deliberately not `Clone` in a hidden way — gen derives
/// Clone, this helper just keeps the call sites tidy.
fn clone_event(event: &StreamEvent) -> StreamEvent {
    event.clone()
}

/// Aggregates of one stream's records.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OnlineSummary {
    /// Events applied.
    pub events: usize,
    /// Events whose outcome was an error.
    pub errors: usize,
    /// Arrivals / retirements / budget steps / scaling changes.
    pub arrivals: usize,
    /// See `arrivals`.
    pub retirements: usize,
    /// See `arrivals`.
    pub budget_events: usize,
    /// See `arrivals`.
    pub scaling_events: usize,
    /// Events that fell back to a full recompute.
    pub full_recomputes: usize,
    /// Events the repair served without touching a single node (schedule
    /// memo hits, O(1) infeasibility, scaling-only and retire events).
    pub zero_work_events: usize,
    /// Events that invalidated the offline baseline schedule.
    pub offline_recomputes: usize,
    /// Total nodes touched across all repairs.
    pub nodes_touched: usize,
    /// Online / offline energies summed over events (each event is one
    /// tick of session time).
    pub online_energy: f64,
    /// See `online_energy`.
    pub offline_energy: f64,
    /// Aggregate savings gap in percent, over the summed energies.
    pub savings_gap: f64,
}

/// The full result of one stream: the spec, every record in event order,
/// and the aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct OnlineReport {
    /// The lossless spec string ([`StreamSpec::spec_string`]).
    pub spec: String,
    /// One record per event, in event order.
    pub records: Vec<EventRecord>,
    /// The aggregates.
    pub summary: OnlineSummary,
}

impl OnlineReport {
    /// Builds the report (and its aggregates) from applied records.
    pub fn from_records(spec: &StreamSpec, records: Vec<EventRecord>) -> Self {
        let mut summary = OnlineSummary { events: records.len(), ..OnlineSummary::default() };
        for record in &records {
            match &record.event {
                StreamEvent::CircuitArrived { .. } => summary.arrivals += 1,
                StreamEvent::CircuitRetired { .. } => summary.retirements += 1,
                StreamEvent::BudgetChanged { .. } => summary.budget_events += 1,
                StreamEvent::ScalingChanged { .. } => summary.scaling_events += 1,
            }
            if record.stats.full_recompute {
                summary.full_recomputes += 1;
            } else if record.stats.nodes_touched == 0 {
                summary.zero_work_events += 1;
            }
            summary.nodes_touched += record.stats.nodes_touched;
            match &record.outcome {
                Ok(metrics) => {
                    summary.online_energy += metrics.online_energy;
                    summary.offline_energy += metrics.offline_energy;
                    if metrics.offline_recomputed {
                        summary.offline_recomputes += 1;
                    }
                }
                Err(_) => summary.errors += 1,
            }
        }
        summary.savings_gap = if summary.offline_energy > 0.0 {
            (summary.offline_energy - summary.online_energy) / summary.offline_energy * 100.0
        } else {
            0.0
        };
        OnlineReport { spec: spec.spec_string(), records, summary }
    }

    /// Machine-readable JSON: stable key order, one record per line —
    /// byte-identical across runs, thread counts, and in-process vs.
    /// daemon execution.
    pub fn to_json(&self) -> String {
        let s = &self.summary;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"spec\": {},", json_string(&self.spec));
        let _ = writeln!(
            out,
            "  \"summary\": {{\"events\": {}, \"errors\": {}, \"arrivals\": {}, \
             \"retirements\": {}, \"budget_events\": {}, \"scaling_events\": {}, \
             \"full_recomputes\": {}, \"zero_work_events\": {}, \"offline_recomputes\": {}, \
             \"nodes_touched\": {}, \"online_energy\": {}, \"offline_energy\": {}, \
             \"savings_gap\": {}}},",
            s.events,
            s.errors,
            s.arrivals,
            s.retirements,
            s.budget_events,
            s.scaling_events,
            s.full_recomputes,
            s.zero_work_events,
            s.offline_recomputes,
            s.nodes_touched,
            json_number(s.online_energy),
            json_number(s.offline_energy),
            json_number(s.savings_gap),
        );
        out.push_str("  \"records\": [\n");
        for (i, record) in self.records.iter().enumerate() {
            let comma = if i + 1 == self.records.len() { "" } else { "," };
            let _ = writeln!(out, "    {}{comma}", record_json(record));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Human-readable summary.
    pub fn render(&self) -> String {
        let s = &self.summary;
        let mut out = String::new();
        let _ = writeln!(out, "stream: {}", self.spec);
        let _ = writeln!(
            out,
            "events: {} ({} arrive, {} retire, {} budget, {} scaling, {} errors)",
            s.events, s.arrivals, s.retirements, s.budget_events, s.scaling_events, s.errors
        );
        let _ = writeln!(
            out,
            "repair: {} zero-work, {} full recomputes, {} nodes touched total",
            s.zero_work_events, s.full_recomputes, s.nodes_touched
        );
        let _ = writeln!(
            out,
            "energy: online {:.1}, offline {:.1}, savings gap {:.2}% \
             ({} offline recomputes)",
            s.online_energy, s.offline_energy, s.savings_gap, s.offline_recomputes
        );
        out
    }
}

/// One record as a single JSON line (the daemon streams these per event,
/// in event order).
pub fn record_json(record: &EventRecord) -> String {
    let mut out = format!(
        "{{\"index\": {}, \"kind\": {}, \"circuit\": {}",
        record.index,
        json_string(record.event.kind()),
        json_string(record.event.circuit())
    );
    match &record.event {
        StreamEvent::CircuitArrived { budget, .. } | StreamEvent::BudgetChanged { budget, .. } => {
            let _ = write!(out, ", \"budget\": {budget}");
        }
        StreamEvent::ScalingChanged { scaling, .. } => {
            let _ = write!(out, ", \"scaling\": {}", json_string(scaling.label()));
        }
        StreamEvent::CircuitRetired { .. } => {}
    }
    let _ = write!(
        out,
        ", \"stats\": {{\"nodes_touched\": {}, \"classes_rebuilt\": {}, \
         \"full_recompute\": {}}}",
        record.stats.nodes_touched, record.stats.classes_rebuilt, record.stats.full_recompute
    );
    match &record.outcome {
        Ok(m) => {
            let _ = write!(
                out,
                ", \"steps\": {}, \"online_energy\": {}, \"offline_energy\": {}, \
                 \"savings_gap\": {}, \"offline_recomputed\": {}}}",
                m.schedule_steps,
                json_number(m.online_energy),
                json_number(m.offline_energy),
                json_number(m.savings_gap),
                m.offline_recomputed
            );
        }
        Err(e) => {
            let _ = write!(out, ", \"error\": {}}}", json_string(e));
        }
    }
    out
}

/// Runs one event stream to completion.
///
/// # Errors
///
/// Propagates generator failures (invalid knobs); per-event scheduling
/// errors are recorded, not raised.
pub fn run_stream(spec: &StreamSpec) -> Result<OnlineReport, GenError> {
    Ok(run_stream_controlled(spec, None, None, None)?.expect("uncancellable run completes"))
}

/// [`run_stream`] with cooperative cancellation, progress ticks and a
/// per-record sink (the daemon wires the sink to its event stream so
/// records reach the client in event order, as they are produced).
///
/// Returns `Ok(None)` when the cancel flag stopped the session early.
///
/// # Errors
///
/// Propagates generator failures.
pub fn run_stream_controlled(
    spec: &StreamSpec,
    cancel: Option<&AtomicBool>,
    progress: Option<&(dyn Fn(Progress) + Sync)>,
    on_record: Option<&(dyn Fn(&EventRecord) + Sync)>,
) -> Result<Option<OnlineReport>, GenError> {
    let (batch, events) = gen::stream(spec)?;
    let mut state = SessionState::new(batch);
    let total = events.len();
    let mut records = Vec::with_capacity(total);
    for (index, event) in events.iter().enumerate() {
        if cancel.is_some_and(|flag| flag.load(std::sync::atomic::Ordering::Relaxed)) {
            return Ok(None);
        }
        let record = state.apply(index, event);
        if let Some(sink) = on_record {
            sink(&record);
        }
        records.push(record);
        if let Some(tick) = progress {
            tick(Progress { completed: index + 1, total });
        }
    }
    Ok(Some(OnlineReport::from_records(spec, records)))
}

/// Runs several independent streams on the engine's deterministic pool,
/// returning reports in input order.  `threads` sizes the pool (0 = all
/// cores); each individual stream stays strictly sequential, so the
/// reports are byte-identical at any thread count.
///
/// # Errors
///
/// Returns the first generator failure in input order.
pub fn run_streams(specs: &[StreamSpec], threads: usize) -> Result<Vec<OnlineReport>, GenError> {
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, |n| n.get())
    } else {
        threads
    };
    let results = parallel_map_controlled(
        specs.to_vec(),
        threads,
        &|spec: StreamSpec| run_stream(&spec),
        MapControl::default(),
    )
    .expect("a map without a cancel flag cannot be cancelled");
    results.into_iter().collect()
}

/// The outcome of a verified replay: the report plus the
/// identity-vs-cold-recompute audit the online mode's contract rests on.
#[derive(Debug, Clone, PartialEq)]
pub struct VerifiedOutcome {
    /// The stream's report (identical to an unverified [`run_stream`]).
    pub report: OnlineReport,
    /// Whether every post-event schedule (and every typed error) was
    /// bit-identical to a cold recompute at the final parameters.
    pub cold_identical: bool,
    /// Number of events whose schedule diverged from the cold recompute
    /// (0 when `cold_identical`).
    pub mismatches: usize,
    /// Median of per-event `nodes_touched / cold nodes_touched` over all
    /// schedule-producing events (arrivals and budget steps).
    pub median_touched_ratio: f64,
    /// Mean of the same ratio.
    pub mean_touched_ratio: f64,
}

/// Replays `spec` with a full cold-recompute audit: after every applied
/// event the affected circuit's schedule is recomputed cold at the final
/// parameters and byte-compared, failed events are checked to fail cold
/// with the same message, and every repair's touched-node count is set
/// against the cold run's.  This costs a cold recompute per event — it is
/// the *measurement* of what repair saves, used by `onlineweep` and
/// `bench_online`; production paths use [`run_stream`].
///
/// # Errors
///
/// Propagates generator failures.
pub fn run_stream_verified(spec: &StreamSpec) -> Result<VerifiedOutcome, GenError> {
    let (batch, events) = gen::stream(spec)?;
    let pool: BTreeMap<String, Cdfg> =
        batch.iter().map(|b| (b.name.clone(), b.cdfg.clone())).collect();
    let mut state = SessionState::new(batch);
    let mut records = Vec::with_capacity(events.len());
    let mut mismatches = 0usize;
    let mut ratios: Vec<f64> = Vec::new();
    for (index, event) in events.iter().enumerate() {
        let record = state.apply(index, event);
        let circuit = event.circuit();
        let cdfg = &pool[circuit];
        match (&record.outcome, event) {
            (Ok(_), StreamEvent::CircuitArrived { .. } | StreamEvent::BudgetChanged { .. }) => {
                let budget = state.budget_of(circuit).expect("event left the circuit live");
                let cold = force::schedule(cdfg, budget).expect("repair succeeded at this budget");
                if state.schedule_of(circuit) != Some(&cold) {
                    mismatches += 1;
                }
                let mut fresh = RepairWorkspace::new();
                let (_, full) = repair(cdfg, budget, &mut fresh);
                ratios.push(record.stats.nodes_touched as f64 / full.nodes_touched.max(1) as f64);
            }
            (Err(message), StreamEvent::BudgetChanged { budget, .. }) => {
                // Infeasible events must fail cold with the identical
                // typed error.
                let cold = force::schedule(cdfg, *budget).expect_err("repair refused this budget");
                if message != &cold.to_string() {
                    mismatches += 1;
                }
            }
            _ => {}
        }
        records.push(record);
    }
    ratios.sort_by(f64::total_cmp);
    let median_touched_ratio = if ratios.is_empty() { 0.0 } else { ratios[ratios.len() / 2] };
    let mean_touched_ratio =
        if ratios.is_empty() { 0.0 } else { ratios.iter().sum::<f64>() / ratios.len() as f64 };
    Ok(VerifiedOutcome {
        report: OnlineReport::from_records(spec, records),
        cold_identical: mismatches == 0,
        mismatches,
        median_touched_ratio,
        mean_touched_ratio,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(text: &str) -> StreamSpec {
        StreamSpec::parse(text).unwrap()
    }

    #[test]
    fn reports_are_deterministic_and_verified_replays_agree() {
        let s = spec("family=mux-tree,seed=7,count=3;events=80,eseed=5,churn=120,rescale=120");
        let a = run_stream(&s).unwrap();
        let b = run_stream(&s).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "same spec, same bytes");
        let verified = run_stream_verified(&s).unwrap();
        assert!(verified.cold_identical, "{} mismatches", verified.mismatches);
        assert_eq!(verified.report.to_json(), a.to_json(), "audit does not perturb the report");
        assert!(verified.median_touched_ratio <= 1.0);
    }

    #[test]
    fn every_family_streams_and_repairs_identically_to_cold() {
        for family in gen::Family::ALL {
            let s = StreamSpec::parse(&format!(
                "family={},seed=3,count=2;events=40,eseed=9,churn=100,rescale=100",
                family.name()
            ))
            .unwrap();
            let verified = run_stream_verified(&s).unwrap();
            assert!(verified.cold_identical, "{family}: {} mismatches", verified.mismatches);
            assert_eq!(verified.report.summary.errors, 0, "{family}");
        }
    }

    #[test]
    fn budget_walks_repair_mostly_from_the_memo() {
        // A pure budget-step stream revisits its small window constantly;
        // the memo serves revisits with zero touched nodes, which is what
        // keeps the touched-nodes ratio low.
        let s = spec("family=random-dag,seed=11,count=1;events=200,eseed=4,churn=0,rescale=0");
        let verified = run_stream_verified(&s).unwrap();
        assert!(verified.cold_identical);
        let summary = verified.report.summary;
        assert!(
            summary.zero_work_events * 2 > summary.events,
            "revisits should dominate: {summary:?}"
        );
        assert!(
            verified.median_touched_ratio < 0.3,
            "median touched ratio {} too high",
            verified.median_touched_ratio
        );
    }

    #[test]
    fn scaling_changes_open_a_savings_gap_and_none_closes_it() {
        let s = spec("family=dsp-chain,seed=2,count=1;events=120,eseed=6,churn=0,rescale=200");
        let report = run_stream(&s).unwrap();
        let mut saw_gap = false;
        for record in &report.records {
            let metrics = record.outcome.as_ref().expect("stream stays feasible");
            assert!(metrics.savings_gap >= -1e-9, "online never loses: {record:?}");
            if metrics.savings_gap > 0.0 {
                saw_gap = true;
            }
        }
        assert!(saw_gap, "scaled events should open a gap: {:?}", report.summary);
    }

    #[test]
    fn infeasible_budgets_error_like_cold_and_keep_the_session_alive() {
        let (batch, _) =
            gen::stream(&spec("family=mux-tree,seed=1,count=1;events=1,eseed=1")).unwrap();
        let name = batch[0].name.clone();
        let cp = batch[0].control_steps[0];
        let cdfg = batch[0].cdfg.clone();
        let mut state = SessionState::new(batch);
        let arrive = StreamEvent::CircuitArrived { circuit: name.clone(), budget: cp };
        assert!(state.apply(0, &arrive).outcome.is_ok());
        if cp > 1 {
            let tighten = StreamEvent::BudgetChanged { circuit: name.clone(), budget: cp - 1 };
            let record = state.apply(1, &tighten);
            let cold = force::schedule(&cdfg, cp - 1).unwrap_err();
            assert_eq!(record.outcome, Err(cold.to_string()));
            assert_eq!(state.budget_of(&name), Some(cp), "session keeps its last good budget");
        }
        let unknown = StreamEvent::BudgetChanged { circuit: "nope".into(), budget: 3 };
        assert!(state.apply(2, &unknown).outcome.is_err());
    }

    #[test]
    fn run_streams_parallelises_without_changing_bytes() {
        let specs: Vec<StreamSpec> = [3u64, 4, 5]
            .iter()
            .map(|seed| {
                spec(&format!("family=mux-tree,seed={seed},count=2;events=30,eseed={seed}"))
            })
            .collect();
        let solo = run_streams(&specs, 1).unwrap();
        let wide = run_streams(&specs, 4).unwrap();
        let solo_json: Vec<String> = solo.iter().map(OnlineReport::to_json).collect();
        let wide_json: Vec<String> = wide.iter().map(OnlineReport::to_json).collect();
        assert_eq!(solo_json, wide_json);
    }

    #[test]
    fn record_json_covers_every_event_shape() {
        let s = spec("family=mux-tree,seed=7,count=2;events=120,eseed=2,churn=300,rescale=200");
        let report = run_stream(&s).unwrap();
        let json = report.to_json();
        for kind in ["arrive", "retire", "budget", "scaling"] {
            assert!(json.contains(&format!("\"kind\": \"{kind}\"")), "missing {kind}");
        }
        assert!(json.contains("\"savings_gap\""));
        assert!(json.contains("\"full_recompute\""));
    }
}
