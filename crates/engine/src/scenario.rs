//! The scenario type: one fully specified run of the pipeline.
//!
//! A [`Scenario`] pins every knob the end-to-end flow exposes — which
//! circuit, how many control steps per sample, which final scheduler, how
//! deep a pipeline, whether the multiplexor-reordering search of Section
//! IV-A runs, and which branch-probability model the savings are evaluated
//! under.  Scenarios are plain ordered values so a sweep plan can be
//! deduplicated and deterministically sorted regardless of how it was built.

use std::fmt;

/// Which final scheduler closes the power-management flow (step 11 of the
/// paper's algorithm).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SchedulerKind {
    /// Latency-constrained force-directed scheduling with unlimited
    /// execution units (the scheduler minimises them itself) — the HYPER
    /// contract the paper uses.
    #[default]
    ForceDirected,
    /// Resource-constrained list scheduling.  The allocation is fixed to the
    /// minimum the force-directed scheduler needs at the same latency, so
    /// the two schedulers are compared on equal hardware.
    List,
}

impl SchedulerKind {
    /// Short stable label used in reports and cache keys.
    pub fn label(self) -> &'static str {
        match self {
            SchedulerKind::ForceDirected => "force",
            SchedulerKind::List => "list",
        }
    }
}

impl fmt::Display for SchedulerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Branch-probability model applied to every multiplexor when evaluating
/// the expected execution counts (Section V's fairness assumption and its
/// relaxations).
///
/// Probabilities are stored in permille (0..=1000) so the model is `Eq` /
/// `Hash` / `Ord` and scenarios stay deduplicatable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BranchModel {
    /// The paper's assumption: every multiplexor selects each input with
    /// equal probability (0.5 for two-input multiplexors).
    #[default]
    Fair,
    /// Every multiplexor selects its 1-input with probability
    /// `permille / 1000`.
    Biased {
        /// Probability of selecting the 1-input, in permille (0..=1000).
        permille: u16,
    },
}

impl BranchModel {
    /// A biased model; `permille` is clamped to 1000.
    pub fn biased(permille: u16) -> Self {
        BranchModel::Biased { permille: permille.min(1000) }
    }

    /// The probability that a multiplexor selects its 1-input.
    pub fn p_select_one(self) -> f64 {
        match self {
            BranchModel::Fair => 0.5,
            BranchModel::Biased { permille } => f64::from(permille.min(1000)) / 1000.0,
        }
    }

    /// Short stable label used in reports.
    pub fn label(self) -> String {
        match self {
            BranchModel::Fair => "fair".to_owned(),
            BranchModel::Biased { permille } => format!("p{permille:04}"),
        }
    }
}

impl fmt::Display for BranchModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label())
    }
}

/// One point of the sweep matrix: circuit × latency bound × scheduler ×
/// pipeline depth × mux reordering × branch-probability model.
///
/// The derived `Ord` gives plans a canonical order (circuit, then latency,
/// then the remaining knobs), which is what makes sweep output independent
/// of thread count and of the order dimensions were added to the builder.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Scenario {
    /// Circuit name, resolved against the engine's circuit registry.
    pub circuit: String,
    /// Control steps between consecutive samples (the throughput
    /// constraint; column 2 of Table II).
    pub latency: u32,
    /// Final scheduler.
    pub scheduler: SchedulerKind,
    /// Pipeline stages (Section IV-B); 1 = no pipelining.  One sample gets
    /// `latency × pipeline_depth` control steps.
    pub pipeline_depth: u32,
    /// Whether the multiplexor-reordering search of Section IV-A runs
    /// (`false` = the paper's outputs-first default order).
    pub reorder: bool,
    /// Branch-probability model for the savings estimate.
    pub branch_model: BranchModel,
}

impl Scenario {
    /// A scenario with every knob at its default: force-directed scheduler,
    /// no pipelining, no reordering, fair branch probabilities.
    pub fn new(circuit: impl Into<String>, latency: u32) -> Self {
        Scenario {
            circuit: circuit.into(),
            latency,
            scheduler: SchedulerKind::default(),
            pipeline_depth: 1,
            reorder: false,
            branch_model: BranchModel::default(),
        }
    }

    /// Replaces the scheduler.
    pub fn scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Replaces the pipeline depth.
    pub fn pipeline_depth(mut self, depth: u32) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// Enables or disables the reordering search.
    pub fn reorder(mut self, reorder: bool) -> Self {
        self.reorder = reorder;
        self
    }

    /// Replaces the branch-probability model.
    pub fn branch_model(mut self, model: BranchModel) -> Self {
        self.branch_model = model;
        self
    }

    /// Control steps one sample may take after pipelining
    /// (`latency × pipeline_depth`).
    pub fn effective_latency(&self) -> u32 {
        self.latency.saturating_mul(self.pipeline_depth)
    }
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}@{} {} x{}{} {}",
            self.circuit,
            self.latency,
            self.scheduler,
            self.pipeline_depth,
            if self.reorder { " reorder" } else { "" },
            self.branch_model
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn effective_latency_multiplies_depth() {
        let s = Scenario::new("dealer", 4).pipeline_depth(3);
        assert_eq!(s.effective_latency(), 12);
        assert_eq!(Scenario::new("dealer", 4).effective_latency(), 4);
    }

    #[test]
    fn branch_model_probability_and_clamping() {
        assert_eq!(BranchModel::Fair.p_select_one(), 0.5);
        assert_eq!(BranchModel::biased(250).p_select_one(), 0.25);
        assert_eq!(BranchModel::biased(5000), BranchModel::biased(1000));
        assert_eq!(BranchModel::biased(1000).p_select_one(), 1.0);
    }

    #[test]
    fn ordering_is_circuit_then_latency_first() {
        let a = Scenario::new("dealer", 4);
        let b = Scenario::new("dealer", 5);
        let c = Scenario::new("gcd", 4);
        assert!(a < b && b < c);
    }

    #[test]
    fn display_is_compact_and_complete() {
        let s = Scenario::new("gcd", 6)
            .scheduler(SchedulerKind::List)
            .pipeline_depth(2)
            .reorder(true)
            .branch_model(BranchModel::biased(300));
        let text = s.to_string();
        assert!(text.contains("gcd@6"));
        assert!(text.contains("list"));
        assert!(text.contains("x2"));
        assert!(text.contains("reorder"));
        assert!(text.contains("p0300"));
    }
}
