//! Sweep plans: declarative expansion of a scenario matrix.
//!
//! A [`SweepPlanBuilder`] collects base cases (circuit, latency) plus one
//! list per sweep dimension, expands the cross product, deduplicates it and
//! sorts it into the canonical [`Scenario`] order.  The resulting
//! [`SweepPlan`] is what [`crate::Engine::run`] executes.

use std::collections::BTreeSet;

use crate::error::EngineError;
use crate::pareto::BudgetPolicy;
use crate::scenario::{BranchModel, Scenario, SchedulerKind};

/// Request for Table III style gate-level metrics on every scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GateLevelSpec {
    /// Number of random input samples to simulate per scenario.
    pub samples: usize,
    /// Seed for the random vector generator.
    pub seed: u64,
}

/// A deduplicated, deterministically ordered list of scenarios, optionally
/// with gate-level simulation enabled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPlan {
    scenarios: Vec<Scenario>,
    gate_level: Option<GateLevelSpec>,
    budget_policy: BudgetPolicy,
}

impl SweepPlan {
    /// Starts building a plan.
    pub fn builder() -> SweepPlanBuilder {
        SweepPlanBuilder::default()
    }

    /// The scenarios, in canonical (sorted) order.
    pub fn scenarios(&self) -> &[Scenario] {
        &self.scenarios
    }

    /// Number of scenarios in the plan.
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the plan is empty (never true for built plans).
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// The gate-level request, if any.
    pub fn gate_level(&self) -> Option<GateLevelSpec> {
        self.gate_level
    }

    /// The budget policy the engine expands this plan under.
    pub fn budget_policy(&self) -> BudgetPolicy {
        self.budget_policy
    }
}

/// Builder for [`SweepPlan`].
///
/// Base cases come from [`case`](Self::case) (explicit circuit/latency
/// pairs) and/or the [`circuits`](Self::circuits) ×
/// [`latencies`](Self::latencies) cross product.  Each sweep dimension
/// defaults to a single neutral value (force-directed, depth 1, no
/// reordering, fair probabilities) when left unset.
#[derive(Debug, Clone, Default)]
pub struct SweepPlanBuilder {
    cases: Vec<(String, u32)>,
    explicit: Vec<Scenario>,
    circuits: Vec<String>,
    latencies: Vec<u32>,
    schedulers: Vec<SchedulerKind>,
    depths: Vec<u32>,
    reorder: Vec<bool>,
    models: Vec<BranchModel>,
    gate_level: Option<GateLevelSpec>,
    budget_policy: BudgetPolicy,
}

impl SweepPlanBuilder {
    /// Adds one explicit (circuit, latency) base case.
    pub fn case(mut self, circuit: impl Into<String>, latency: u32) -> Self {
        self.cases.push((circuit.into(), latency));
        self
    }

    /// Adds fully specified scenarios verbatim, bypassing the cross-product
    /// expansion.  They are validated, deduplicated and sorted together with
    /// the expanded matrix — the sweep service uses this to reconstruct a
    /// plan from an explicit wire-format scenario list and still land on the
    /// same canonical plan an in-process builder produces.
    pub fn scenarios<I: IntoIterator<Item = Scenario>>(mut self, scenarios: I) -> Self {
        self.explicit.extend(scenarios);
        self
    }

    /// Adds circuits for the cross-product part of the matrix.
    pub fn circuits<I, S>(mut self, circuits: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.circuits.extend(circuits.into_iter().map(Into::into));
        self
    }

    /// Adds latency bounds for the cross-product part of the matrix.
    pub fn latencies<I: IntoIterator<Item = u32>>(mut self, latencies: I) -> Self {
        self.latencies.extend(latencies);
        self
    }

    /// Sets the schedulers to sweep (default: force-directed only).
    pub fn schedulers<I: IntoIterator<Item = SchedulerKind>>(mut self, schedulers: I) -> Self {
        self.schedulers.extend(schedulers);
        self
    }

    /// Sets the pipeline depths to sweep (default: 1, no pipelining).
    pub fn pipeline_depths<I: IntoIterator<Item = u32>>(mut self, depths: I) -> Self {
        self.depths.extend(depths);
        self
    }

    /// Sets the reordering settings to sweep (default: off only).
    pub fn reorder<I: IntoIterator<Item = bool>>(mut self, reorder: I) -> Self {
        self.reorder.extend(reorder);
        self
    }

    /// Sets the branch-probability models to sweep (default: fair only).
    pub fn branch_models<I: IntoIterator<Item = BranchModel>>(mut self, models: I) -> Self {
        self.models.extend(models);
        self
    }

    /// Requests gate-level (Table III style) metrics for every scenario.
    pub fn gate_level(mut self, samples: usize, seed: u64) -> Self {
        self.gate_level = Some(GateLevelSpec { samples, seed });
        self
    }

    /// Sets the budget policy (default: [`BudgetPolicy::Fixed`]).  Under
    /// the range policies the engine treats every scenario's latency bound
    /// as the *ceiling* of a walk starting at the circuit's critical path;
    /// [`BudgetPolicy::Pareto`] additionally reduces the report to each
    /// circuit's non-dominated records (failures are always kept).
    pub fn budget_policy(mut self, policy: BudgetPolicy) -> Self {
        self.budget_policy = policy;
        self
    }

    /// Expands, validates, deduplicates and sorts the matrix.
    ///
    /// # Errors
    ///
    /// * [`EngineError::EmptyPlan`] when no base case was provided,
    /// * [`EngineError::InvalidLatency`] for a zero latency bound,
    /// * [`EngineError::InvalidPipelineDepth`] for a zero pipeline depth.
    pub fn build(self) -> Result<SweepPlan, EngineError> {
        let mut base = self.cases;
        for circuit in &self.circuits {
            for &latency in &self.latencies {
                base.push((circuit.clone(), latency));
            }
        }
        if base.is_empty() && self.explicit.is_empty() {
            return Err(EngineError::EmptyPlan);
        }
        if base.iter().any(|&(_, latency)| latency == 0)
            || self.explicit.iter().any(|scenario| scenario.latency == 0)
        {
            return Err(EngineError::InvalidLatency);
        }
        if self.explicit.iter().any(|scenario| scenario.pipeline_depth == 0) {
            return Err(EngineError::InvalidPipelineDepth);
        }

        let schedulers = if self.schedulers.is_empty() {
            vec![SchedulerKind::default()]
        } else {
            self.schedulers
        };
        let depths = if self.depths.is_empty() { vec![1] } else { self.depths };
        if depths.contains(&0) {
            return Err(EngineError::InvalidPipelineDepth);
        }
        let reorder = if self.reorder.is_empty() { vec![false] } else { self.reorder };
        let models =
            if self.models.is_empty() { vec![BranchModel::default()] } else { self.models };

        let mut expanded: BTreeSet<Scenario> = self.explicit.into_iter().collect();
        for (circuit, latency) in &base {
            for &scheduler in &schedulers {
                for &depth in &depths {
                    for &reordering in &reorder {
                        for &model in &models {
                            expanded.insert(
                                Scenario::new(circuit.clone(), *latency)
                                    .scheduler(scheduler)
                                    .pipeline_depth(depth)
                                    .reorder(reordering)
                                    .branch_model(model),
                            );
                        }
                    }
                }
            }
        }

        Ok(SweepPlan {
            scenarios: expanded.into_iter().collect(),
            gate_level: self.gate_level,
            budget_policy: self.budget_policy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_product_expands_and_sorts() {
        let plan = SweepPlan::builder()
            .circuits(["gcd", "dealer"])
            .latencies([5, 4])
            .schedulers([SchedulerKind::ForceDirected, SchedulerKind::List])
            .build()
            .unwrap();
        assert_eq!(plan.len(), 8);
        let first = &plan.scenarios()[0];
        assert_eq!(first.circuit, "dealer");
        assert_eq!(first.latency, 4);
        // Sorted: all dealer scenarios precede all gcd scenarios.
        let dealer_count = plan.scenarios().iter().take_while(|s| s.circuit == "dealer").count();
        assert_eq!(dealer_count, 4);
    }

    #[test]
    fn duplicates_are_removed() {
        let plan = SweepPlan::builder()
            .case("dealer", 4)
            .case("dealer", 4)
            .circuits(["dealer"])
            .latencies([4])
            .build()
            .unwrap();
        assert_eq!(plan.len(), 1);
    }

    #[test]
    fn empty_plan_is_rejected() {
        assert_eq!(SweepPlan::builder().build().unwrap_err(), EngineError::EmptyPlan);
        // Circuits without latencies produce no base cases either.
        let err = SweepPlan::builder().circuits(["dealer"]).build().unwrap_err();
        assert_eq!(err, EngineError::EmptyPlan);
    }

    #[test]
    fn zero_latency_and_zero_depth_are_rejected() {
        let err = SweepPlan::builder().case("dealer", 0).build().unwrap_err();
        assert_eq!(err, EngineError::InvalidLatency);
        let err = SweepPlan::builder().case("dealer", 4).pipeline_depths([0]).build().unwrap_err();
        assert_eq!(err, EngineError::InvalidPipelineDepth);
    }

    #[test]
    fn gate_level_is_carried() {
        let plan = SweepPlan::builder().case("dealer", 4).gate_level(100, 7).build().unwrap();
        assert_eq!(plan.gate_level(), Some(GateLevelSpec { samples: 100, seed: 7 }));
        assert!(!plan.is_empty());
    }

    #[test]
    fn explicit_scenarios_round_trip_to_the_same_canonical_plan() {
        // Building from a plan's own scenario list must reproduce the plan:
        // this is the contract the sweep service's wire format relies on.
        let expanded = SweepPlan::builder()
            .circuits(["gcd", "dealer"])
            .latencies([5, 4])
            .schedulers([SchedulerKind::ForceDirected, SchedulerKind::List])
            .reorder([false, true])
            .build()
            .unwrap();
        let mut shuffled = expanded.scenarios().to_vec();
        shuffled.reverse();
        let rebuilt = SweepPlan::builder().scenarios(shuffled).build().unwrap();
        assert_eq!(rebuilt, expanded);
    }

    #[test]
    fn explicit_scenarios_merge_with_the_cross_product() {
        let plan = SweepPlan::builder()
            .case("dealer", 4)
            .scenarios([
                Scenario::new("gcd", 5).scheduler(SchedulerKind::List),
                // Duplicate of the cross-product case: deduplicated away.
                Scenario::new("dealer", 4),
            ])
            .build()
            .unwrap();
        assert_eq!(plan.len(), 2);
    }

    #[test]
    fn explicit_scenarios_are_validated() {
        let err = SweepPlan::builder().scenarios([Scenario::new("dealer", 0)]).build().unwrap_err();
        assert_eq!(err, EngineError::InvalidLatency);
        let err = SweepPlan::builder()
            .scenarios([Scenario::new("dealer", 4).pipeline_depth(0)])
            .build()
            .unwrap_err();
        assert_eq!(err, EngineError::InvalidPipelineDepth);
    }

    #[test]
    fn budget_policy_defaults_to_fixed_and_is_carried() {
        let plan = SweepPlan::builder().case("dealer", 6).build().unwrap();
        assert_eq!(plan.budget_policy(), BudgetPolicy::Fixed);
        let plan = SweepPlan::builder()
            .case("dealer", 6)
            .budget_policy(BudgetPolicy::FullRange)
            .build()
            .unwrap();
        assert_eq!(plan.budget_policy(), BudgetPolicy::FullRange);
    }
}
