//! The slack-driven latency–power Pareto explorer.
//!
//! The paper evaluates each circuit at a handful of hand-picked control-step
//! budgets (Table II).  This module treats latency vs. power as a
//! first-class multi-objective search instead: for every circuit it walks
//! the **full feasible budget range** — from the critical path up to a
//! configurable ceiling — runs the complete power-management flow at every
//! budget, scores each point under the scaled-delay (DVS-style) energy
//! model of [`power::dvs`], and reports the non-dominated
//! (budget, reduction) front.
//!
//! Two things make the walk cheap and exact:
//!
//! * **Warm-started scheduling** — adjacent budgets share one
//!   [`sched::force::Workspace`], so the ASAP/ALAP analysis and the force
//!   kernel reuse the previous budget's buffers.  Reuse never changes a
//!   result: warm schedules are bit-identical to cold per-budget runs (the
//!   identity tests pin this against `sched::naive`).
//! * **Per-circuit independence** — circuits are explored in parallel on
//!   the engine's [`crate::pool`], and every budget walk is sequential
//!   inside its circuit, so the report is identical for every thread count.

use std::fmt;
use std::fmt::Write as _;

use pmsched::{power_manage_with_workspace, OpWeights, PowerManagementOptions};
use power::dvs::scaled_delay_estimate;
use sched::force::Workspace;

use crate::report::{csv_field, json_number, json_string};
use crate::scenario::BranchModel;
use crate::{pool, select_probabilities, Engine};

pub use power::dvs::DelayScaling;

/// Which latency budgets a sweep or exploration visits per circuit — the
/// budget-policy axis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BudgetPolicy {
    /// Only the explicitly requested budgets (the paper's per-table lists).
    #[default]
    Fixed,
    /// Every feasible budget from the circuit's critical path up to the
    /// ceiling; all points are reported.
    FullRange,
    /// Same walk as [`BudgetPolicy::FullRange`], but only the non-dominated
    /// (budget, reduction) points are kept.
    Pareto,
}

impl BudgetPolicy {
    /// Every policy, in canonical order.
    pub const ALL: [BudgetPolicy; 3] =
        [BudgetPolicy::Fixed, BudgetPolicy::FullRange, BudgetPolicy::Pareto];

    /// Short stable label used in reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            BudgetPolicy::Fixed => "fixed",
            BudgetPolicy::FullRange => "full-range",
            BudgetPolicy::Pareto => "pareto",
        }
    }

    /// Parses a label produced by [`BudgetPolicy::label`].
    pub fn parse(text: &str) -> Option<Self> {
        BudgetPolicy::ALL.into_iter().find(|p| p.label() == text)
    }
}

impl fmt::Display for BudgetPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Upper end of the budget range a full-range walk covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BudgetCeiling {
    /// A fixed number of control steps (floored at the critical path).
    Absolute(u32),
    /// `critical path + span` control steps, so every circuit gets the same
    /// amount of extra slack regardless of its depth.
    CriticalPathPlus(u32),
}

impl BudgetCeiling {
    /// Resolves the ceiling for a circuit with critical path `cp`; never
    /// below `cp` itself.
    pub fn resolve(self, cp: u32) -> u32 {
        match self {
            BudgetCeiling::Absolute(steps) => steps.max(cp),
            BudgetCeiling::CriticalPathPlus(span) => cp.saturating_add(span),
        }
    }
}

impl Default for BudgetCeiling {
    fn default() -> Self {
        BudgetCeiling::CriticalPathPlus(8)
    }
}

/// All knobs of one exploration run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreOptions {
    /// Budget policy (default: [`BudgetPolicy::Fixed`]).
    pub policy: BudgetPolicy,
    /// Budget ceiling for the range policies (default: critical path + 8).
    pub ceiling: BudgetCeiling,
    /// Scaled-delay energy law (default: none — the paper's model).
    pub scaling: DelayScaling,
    /// Branch-probability model for the expected-execution estimate.
    pub branch_model: BranchModel,
}

impl ExploreOptions {
    /// Options with every knob at its default.
    pub fn new() -> Self {
        ExploreOptions::default()
    }

    /// Replaces the budget policy.
    pub fn policy(mut self, policy: BudgetPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the budget ceiling.
    pub fn ceiling(mut self, ceiling: BudgetCeiling) -> Self {
        self.ceiling = ceiling;
        self
    }

    /// Replaces the scaling law.
    pub fn scaling(mut self, scaling: DelayScaling) -> Self {
        self.scaling = scaling;
        self
    }

    /// Replaces the branch-probability model.
    pub fn branch_model(mut self, model: BranchModel) -> Self {
        self.branch_model = model;
        self
    }
}

/// One circuit to explore, with the explicit budgets the
/// [`BudgetPolicy::Fixed`] policy uses (the range policies derive their own
/// budgets and ignore the list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreRequest {
    /// Circuit name, resolved against the engine's registry.
    pub circuit: String,
    /// Explicit budgets for the fixed policy.
    pub budgets: Vec<u32>,
}

impl ExploreRequest {
    /// A request with no explicit budgets (range policies only).
    pub fn new(circuit: impl Into<String>) -> Self {
        ExploreRequest { circuit: circuit.into(), budgets: Vec::new() }
    }

    /// Adds explicit budgets for the fixed policy.
    pub fn budgets<I: IntoIterator<Item = u32>>(mut self, budgets: I) -> Self {
        self.budgets.extend(budgets);
        self
    }
}

/// One explored (budget, energy) point of a circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorePoint {
    /// Control-step budget (the scenario's latency bound).
    pub budget: u32,
    /// Control steps the final schedule spans.
    pub schedule_steps: u32,
    /// Multiplexors gating at least one operation in the final schedule.
    pub pm_muxes: usize,
    /// Shut-down reduction in percent (Table II's mechanism).
    pub shutdown_reduction: f64,
    /// Additional slowdown reduction in percent (the scaled-delay model).
    pub slowdown_reduction: f64,
    /// Combined reduction in percent; the objective the front is built on.
    pub combined_reduction: f64,
    /// Whether the point is on the non-dominated (budget, reduction) front.
    pub on_front: bool,
}

/// Everything one circuit's exploration produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitExploration {
    /// Circuit name.
    pub circuit: String,
    /// Critical-path length (the floor of the feasible budget range).
    pub critical_path: u32,
    /// Explored points in ascending budget order.  Under
    /// [`BudgetPolicy::Pareto`] only front points are retained.
    pub points: Vec<ExplorePoint>,
    /// Budgets that failed, with their error messages.
    pub failures: Vec<(u32, String)>,
}

impl CircuitExploration {
    /// The non-dominated points, in ascending budget order.
    pub fn front(&self) -> impl Iterator<Item = &ExplorePoint> {
        self.points.iter().filter(|p| p.on_front)
    }
}

/// The complete result of an exploration run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoReport {
    /// The policy the run used.
    pub policy: BudgetPolicy,
    /// The scaling law the run used.
    pub scaling: DelayScaling,
    /// The branch model the run used.
    pub branch_model: BranchModel,
    /// Per-circuit explorations, in request order.
    pub circuits: Vec<CircuitExploration>,
}

impl ParetoReport {
    /// Number of failed (circuit, budget) walks across all circuits.
    pub fn failure_count(&self) -> usize {
        self.circuits.iter().map(|c| c.failures.len()).sum()
    }

    /// The exploration of one circuit, if it was requested.
    pub fn circuit(&self, name: &str) -> Option<&CircuitExploration> {
        self.circuits.iter().find(|c| c.circuit == name)
    }

    /// Renders the report as JSON (stable key order and float formatting,
    /// byte-identical across reruns and thread counts).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"policy\": {}, \"scaling\": {}, \"branch_model\": {},\n  \"circuits\": [",
            json_string(self.policy.label()),
            json_string(self.scaling.label()),
            json_string(&self.branch_model.label()),
        );
        for (i, c) in self.circuits.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"circuit\": {}, \"critical_path\": {}, \"points\": [",
                json_string(&c.circuit),
                c.critical_path
            );
            for (j, p) in c.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n      {{\"budget\": {}, \"schedule_steps\": {}, \"pm_muxes\": {}, \
                     \"shutdown_reduction\": {}, \"slowdown_reduction\": {}, \
                     \"combined_reduction\": {}, \"on_front\": {}}}",
                    p.budget,
                    p.schedule_steps,
                    p.pm_muxes,
                    json_number(p.shutdown_reduction),
                    json_number(p.slowdown_reduction),
                    json_number(p.combined_reduction),
                    p.on_front,
                );
            }
            out.push_str("\n    ], \"failures\": [");
            for (j, (budget, error)) in c.failures.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n      {{\"budget\": {budget}, \"error\": {}}}",
                    json_string(error)
                );
            }
            out.push_str("\n    ]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders the explored points as CSV (header plus one line per point,
    /// then one line per failure with the error in the last column).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "circuit,critical_path,budget,schedule_steps,pm_muxes,\
             shutdown_reduction,slowdown_reduction,combined_reduction,on_front,error\n",
        );
        for c in &self.circuits {
            for p in &c.points {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{},{},",
                    csv_field(&c.circuit),
                    c.critical_path,
                    p.budget,
                    p.schedule_steps,
                    p.pm_muxes,
                    json_number(p.shutdown_reduction),
                    json_number(p.slowdown_reduction),
                    json_number(p.combined_reduction),
                    p.on_front,
                );
            }
            for (budget, error) in &c.failures {
                let _ = writeln!(
                    out,
                    "{},{},{budget},,,,,,,{}",
                    csv_field(&c.circuit),
                    c.critical_path,
                    csv_field(error)
                );
            }
        }
        out
    }

    /// Renders a human-readable per-circuit table with the front marked.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Pareto exploration — policy {}, scaling {}, branch model {}\n\n",
            self.policy, self.scaling, self.branch_model
        );
        for c in &self.circuits {
            let _ = writeln!(out, "{} (critical path {}):", c.circuit, c.critical_path);
            let _ = writeln!(
                out,
                "  {:>6} {:>5} {:>5} {:>9} {:>9} {:>9}  front",
                "Budget", "Steps", "Muxs", "Shut(%)", "Slow(%)", "Comb(%)"
            );
            for p in &c.points {
                let _ = writeln!(
                    out,
                    "  {:>6} {:>5} {:>5} {:>9.2} {:>9.2} {:>9.2}  {}",
                    p.budget,
                    p.schedule_steps,
                    p.pm_muxes,
                    p.shutdown_reduction,
                    p.slowdown_reduction,
                    p.combined_reduction,
                    if p.on_front { "*" } else { "" }
                );
            }
            for (budget, error) in &c.failures {
                let _ = writeln!(out, "  {budget:>6} error: {error}");
            }
            out.push('\n');
        }
        out
    }
}

/// Marks the non-dominated points of an ascending-budget walk.  With
/// distinct budgets, a point is on the front exactly when its reduction is
/// strictly greater than every cheaper point's — comparisons use
/// [`f64::total_cmp`] so even non-finite reductions rank deterministically.
fn mark_front(points: &mut [ExplorePoint]) {
    let mut best: Option<f64> = None;
    for p in points {
        let better = match best {
            None => true,
            Some(b) => p.combined_reduction.total_cmp(&b).is_gt(),
        };
        p.on_front = better;
        if better {
            best = Some(p.combined_reduction);
        }
    }
}

impl Engine {
    /// Explores the latency–power trade-off of every requested circuit and
    /// returns the per-circuit points and fronts.
    ///
    /// Circuits run in parallel on `threads` workers (0 = one per CPU);
    /// each circuit's budget walk is sequential and warm-started, so the
    /// report — like the sweep report — is identical for every thread
    /// count.  Failures (unknown circuits, degenerate estimates) are
    /// recorded per budget, never aborting the exploration.
    ///
    /// Unlike [`Engine::run`], this path bypasses the prefix memo cache:
    /// the budget walk reuses scheduling buffers instead, which is what
    /// makes visiting *every* budget affordable.
    pub fn explore(
        &self,
        requests: &[ExploreRequest],
        options: &ExploreOptions,
        threads: usize,
    ) -> ParetoReport {
        self.explore_controlled(requests, options, threads, None, None)
            .expect("an exploration without a cancel flag cannot be cancelled")
    }

    /// [`Engine::explore`] with cooperative cancellation and progress hooks
    /// (the service entry point, mirroring [`Engine::run_controlled`]).
    ///
    /// One progress item is one circuit walk.  `cancel` is checked at
    /// circuit boundaries: once set, no further circuit starts and the
    /// exploration returns `None`; an uncancelled exploration returns a
    /// report bit-identical to [`Engine::explore`]'s.
    pub fn explore_controlled(
        &self,
        requests: &[ExploreRequest],
        options: &ExploreOptions,
        threads: usize,
        cancel: Option<&std::sync::atomic::AtomicBool>,
        progress: Option<&(dyn Fn(crate::Progress) + Sync)>,
    ) -> Option<ParetoReport> {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        };
        let forward;
        let ctl = pool::MapControl {
            cancel,
            progress: match progress {
                Some(tick) => {
                    forward = move |completed: usize, total: usize| {
                        tick(crate::Progress { completed, total })
                    };
                    Some(&forward as &(dyn Fn(usize, usize) + Sync))
                }
                None => None,
            },
        };
        let circuits = pool::parallel_map_controlled(
            requests.to_vec(),
            threads,
            &|request| explore_circuit(self, &request, options),
            ctl,
        )?;
        Some(ParetoReport {
            policy: options.policy,
            scaling: options.scaling,
            branch_model: options.branch_model,
            circuits,
        })
    }
}

/// Walks one circuit across its budget range with a warm-started
/// scheduling workspace.
fn explore_circuit(
    engine: &Engine,
    request: &ExploreRequest,
    options: &ExploreOptions,
) -> CircuitExploration {
    let Some(cdfg) = engine.circuit(&request.circuit) else {
        return CircuitExploration {
            circuit: request.circuit.clone(),
            critical_path: 0,
            points: Vec::new(),
            failures: vec![(0, format!("unknown circuit `{}`", request.circuit))],
        };
    };
    let critical_path = cdfg.critical_path_length();
    let budgets: Vec<u32> = match options.policy {
        BudgetPolicy::Fixed => {
            let mut budgets = request.budgets.clone();
            budgets.sort_unstable();
            budgets.dedup();
            budgets
        }
        BudgetPolicy::FullRange | BudgetPolicy::Pareto => {
            (critical_path..=options.ceiling.resolve(critical_path)).collect()
        }
    };

    let weights = OpWeights::paper_power();
    let mut workspace = Workspace::new();
    let mut points = Vec::with_capacity(budgets.len());
    let mut failures = Vec::new();
    for budget in budgets {
        let pm_options = PowerManagementOptions::with_latency(budget);
        let result = match power_manage_with_workspace(cdfg, &pm_options, &mut workspace) {
            Ok(result) => result,
            Err(e) => {
                failures.push((budget, e.to_string()));
                continue;
            }
        };
        let probs = select_probabilities(&result, options.branch_model);
        match scaled_delay_estimate(&result, &probs, &weights, options.scaling) {
            Ok(report) => points.push(ExplorePoint {
                budget,
                schedule_steps: result.schedule().num_steps(),
                pm_muxes: result.managed_mux_count(),
                shutdown_reduction: report.shutdown_reduction_percent,
                slowdown_reduction: report.slowdown_reduction_percent,
                combined_reduction: report.combined_reduction_percent,
                on_front: false,
            }),
            Err(e) => failures.push((budget, e.to_string())),
        }
    }
    mark_front(&mut points);
    if options.policy == BudgetPolicy::Pareto {
        points.retain(|p| p.on_front);
    }
    CircuitExploration { circuit: request.circuit.clone(), critical_path, points, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_range(scaling: DelayScaling) -> ExploreOptions {
        ExploreOptions::new()
            .policy(BudgetPolicy::FullRange)
            .ceiling(BudgetCeiling::CriticalPathPlus(4))
            .scaling(scaling)
    }

    #[test]
    fn full_range_covers_critical_path_to_ceiling() {
        let engine = Engine::new();
        let report = engine.explore(
            &[ExploreRequest::new("abs_diff")],
            &full_range(DelayScaling::Quadratic),
            1,
        );
        let c = report.circuit("abs_diff").unwrap();
        assert_eq!(c.critical_path, 2);
        let budgets: Vec<u32> = c.points.iter().map(|p| p.budget).collect();
        assert_eq!(budgets, vec![2, 3, 4, 5, 6]);
        assert!(c.failures.is_empty());
        assert_eq!(report.failure_count(), 0);
    }

    #[test]
    fn fronts_are_strictly_improving_and_pareto_policy_keeps_only_them() {
        let engine = Engine::new();
        let full = engine.explore(
            &[ExploreRequest::new("dealer")],
            &full_range(DelayScaling::Quadratic),
            1,
        );
        let pareto = engine.explore(
            &[ExploreRequest::new("dealer")],
            &full_range(DelayScaling::Quadratic).policy(BudgetPolicy::Pareto),
            1,
        );
        let full_front: Vec<&ExplorePoint> = full.circuit("dealer").unwrap().front().collect();
        let pareto_points = &pareto.circuit("dealer").unwrap().points;
        assert_eq!(full_front.len(), pareto_points.len());
        for (a, b) in full_front.iter().zip(pareto_points) {
            assert_eq!(a.budget, b.budget);
            assert_eq!(a.combined_reduction, b.combined_reduction);
            assert!(b.on_front);
        }
        // Strictly improving along the front — the non-domination invariant.
        for pair in pareto_points.windows(2) {
            assert!(pair[0].budget < pair[1].budget);
            assert!(pair[0].combined_reduction < pair[1].combined_reduction);
        }
    }

    #[test]
    fn fixed_policy_visits_exactly_the_requested_budgets() {
        let engine = Engine::new();
        let report = engine.explore(
            &[ExploreRequest::new("gcd").budgets([7, 5, 6, 5])],
            &ExploreOptions::new(),
            1,
        );
        let c = report.circuit("gcd").unwrap();
        let budgets: Vec<u32> = c.points.iter().map(|p| p.budget).collect();
        assert_eq!(budgets, vec![5, 6, 7], "sorted and deduplicated");
        // Under the default (paper) model there is no slowdown component.
        assert!(c.points.iter().all(|p| p.slowdown_reduction == 0.0));
        assert!(c
            .points
            .iter()
            .all(|p| (p.combined_reduction - p.shutdown_reduction).abs() < 1e-9));
    }

    #[test]
    fn infeasible_and_unknown_requests_become_failures() {
        let engine = Engine::new();
        let report = engine.explore(
            &[ExploreRequest::new("nonexistent"), ExploreRequest::new("dealer").budgets([1, 6])],
            &ExploreOptions::new(),
            2,
        );
        assert_eq!(report.failure_count(), 2);
        let unknown = report.circuit("nonexistent").unwrap();
        assert!(unknown.failures[0].1.contains("unknown circuit"));
        let dealer = report.circuit("dealer").unwrap();
        assert_eq!(dealer.failures.len(), 1, "budget 1 is below dealer's critical path");
        assert_eq!(dealer.failures[0].0, 1);
        assert_eq!(dealer.points.len(), 1, "budget 6 still succeeds");
    }

    #[test]
    fn reports_are_identical_across_thread_counts() {
        let engine = Engine::new();
        let requests: Vec<ExploreRequest> =
            ["dealer", "gcd", "vender", "abs_diff"].map(ExploreRequest::new).to_vec();
        let options = full_range(DelayScaling::Linear).policy(BudgetPolicy::Pareto);
        let one = engine.explore(&requests, &options, 1);
        let four = engine.explore(&requests, &options, 4);
        let eight = engine.explore(&requests, &options, 8);
        assert_eq!(one, four);
        assert_eq!(one.to_json(), four.to_json());
        assert_eq!(one.to_json(), eight.to_json());
        assert_eq!(one.to_csv(), eight.to_csv());
    }

    #[test]
    fn mark_front_ranks_with_total_cmp() {
        let point = |budget, reduction| ExplorePoint {
            budget,
            schedule_steps: budget,
            pm_muxes: 0,
            shutdown_reduction: reduction,
            slowdown_reduction: 0.0,
            combined_reduction: reduction,
            on_front: false,
        };
        // An exact tie is dominated (same reduction at a higher budget),
        // and NaN ranks above every finite value under total_cmp — in both
        // cases deterministically, which is what byte-identical reruns need.
        let mut points = vec![point(2, 10.0), point(3, 10.0), point(4, f64::NAN), point(5, 20.0)];
        mark_front(&mut points);
        assert_eq!(
            points.iter().map(|p| p.on_front).collect::<Vec<_>>(),
            vec![true, false, true, false]
        );
    }

    #[test]
    fn labels_roundtrip() {
        for policy in BudgetPolicy::ALL {
            assert_eq!(BudgetPolicy::parse(policy.label()), Some(policy));
        }
        assert_eq!(BudgetPolicy::parse("adaptive"), None);
        assert_eq!(BudgetCeiling::Absolute(3).resolve(5), 5, "never below the critical path");
        assert_eq!(BudgetCeiling::Absolute(9).resolve(5), 9);
        assert_eq!(BudgetCeiling::CriticalPathPlus(4).resolve(5), 9);
    }

    #[test]
    fn json_and_csv_are_stable_and_complete() {
        let engine = Engine::new();
        let report = engine.explore(
            &[ExploreRequest::new("abs_diff"), ExploreRequest::new("nope")],
            &full_range(DelayScaling::Quadratic),
            2,
        );
        let json = report.to_json();
        assert_eq!(json, report.to_json(), "emission is deterministic");
        assert!(json.contains("\"policy\": \"full-range\""));
        assert!(json.contains("\"scaling\": \"quadratic\""));
        assert!(json.contains("\"on_front\": true"));
        assert!(json.contains("unknown circuit"));
        let csv = report.to_csv();
        assert!(csv.lines().next().unwrap().starts_with("circuit,critical_path,budget"));
        assert_eq!(csv.lines().count(), 1 + 5 + 1, "header + 5 points + 1 failure row");
        let text = report.render();
        assert!(text.contains("abs_diff (critical path 2):"));
        assert!(text.contains("Comb(%)"));
    }
}
