//! The slack-driven latency–power Pareto explorer.
//!
//! The paper evaluates each circuit at a handful of hand-picked control-step
//! budgets (Table II).  This module treats latency vs. power as a
//! first-class multi-objective search instead: for every circuit it walks
//! the **full feasible budget range** — from the critical path up to a
//! configurable ceiling — runs the complete power-management flow at every
//! budget, scores each point's energy under the [`VoltagePolicy`] in
//! effect (a global scaled-delay curve from [`power::dvs`], or per-op
//! discrete levels picked by [`sched::dvs::distribute_slack`]), prices its
//! area with [`binding::AreaModel`] over the FU binding — voltage-
//! partitioned when levels differ, since operations at different supplies
//! cannot share a unit — and reports the non-dominated 3-objective
//! (budget, energy, area) front.
//!
//! Two things make the walk cheap and exact:
//!
//! * **Warm-started scheduling** — adjacent budgets share one
//!   [`sched::force::Workspace`], so the ASAP/ALAP analysis and the force
//!   kernel reuse the previous budget's buffers.  Reuse never changes a
//!   result: warm schedules are bit-identical to cold per-budget runs (the
//!   identity tests pin this against `sched::naive`).
//! * **Per-circuit independence** — circuits are explored in parallel on
//!   the engine's [`crate::pool`], and every budget walk is sequential
//!   inside its circuit, so the report is identical for every thread count.

use std::fmt;
use std::fmt::Write as _;

use binding::{AreaModel, Datapath};
use pmsched::{power_manage_with_workspace, OpWeights, PowerManagementOptions};
use power::dvs::scaled_delay_estimate_into;
use power::voltage::{voltage_scaled_estimate, VoltageAssignment};
use sched::force::Workspace;

use crate::report::{csv_field, json_number, json_string};
use crate::scenario::BranchModel;
use crate::{pool, select_probabilities, Engine};

pub use power::dvs::DelayScaling;
pub use power::voltage::{VoltagePolicy, VoltagePreset};

/// Which latency budgets a sweep or exploration visits per circuit — the
/// budget-policy axis.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BudgetPolicy {
    /// Only the explicitly requested budgets (the paper's per-table lists).
    #[default]
    Fixed,
    /// Every feasible budget from the circuit's critical path up to the
    /// ceiling; all points are reported.
    FullRange,
    /// Same walk as [`BudgetPolicy::FullRange`], but only the non-dominated
    /// (budget, reduction) points are kept.
    Pareto,
}

impl BudgetPolicy {
    /// Every policy, in canonical order.
    pub const ALL: [BudgetPolicy; 3] =
        [BudgetPolicy::Fixed, BudgetPolicy::FullRange, BudgetPolicy::Pareto];

    /// Short stable label used in reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            BudgetPolicy::Fixed => "fixed",
            BudgetPolicy::FullRange => "full-range",
            BudgetPolicy::Pareto => "pareto",
        }
    }

    /// Parses a label produced by [`BudgetPolicy::label`].
    pub fn parse(text: &str) -> Option<Self> {
        BudgetPolicy::ALL.into_iter().find(|p| p.label() == text)
    }
}

impl fmt::Display for BudgetPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Upper end of the budget range a full-range walk covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum BudgetCeiling {
    /// A fixed number of control steps (floored at the critical path).
    Absolute(u32),
    /// `critical path + span` control steps, so every circuit gets the same
    /// amount of extra slack regardless of its depth.
    CriticalPathPlus(u32),
}

impl BudgetCeiling {
    /// Resolves the ceiling for a circuit with critical path `cp`; never
    /// below `cp` itself.
    pub fn resolve(self, cp: u32) -> u32 {
        match self {
            BudgetCeiling::Absolute(steps) => steps.max(cp),
            BudgetCeiling::CriticalPathPlus(span) => cp.saturating_add(span),
        }
    }
}

impl Default for BudgetCeiling {
    fn default() -> Self {
        BudgetCeiling::CriticalPathPlus(8)
    }
}

/// All knobs of one exploration run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExploreOptions {
    /// Budget policy (default: [`BudgetPolicy::Fixed`]).
    pub policy: BudgetPolicy,
    /// Budget ceiling for the range policies (default: critical path + 8).
    pub ceiling: BudgetCeiling,
    /// Voltage policy: one global scaled-delay curve or per-op discrete
    /// levels (default: `Global(None)` — the paper's model).
    pub voltage: VoltagePolicy,
    /// Branch-probability model for the expected-execution estimate.
    pub branch_model: BranchModel,
}

impl ExploreOptions {
    /// Options with every knob at its default.
    pub fn new() -> Self {
        ExploreOptions::default()
    }

    /// Replaces the budget policy.
    pub fn policy(mut self, policy: BudgetPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Replaces the budget ceiling.
    pub fn ceiling(mut self, ceiling: BudgetCeiling) -> Self {
        self.ceiling = ceiling;
        self
    }

    /// Replaces the voltage policy with a global scaling curve — sugar for
    /// `voltage(VoltagePolicy::Global(scaling))`, keeping the pre-existing
    /// builder spelling working.
    pub fn scaling(mut self, scaling: DelayScaling) -> Self {
        self.voltage = VoltagePolicy::Global(scaling);
        self
    }

    /// Replaces the voltage policy.
    pub fn voltage(mut self, voltage: VoltagePolicy) -> Self {
        self.voltage = voltage;
        self
    }

    /// Replaces the branch-probability model.
    pub fn branch_model(mut self, model: BranchModel) -> Self {
        self.branch_model = model;
        self
    }
}

/// One circuit to explore, with the explicit budgets the
/// [`BudgetPolicy::Fixed`] policy uses (the range policies derive their own
/// budgets and ignore the list).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExploreRequest {
    /// Circuit name, resolved against the engine's registry.
    pub circuit: String,
    /// Explicit budgets for the fixed policy.
    pub budgets: Vec<u32>,
}

impl ExploreRequest {
    /// A request with no explicit budgets (range policies only).
    pub fn new(circuit: impl Into<String>) -> Self {
        ExploreRequest { circuit: circuit.into(), budgets: Vec::new() }
    }

    /// Adds explicit budgets for the fixed policy.
    pub fn budgets<I: IntoIterator<Item = u32>>(mut self, budgets: I) -> Self {
        self.budgets.extend(budgets);
        self
    }
}

/// One explored (budget, energy) point of a circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorePoint {
    /// Control-step budget (the scenario's latency bound).
    pub budget: u32,
    /// Control steps the final schedule spans.
    pub schedule_steps: u32,
    /// Multiplexors gating at least one operation in the final schedule.
    pub pm_muxes: usize,
    /// Shut-down reduction in percent (Table II's mechanism).
    pub shutdown_reduction: f64,
    /// Additional slowdown reduction in percent (the voltage model).
    pub slowdown_reduction: f64,
    /// Combined reduction in percent (a monotone transform of `energy`;
    /// kept for the reduction-oriented tables).
    pub combined_reduction: f64,
    /// Absolute weighted energy under the voltage policy (the
    /// `scaled_weighted` estimate) — the energy objective of the front.
    pub energy: f64,
    /// Datapath area under the voltage-partitioned FU binding
    /// ([`binding::AreaModel`] total) — the area objective of the front.
    pub area: f64,
    /// Whether the point is on the non-dominated (budget, energy, area)
    /// front.
    pub on_front: bool,
}

/// Everything one circuit's exploration produced.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitExploration {
    /// Circuit name.
    pub circuit: String,
    /// Critical-path length (the floor of the feasible budget range).
    pub critical_path: u32,
    /// Explored points in ascending budget order.  Under
    /// [`BudgetPolicy::Pareto`] only front points are retained.
    pub points: Vec<ExplorePoint>,
    /// Budgets that failed, with their error messages.
    pub failures: Vec<(u32, String)>,
}

impl CircuitExploration {
    /// The non-dominated points, in ascending budget order.
    pub fn front(&self) -> impl Iterator<Item = &ExplorePoint> {
        self.points.iter().filter(|p| p.on_front)
    }
}

/// The complete result of an exploration run.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoReport {
    /// The policy the run used.
    pub policy: BudgetPolicy,
    /// The voltage policy the run used.
    pub voltage: VoltagePolicy,
    /// The branch model the run used.
    pub branch_model: BranchModel,
    /// Per-circuit explorations, in request order.
    pub circuits: Vec<CircuitExploration>,
}

impl ParetoReport {
    /// Number of failed (circuit, budget) walks across all circuits.
    pub fn failure_count(&self) -> usize {
        self.circuits.iter().map(|c| c.failures.len()).sum()
    }

    /// The exploration of one circuit, if it was requested.
    pub fn circuit(&self, name: &str) -> Option<&CircuitExploration> {
        self.circuits.iter().find(|c| c.circuit == name)
    }

    /// Renders the report as JSON (stable key order and float formatting,
    /// byte-identical across reruns and thread counts).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\n  \"policy\": {}, \"voltage\": {}, \"branch_model\": {},\n  \"circuits\": [",
            json_string(self.policy.label()),
            json_string(self.voltage.label()),
            json_string(&self.branch_model.label()),
        );
        for (i, c) in self.circuits.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"circuit\": {}, \"critical_path\": {}, \"points\": [",
                json_string(&c.circuit),
                c.critical_path
            );
            for (j, p) in c.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n      {{\"budget\": {}, \"schedule_steps\": {}, \"pm_muxes\": {}, \
                     \"shutdown_reduction\": {}, \"slowdown_reduction\": {}, \
                     \"combined_reduction\": {}, \"energy\": {}, \"area\": {}, \
                     \"on_front\": {}}}",
                    p.budget,
                    p.schedule_steps,
                    p.pm_muxes,
                    json_number(p.shutdown_reduction),
                    json_number(p.slowdown_reduction),
                    json_number(p.combined_reduction),
                    json_number(p.energy),
                    json_number(p.area),
                    p.on_front,
                );
            }
            out.push_str("\n    ], \"failures\": [");
            for (j, (budget, error)) in c.failures.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n      {{\"budget\": {budget}, \"error\": {}}}",
                    json_string(error)
                );
            }
            out.push_str("\n    ]}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders the explored points as CSV (header plus one line per point,
    /// then one line per failure with the error in the last column).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "circuit,critical_path,budget,schedule_steps,pm_muxes,\
             shutdown_reduction,slowdown_reduction,combined_reduction,\
             energy,area,on_front,error\n",
        );
        for c in &self.circuits {
            for p in &c.points {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{},{},{},{},{},",
                    csv_field(&c.circuit),
                    c.critical_path,
                    p.budget,
                    p.schedule_steps,
                    p.pm_muxes,
                    json_number(p.shutdown_reduction),
                    json_number(p.slowdown_reduction),
                    json_number(p.combined_reduction),
                    json_number(p.energy),
                    json_number(p.area),
                    p.on_front,
                );
            }
            for (budget, error) in &c.failures {
                let _ = writeln!(
                    out,
                    "{},{},{budget},,,,,,,,,{}",
                    csv_field(&c.circuit),
                    c.critical_path,
                    csv_field(error)
                );
            }
        }
        out
    }

    /// Renders a human-readable per-circuit table with the front marked.
    pub fn render(&self) -> String {
        let mut out = format!(
            "Pareto exploration — policy {}, voltage {}, branch model {}\n\n",
            self.policy, self.voltage, self.branch_model
        );
        for c in &self.circuits {
            let _ = writeln!(out, "{} (critical path {}):", c.circuit, c.critical_path);
            let _ = writeln!(
                out,
                "  {:>6} {:>5} {:>5} {:>9} {:>9} {:>9} {:>9} {:>9}  front",
                "Budget", "Steps", "Muxs", "Shut(%)", "Slow(%)", "Comb(%)", "Energy", "Area"
            );
            for p in &c.points {
                let _ = writeln!(
                    out,
                    "  {:>6} {:>5} {:>5} {:>9.2} {:>9.2} {:>9.2} {:>9.3} {:>9.1}  {}",
                    p.budget,
                    p.schedule_steps,
                    p.pm_muxes,
                    p.shutdown_reduction,
                    p.slowdown_reduction,
                    p.combined_reduction,
                    p.energy,
                    p.area,
                    if p.on_front { "*" } else { "" }
                );
            }
            for (budget, error) in &c.failures {
                let _ = writeln!(out, "  {budget:>6} error: {error}");
            }
            out.push('\n');
        }
        out
    }
}

/// True when `a` dominates `b` in the 3-objective sense: no worse on every
/// minimised objective (budget, energy, area) and strictly better on at
/// least one.  Float comparisons use [`f64::total_cmp`] so even non-finite
/// values rank deterministically.
fn dominates(a: &ExplorePoint, b: &ExplorePoint) -> bool {
    let le = |x: f64, y: f64| x.total_cmp(&y).is_le();
    let lt = |x: f64, y: f64| x.total_cmp(&y).is_lt();
    a.budget <= b.budget
        && le(a.energy, b.energy)
        && le(a.area, b.area)
        && (a.budget < b.budget || lt(a.energy, b.energy) || lt(a.area, b.area))
}

/// Marks the non-dominated points of a budget walk under the 3-objective
/// (budget ↓, energy ↓, area ↓) order — O(n²) pairwise, which is exact and
/// cheap at budget-walk sizes.  With only the energy objective varying
/// this degenerates to the old 2-objective rule (reduction strictly
/// improving with the budget); area keeps otherwise-dominated points alive
/// when a longer budget buys a smaller datapath.
fn mark_front(points: &mut [ExplorePoint]) {
    for i in 0..points.len() {
        let dominated = (0..points.len()).any(|j| j != i && dominates(&points[j], &points[i]));
        points[i].on_front = !dominated;
    }
}

impl Engine {
    /// Explores the latency–power trade-off of every requested circuit and
    /// returns the per-circuit points and fronts.
    ///
    /// Circuits run in parallel on `threads` workers (0 = one per CPU);
    /// each circuit's budget walk is sequential and warm-started, so the
    /// report — like the sweep report — is identical for every thread
    /// count.  Failures (unknown circuits, degenerate estimates) are
    /// recorded per budget, never aborting the exploration.
    ///
    /// Unlike [`Engine::run`], this path bypasses the prefix memo cache:
    /// the budget walk reuses scheduling buffers instead, which is what
    /// makes visiting *every* budget affordable.
    pub fn explore(
        &self,
        requests: &[ExploreRequest],
        options: &ExploreOptions,
        threads: usize,
    ) -> ParetoReport {
        self.explore_controlled(requests, options, threads, None, None)
            .expect("an exploration without a cancel flag cannot be cancelled")
    }

    /// [`Engine::explore`] with cooperative cancellation and progress hooks
    /// (the service entry point, mirroring [`Engine::run_controlled`]).
    ///
    /// One progress item is one circuit walk.  `cancel` is checked at
    /// circuit boundaries: once set, no further circuit starts and the
    /// exploration returns `None`; an uncancelled exploration returns a
    /// report bit-identical to [`Engine::explore`]'s.
    pub fn explore_controlled(
        &self,
        requests: &[ExploreRequest],
        options: &ExploreOptions,
        threads: usize,
        cancel: Option<&std::sync::atomic::AtomicBool>,
        progress: Option<&(dyn Fn(crate::Progress) + Sync)>,
    ) -> Option<ParetoReport> {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        };
        let forward;
        let ctl = pool::MapControl {
            cancel,
            progress: match progress {
                Some(tick) => {
                    forward = move |completed: usize, total: usize| {
                        tick(crate::Progress { completed, total })
                    };
                    Some(&forward as &(dyn Fn(usize, usize) + Sync))
                }
                None => None,
            },
        };
        let circuits = pool::parallel_map_controlled(
            requests.to_vec(),
            threads,
            &|request| explore_circuit(self, &request, options),
            ctl,
        )?;
        Some(ParetoReport {
            policy: options.policy,
            voltage: options.voltage,
            branch_model: options.branch_model,
            circuits,
        })
    }
}

/// Walks one circuit across its budget range with a warm-started
/// scheduling workspace.
fn explore_circuit(
    engine: &Engine,
    request: &ExploreRequest,
    options: &ExploreOptions,
) -> CircuitExploration {
    let Some(cdfg) = engine.circuit(&request.circuit) else {
        return CircuitExploration {
            circuit: request.circuit.clone(),
            critical_path: 0,
            points: Vec::new(),
            failures: vec![(0, format!("unknown circuit `{}`", request.circuit))],
        };
    };
    let critical_path = cdfg.critical_path_length();
    let budgets: Vec<u32> = match options.policy {
        BudgetPolicy::Fixed => {
            let mut budgets = request.budgets.clone();
            budgets.sort_unstable();
            budgets.dedup();
            budgets
        }
        BudgetPolicy::FullRange | BudgetPolicy::Pareto => {
            (critical_path..=options.ceiling.resolve(critical_path)).collect()
        }
    };

    let weights = OpWeights::paper_power();
    let area_model = AreaModel::new();
    let mut workspace = Workspace::new();
    let mut dvs_workspace = sched::dvs::Workspace::new();
    let mut delays: Vec<(cdfg::NodeId, u32)> = Vec::new();
    let mut points = Vec::with_capacity(budgets.len());
    let mut failures = Vec::new();
    for budget in budgets {
        let pm_options = PowerManagementOptions::with_latency(budget);
        let result = match power_manage_with_workspace(cdfg, &pm_options, &mut workspace) {
            Ok(result) => result,
            Err(e) => {
                failures.push((budget, e.to_string()));
                continue;
            }
        };
        let probs = select_probabilities(&result, options.branch_model);
        let mut score = || -> Result<ExplorePoint, String> {
            let (shutdown, slowdown, combined, energy, area) = match options.voltage {
                VoltagePolicy::Global(scaling) => {
                    // The single-curve path, with the allotted-delay buffer
                    // reused across the budget walk.  All operations sit at
                    // one voltage, so the plain (unpartitioned) binding
                    // prices the area.
                    let report =
                        scaled_delay_estimate_into(&result, &probs, &weights, scaling, &mut delays)
                            .map_err(|e| e.to_string())?;
                    let datapath = Datapath::build(result.cdfg(), result.schedule())
                        .map_err(|e| e.to_string())?;
                    (
                        report.shutdown_reduction_percent,
                        report.slowdown_reduction_percent,
                        report.combined_reduction_percent,
                        report.scaled_weighted,
                        area_model.estimate(&datapath).total(),
                    )
                }
                VoltagePolicy::PerOp(preset) => {
                    // Per-op levels from the slack-distribution kernel,
                    // priced by expected execution (weight × activation
                    // probability), then a voltage-partitioned binding:
                    // units are shared only within one level.
                    let table = preset.table();
                    let levels = table.slack_levels();
                    let activation = result.activation(&probs);
                    let pm_cdfg = result.cdfg();
                    let node_weight = |n: cdfg::NodeId| {
                        let class = pm_cdfg.node(n).expect("live node").op.class();
                        weights.weight(class) * activation.probability(n)
                    };
                    let picked = sched::dvs::distribute_slack(
                        pm_cdfg,
                        result.latency(),
                        &levels,
                        &node_weight,
                        &mut dvs_workspace,
                    )
                    .map_err(|e| e.to_string())?;
                    let assignment = VoltageAssignment::from_levels(picked.levels().to_vec());
                    let estimate =
                        voltage_scaled_estimate(&result, &probs, &weights, &table, &assignment)
                            .map_err(|e| e.to_string())?;
                    let datapath = Datapath::build_partitioned(pm_cdfg, result.schedule(), &|n| {
                        picked.level_of(n)
                    })
                    .map_err(|e| e.to_string())?;
                    (
                        estimate.shutdown_reduction_percent,
                        estimate.slowdown_reduction_percent,
                        estimate.combined_reduction_percent,
                        estimate.scaled_weighted,
                        area_model.estimate(&datapath).total(),
                    )
                }
            };
            Ok(ExplorePoint {
                budget,
                schedule_steps: result.schedule().num_steps(),
                pm_muxes: result.managed_mux_count(),
                shutdown_reduction: shutdown,
                slowdown_reduction: slowdown,
                combined_reduction: combined,
                energy,
                area,
                on_front: false,
            })
        };
        match score() {
            Ok(point) => points.push(point),
            Err(e) => failures.push((budget, e)),
        }
    }
    mark_front(&mut points);
    if options.policy == BudgetPolicy::Pareto {
        points.retain(|p| p.on_front);
    }
    CircuitExploration { circuit: request.circuit.clone(), critical_path, points, failures }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_range(scaling: DelayScaling) -> ExploreOptions {
        ExploreOptions::new()
            .policy(BudgetPolicy::FullRange)
            .ceiling(BudgetCeiling::CriticalPathPlus(4))
            .scaling(scaling)
    }

    #[test]
    fn full_range_covers_critical_path_to_ceiling() {
        let engine = Engine::new();
        let report = engine.explore(
            &[ExploreRequest::new("abs_diff")],
            &full_range(DelayScaling::Quadratic),
            1,
        );
        let c = report.circuit("abs_diff").unwrap();
        assert_eq!(c.critical_path, 2);
        let budgets: Vec<u32> = c.points.iter().map(|p| p.budget).collect();
        assert_eq!(budgets, vec![2, 3, 4, 5, 6]);
        assert!(c.failures.is_empty());
        assert_eq!(report.failure_count(), 0);
    }

    #[test]
    fn fronts_are_strictly_improving_and_pareto_policy_keeps_only_them() {
        let engine = Engine::new();
        let full = engine.explore(
            &[ExploreRequest::new("dealer")],
            &full_range(DelayScaling::Quadratic),
            1,
        );
        let pareto = engine.explore(
            &[ExploreRequest::new("dealer")],
            &full_range(DelayScaling::Quadratic).policy(BudgetPolicy::Pareto),
            1,
        );
        let full_front: Vec<&ExplorePoint> = full.circuit("dealer").unwrap().front().collect();
        let pareto_points = &pareto.circuit("dealer").unwrap().points;
        assert_eq!(full_front.len(), pareto_points.len());
        for (a, b) in full_front.iter().zip(pareto_points) {
            assert_eq!(a.budget, b.budget);
            assert_eq!(a.combined_reduction, b.combined_reduction);
            assert_eq!(a.energy, b.energy);
            assert_eq!(a.area, b.area);
            assert!(b.on_front);
        }
        // The 3-objective non-domination invariant: a later (costlier
        // budget) front point must improve energy or area over every
        // earlier front point — otherwise the earlier one dominates it.
        for (i, a) in pareto_points.iter().enumerate() {
            for b in &pareto_points[i + 1..] {
                assert!(a.budget < b.budget);
                assert!(
                    b.energy.total_cmp(&a.energy).is_lt() || b.area.total_cmp(&a.area).is_lt(),
                    "budget {} is dominated by budget {}",
                    b.budget,
                    a.budget
                );
            }
        }
    }

    #[test]
    fn fixed_policy_visits_exactly_the_requested_budgets() {
        let engine = Engine::new();
        let report = engine.explore(
            &[ExploreRequest::new("gcd").budgets([7, 5, 6, 5])],
            &ExploreOptions::new(),
            1,
        );
        let c = report.circuit("gcd").unwrap();
        let budgets: Vec<u32> = c.points.iter().map(|p| p.budget).collect();
        assert_eq!(budgets, vec![5, 6, 7], "sorted and deduplicated");
        // Under the default (paper) model there is no slowdown component.
        assert!(c.points.iter().all(|p| p.slowdown_reduction == 0.0));
        assert!(c
            .points
            .iter()
            .all(|p| (p.combined_reduction - p.shutdown_reduction).abs() < 1e-9));
    }

    #[test]
    fn infeasible_and_unknown_requests_become_failures() {
        let engine = Engine::new();
        let report = engine.explore(
            &[ExploreRequest::new("nonexistent"), ExploreRequest::new("dealer").budgets([1, 6])],
            &ExploreOptions::new(),
            2,
        );
        assert_eq!(report.failure_count(), 2);
        let unknown = report.circuit("nonexistent").unwrap();
        assert!(unknown.failures[0].1.contains("unknown circuit"));
        let dealer = report.circuit("dealer").unwrap();
        assert_eq!(dealer.failures.len(), 1, "budget 1 is below dealer's critical path");
        assert_eq!(dealer.failures[0].0, 1);
        assert_eq!(dealer.points.len(), 1, "budget 6 still succeeds");
    }

    #[test]
    fn reports_are_identical_across_thread_counts() {
        let engine = Engine::new();
        let requests: Vec<ExploreRequest> =
            ["dealer", "gcd", "vender", "abs_diff"].map(ExploreRequest::new).to_vec();
        for voltage in [
            VoltagePolicy::Global(DelayScaling::Linear),
            VoltagePolicy::PerOp(VoltagePreset::FiveLevel),
        ] {
            let options =
                full_range(DelayScaling::Linear).policy(BudgetPolicy::Pareto).voltage(voltage);
            let one = engine.explore(&requests, &options, 1);
            let four = engine.explore(&requests, &options, 4);
            let eight = engine.explore(&requests, &options, 8);
            assert_eq!(one, four);
            assert_eq!(one.to_json(), four.to_json());
            assert_eq!(one.to_json(), eight.to_json());
            assert_eq!(one.to_csv(), eight.to_csv());
        }
    }

    #[test]
    fn mark_front_ranks_with_total_cmp() {
        let point = |budget, energy: f64, area: f64| ExplorePoint {
            budget,
            schedule_steps: budget,
            pm_muxes: 0,
            shutdown_reduction: 0.0,
            slowdown_reduction: 0.0,
            combined_reduction: -energy,
            energy,
            area,
            on_front: false,
        };
        // Exact energy/area ties at a higher budget are dominated; a worse
        // energy survives when its area strictly improves; NaN energy ranks
        // above every finite value under total_cmp so it is dominated by
        // any cheaper finite point with no worse area — all
        // deterministically, which is what byte-identical reruns need.
        let mut points = vec![
            point(2, 10.0, 50.0),
            point(3, 10.0, 50.0),
            point(4, 12.0, 40.0),
            point(5, f64::NAN, 50.0),
            point(6, 5.0, 60.0),
        ];
        mark_front(&mut points);
        assert_eq!(
            points.iter().map(|p| p.on_front).collect::<Vec<_>>(),
            vec![true, false, true, false, true]
        );
        // Identical coordinates at the *same* budget do not eliminate each
        // other (neither strictly improves), keeping mark_front symmetric.
        let mut twins = vec![point(2, 1.0, 1.0), point(2, 1.0, 1.0)];
        mark_front(&mut twins);
        assert!(twins.iter().all(|p| p.on_front));
    }

    #[test]
    fn labels_roundtrip() {
        for policy in BudgetPolicy::ALL {
            assert_eq!(BudgetPolicy::parse(policy.label()), Some(policy));
        }
        assert_eq!(BudgetPolicy::parse("adaptive"), None);
        assert_eq!(BudgetCeiling::Absolute(3).resolve(5), 5, "never below the critical path");
        assert_eq!(BudgetCeiling::Absolute(9).resolve(5), 9);
        assert_eq!(BudgetCeiling::CriticalPathPlus(4).resolve(5), 9);
    }

    #[test]
    fn json_and_csv_are_stable_and_complete() {
        let engine = Engine::new();
        let report = engine.explore(
            &[ExploreRequest::new("abs_diff"), ExploreRequest::new("nope")],
            &full_range(DelayScaling::Quadratic),
            2,
        );
        let json = report.to_json();
        assert_eq!(json, report.to_json(), "emission is deterministic");
        assert!(json.contains("\"policy\": \"full-range\""));
        assert!(json.contains("\"voltage\": \"global-quadratic\""));
        assert!(json.contains("\"energy\": "));
        assert!(json.contains("\"area\": "));
        assert!(json.contains("\"on_front\": true"));
        assert!(json.contains("unknown circuit"));
        let csv = report.to_csv();
        let header = csv.lines().next().unwrap();
        assert!(header.starts_with("circuit,critical_path,budget"));
        assert!(header.contains(",energy,area,on_front,"));
        assert_eq!(csv.lines().count(), 1 + 5 + 1, "header + 5 points + 1 failure row");
        let text = report.render();
        assert!(text.contains("abs_diff (critical path 2):"));
        assert!(text.contains("Comb(%)"));
        assert!(text.contains("Energy"));
    }

    #[test]
    fn per_op_policies_explore_and_partition_area() {
        let engine = Engine::new();
        let global =
            engine.explore(&[ExploreRequest::new("dealer")], &full_range(DelayScaling::None), 1);
        let per_op = engine.explore(
            &[ExploreRequest::new("dealer")],
            &ExploreOptions::new()
                .policy(BudgetPolicy::FullRange)
                .ceiling(BudgetCeiling::CriticalPathPlus(4))
                .voltage(VoltagePolicy::PerOp(VoltagePreset::ThreeLevel)),
            1,
        );
        let g = global.circuit("dealer").unwrap();
        let p = per_op.circuit("dealer").unwrap();
        assert_eq!(per_op.voltage, VoltagePolicy::PerOp(VoltagePreset::ThreeLevel));
        assert!(p.failures.is_empty(), "{:?}", p.failures);
        assert_eq!(g.points.len(), p.points.len());
        let mut area_moved = false;
        for (a, b) in g.points.iter().zip(&p.points) {
            assert_eq!(a.budget, b.budget);
            // Per-op levels only ever lower the energy relative to the
            // shutdown-only model.
            assert!(b.energy.total_cmp(&a.energy).is_le(), "budget {}", a.budget);
            // Voltage partitioning never removes units, but splitting a
            // shared unit also deletes its steering multiplexors, so the
            // *total* area can move either way — only require that it is a
            // real, finite figure and that the partition bites somewhere.
            assert!(b.area.is_finite() && b.area > 0.0, "budget {}", a.budget);
            area_moved |= b.area.to_bits() != a.area.to_bits();
        }
        assert!(area_moved, "voltage partitioning should change the datapath somewhere");
        // With real slack the levels actually bite.
        let widest = p.points.last().unwrap();
        assert!(widest.slowdown_reduction > 0.0, "slack should buy slowdown savings");
    }
}
