//! A concurrent compute-once memo cache.
//!
//! Scenarios that share a pipeline prefix — same circuit, same effective
//! latency, same scheduler, same reordering setting — produce the *same*
//! CDFG build and power-managed schedule; only the cheap savings evaluation
//! differs.  [`MemoCache`] computes each such prefix exactly once, even
//! under contention: every key owns a [`OnceLock`] slot, so two workers
//! racing on the same key block on the slot rather than computing twice,
//! while distinct keys proceed in parallel.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Hit/miss counters of a [`MemoCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from an already computed slot.
    pub hits: u64,
    /// Lookups that had to run the compute closure.
    pub misses: u64,
    /// Number of distinct keys currently cached.
    pub entries: usize,
}

impl CacheStats {
    /// Total number of lookups.
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hits as a fraction of lookups, in `0.0..=1.0` (`0.0` when idle).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups() == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups() as f64
        }
    }

    /// The delta since `baseline` — the counters attributable to whatever
    /// ran between the two snapshots.  `hits`/`misses` subtract
    /// (saturating, so a swapped argument order degrades to zeros rather
    /// than wrapping); `entries` stays absolute, since entries persist
    /// across jobs by design.
    pub fn since(self, baseline: CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(baseline.hits),
            misses: self.misses.saturating_sub(baseline.misses),
            entries: self.entries,
        }
    }
}

/// A thread-safe map from keys to lazily computed, shared values.
#[derive(Debug, Default)]
pub struct MemoCache<K, V> {
    slots: Mutex<HashMap<K, Arc<OnceLock<V>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> MemoCache<K, V> {
    /// An empty cache.
    pub fn new() -> Self {
        MemoCache {
            slots: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the cached value for `key`, running `compute` (once, globally)
    /// if it is not present yet.  Concurrent callers with the same key block
    /// until the first computation finishes; callers with different keys do
    /// not contend beyond the map lookup.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> V {
        let slot = {
            let mut slots = self.slots.lock().expect("cache lock");
            Arc::clone(slots.entry(key).or_insert_with(|| Arc::new(OnceLock::new())))
        };
        let mut computed = false;
        let value = slot.get_or_init(|| {
            computed = true;
            compute()
        });
        if computed {
            self.misses.fetch_add(1, Ordering::Relaxed);
        } else {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        value.clone()
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.slots.lock().expect("cache lock").len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn computes_each_key_once() {
        let cache: MemoCache<u32, u32> = MemoCache::new();
        let runs = AtomicUsize::new(0);
        for _ in 0..5 {
            let v = cache.get_or_compute(7, || {
                runs.fetch_add(1, Ordering::SeqCst);
                42
            });
            assert_eq!(v, 42);
        }
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 4);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.lookups(), 5);
    }

    #[test]
    fn distinct_keys_compute_independently() {
        let cache: MemoCache<&'static str, usize> = MemoCache::new();
        assert_eq!(cache.get_or_compute("a", || 1), 1);
        assert_eq!(cache.get_or_compute("b", || 2), 2);
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn since_isolates_one_jobs_counters() {
        let cache: MemoCache<u32, u32> = MemoCache::new();
        cache.get_or_compute(1, || 10);
        cache.get_or_compute(1, || 10);
        let baseline = cache.stats();
        cache.get_or_compute(1, || 10);
        cache.get_or_compute(2, || 20);
        let delta = cache.stats().since(baseline);
        assert_eq!(delta, CacheStats { hits: 1, misses: 1, entries: 2 });
        assert_eq!(delta.hit_rate(), 0.5);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
        // Swapped arguments saturate instead of wrapping.
        assert_eq!(baseline.since(cache.stats()).hits, 0);
    }

    #[test]
    fn concurrent_same_key_runs_compute_once() {
        let cache: MemoCache<u8, u64> = MemoCache::new();
        let runs = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    cache.get_or_compute(1, || {
                        runs.fetch_add(1, Ordering::SeqCst);
                        std::thread::sleep(std::time::Duration::from_millis(5));
                        99
                    })
                });
            }
        });
        assert_eq!(runs.load(Ordering::SeqCst), 1);
        assert_eq!(cache.stats().lookups(), 8);
    }
}
