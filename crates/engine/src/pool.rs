//! A hand-rolled work-stealing thread pool over `std::thread`.
//!
//! The build environment vendors no external crates, so this is a minimal
//! scoped fork-join pool: jobs are dealt round-robin onto one deque per
//! worker; a worker pops from the *front* of its own deque and, when empty,
//! steals from the *back* of the others, so large scenarios queued on one
//! worker get redistributed instead of serialising the sweep.  Because jobs
//! never spawn further jobs, a worker may exit as soon as every deque is
//! empty.
//!
//! Results are written into a slot indexed by the job's position in the
//! input, so the output order equals the input order no matter which worker
//! ran what — the property the sweep determinism tests pin down.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::thread;

/// Applies `f` to every item on `threads` worker threads and returns the
/// results in input order.
///
/// `threads` is clamped to `1..=items.len()`; with one thread (or one item)
/// everything runs on the calling thread, which keeps single-threaded runs
/// free of synchronisation entirely.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let jobs = items.len();
    if jobs == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(jobs);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }

    // Deal jobs round-robin onto one deque per worker.
    let queues: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (index, item) in items.into_iter().enumerate() {
        queues[index % threads].lock().expect("queue lock").push_back((index, item));
    }
    let results: Vec<Mutex<Option<R>>> = (0..jobs).map(|_| Mutex::new(None)).collect();

    thread::scope(|scope| {
        for worker in 0..threads {
            let queues = &queues;
            let results = &results;
            scope.spawn(move || {
                while let Some((index, item)) = next_job(queues, worker) {
                    let result = f(item);
                    *results[index].lock().expect("result lock") = Some(result);
                }
            });
        }
    });

    results
        .into_iter()
        .map(|slot| slot.into_inner().expect("result lock").expect("every job ran"))
        .collect()
}

/// Pops the next job: own deque front first, then steal from the back of
/// the other deques. `None` means every deque is empty, and since jobs never
/// enqueue new jobs the worker can exit.
fn next_job<T>(queues: &[Mutex<VecDeque<(usize, T)>>], worker: usize) -> Option<(usize, T)> {
    if let Some(job) = queues[worker].lock().expect("queue lock").pop_front() {
        return Some(job);
    }
    let n = queues.len();
    for offset in 1..n {
        let victim = (worker + offset) % n;
        if let Some(job) = queues[victim].lock().expect("queue lock").pop_back() {
            return Some(job);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 3, 8, 200] {
            let out = parallel_map(items.clone(), threads, &|x| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn runs_every_job_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map((0..57).collect::<Vec<u32>>(), 4, &|x| {
            counter.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out.len(), 57);
        assert_eq!(counter.load(Ordering::SeqCst), 57);
    }

    #[test]
    fn uneven_job_costs_are_stolen() {
        // One expensive job on worker 0's deque plus many cheap ones: the
        // cheap ones must still all complete (stolen by idle workers).
        let out = parallel_map((0..32).collect::<Vec<u64>>(), 4, &|x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_returns_empty() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), 8, &|x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let out = parallel_map(vec![1, 2, 3], 0, &|x| x);
        assert_eq!(out, vec![1, 2, 3]);
    }
}
