//! A hand-rolled work-stealing thread pool over `std::thread`.
//!
//! The build environment vendors no external crates, so this is a minimal
//! scoped fork-join pool: jobs are dealt round-robin onto one deque per
//! worker; a worker pops from the *front* of its own deque and, when empty,
//! steals from the *back* of the others, so large scenarios queued on one
//! worker get redistributed instead of serialising the sweep.  Because jobs
//! never spawn further jobs, a worker may exit as soon as every deque is
//! empty.
//!
//! Each worker accumulates `(index, result)` pairs in a thread-local buffer
//! — the write path takes no lock per item — and after the workers join,
//! the buffers drain into a single pre-sized result vector indexed by each
//! job's position in the input.  The indices are disjoint by construction
//! (every job is popped exactly once), so the output order equals the input
//! order no matter which worker ran what — the property the sweep
//! determinism tests pin down.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::thread;

/// Cooperative controls threaded through [`parallel_map_controlled`]: an
/// optional cancellation flag checked before each item and an optional
/// progress callback invoked after each completed item.
///
/// Both hooks are observed at *item boundaries* only — an in-flight item
/// always finishes — which is what lets callers cancel a sweep without ever
/// tearing a scenario in half.
#[derive(Clone, Copy, Default)]
pub struct MapControl<'a> {
    /// Checked before a worker picks up its next item; once set, no further
    /// items start (in-flight items still complete).
    pub cancel: Option<&'a AtomicBool>,
    /// Called after each completed item with `(completed, total)`.  The
    /// callback runs on whichever worker finished the item, so it must be
    /// `Sync`; completed counts are unique and cover `1..=total` exactly
    /// once on an uncancelled run.
    pub progress: Option<&'a (dyn Fn(usize, usize) + Sync)>,
}

impl MapControl<'_> {
    fn cancelled(&self) -> bool {
        self.cancel.is_some_and(|flag| flag.load(Ordering::Relaxed))
    }

    fn tick(&self, completed: usize, total: usize) {
        if let Some(progress) = self.progress {
            progress(completed, total);
        }
    }
}

/// Applies `f` to every item on `threads` worker threads and returns the
/// results in input order.
///
/// `threads` is clamped to `1..=items.len()`; with one thread (or one item)
/// everything runs on the calling thread, which keeps single-threaded runs
/// free of synchronisation entirely.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_controlled(items, threads, f, MapControl::default())
        .expect("a map without a cancel flag cannot be cancelled")
}

/// [`parallel_map`] with cooperative cancellation and progress reporting.
///
/// Returns `None` when the control's cancel flag stopped the map before
/// every item ran — the partial results are discarded, never reordered or
/// padded.  A flag set after the last item started has no effect: the map
/// still returns `Some` with the complete, input-ordered results.
pub fn parallel_map_controlled<T, R, F>(
    items: Vec<T>,
    threads: usize,
    f: &F,
    ctl: MapControl<'_>,
) -> Option<Vec<R>>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let jobs = items.len();
    if jobs == 0 {
        return Some(Vec::new());
    }
    let threads = threads.max(1).min(jobs);
    if threads == 1 {
        if ctl.cancel.is_none() && ctl.progress.is_none() {
            return Some(items.into_iter().map(f).collect());
        }
        let mut results = Vec::with_capacity(jobs);
        for (done, item) in items.into_iter().enumerate() {
            if ctl.cancelled() {
                return None;
            }
            results.push(f(item));
            ctl.tick(done + 1, jobs);
        }
        return Some(results);
    }

    // Deal jobs round-robin onto one deque per worker.
    let queues: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (index, item) in items.into_iter().enumerate() {
        queues[index % threads].lock().expect("queue lock").push_back((index, item));
    }

    // Single pre-sized result buffer, filled at disjoint indices after the
    // workers hand back their locally buffered results.
    let mut results: Vec<Option<R>> = Vec::with_capacity(jobs);
    results.resize_with(jobs, || None);
    let completed = AtomicUsize::new(0);

    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let queues = &queues;
                let completed = &completed;
                let ctl = &ctl;
                scope.spawn(move || {
                    // Lock-free write path: results buffer locally until the
                    // worker runs out of jobs.
                    let mut local: Vec<(usize, R)> = Vec::new();
                    while !ctl.cancelled() {
                        let Some((index, item)) = next_job(queues, worker) else {
                            break;
                        };
                        local.push((index, f(item)));
                        ctl.tick(completed.fetch_add(1, Ordering::Relaxed) + 1, jobs);
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (index, result) in handle.join().expect("worker thread panicked") {
                debug_assert!(results[index].is_none(), "job {index} ran twice");
                results[index] = Some(result);
            }
        }
    });

    // A cancelled map leaves holes; the hole check (not the flag) decides,
    // so a flag raised after the final item started still yields a full,
    // valid result set.
    if results.iter().any(Option::is_none) {
        return None;
    }
    Some(results.into_iter().map(|slot| slot.expect("every job ran")).collect())
}

/// Pops the next job: own deque front first, then steal from the back of
/// the other deques. `None` means every deque is empty, and since jobs never
/// enqueue new jobs the worker can exit.
fn next_job<T>(queues: &[Mutex<VecDeque<(usize, T)>>], worker: usize) -> Option<(usize, T)> {
    if let Some(job) = queues[worker].lock().expect("queue lock").pop_front() {
        return Some(job);
    }
    let n = queues.len();
    for offset in 1..n {
        let victim = (worker + offset) % n;
        if let Some(job) = queues[victim].lock().expect("queue lock").pop_back() {
            return Some(job);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 3, 8, 200] {
            let out = parallel_map(items.clone(), threads, &|x| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn runs_every_job_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map((0..57).collect::<Vec<u32>>(), 4, &|x| {
            counter.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out.len(), 57);
        assert_eq!(counter.load(Ordering::SeqCst), 57);
    }

    #[test]
    fn uneven_job_costs_are_stolen() {
        // One expensive job on worker 0's deque plus many cheap ones: the
        // cheap ones must still all complete (stolen by idle workers).
        let out = parallel_map((0..32).collect::<Vec<u64>>(), 4, &|x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_returns_empty() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), 8, &|x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let out = parallel_map(vec![1, 2, 3], 0, &|x| x);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn progress_ticks_cover_every_item_exactly_once() {
        for threads in [1, 4] {
            let seen = Mutex::new(Vec::new());
            let tick = |done: usize, total: usize| {
                assert_eq!(total, 20);
                seen.lock().unwrap().push(done);
            };
            let ctl = MapControl { cancel: None, progress: Some(&tick) };
            let out = parallel_map_controlled((0..20).collect::<Vec<u32>>(), threads, &|x| x, ctl)
                .expect("not cancelled");
            assert_eq!(out.len(), 20, "threads={threads}");
            let mut ticks = seen.into_inner().unwrap();
            ticks.sort_unstable();
            assert_eq!(ticks, (1..=20).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn pre_set_cancel_flag_runs_nothing() {
        let cancel = AtomicBool::new(true);
        for threads in [1, 4] {
            let counter = AtomicUsize::new(0);
            let ctl = MapControl { cancel: Some(&cancel), progress: None };
            let out = parallel_map_controlled(
                (0..50).collect::<Vec<u32>>(),
                threads,
                &|x| {
                    counter.fetch_add(1, Ordering::SeqCst);
                    x
                },
                ctl,
            );
            assert!(out.is_none(), "threads={threads}");
            assert_eq!(counter.load(Ordering::SeqCst), 0, "threads={threads}");
        }
    }

    #[test]
    fn cancellation_stops_at_an_item_boundary() {
        // Cancel from inside the third progress tick: no item is ever torn,
        // and strictly fewer than all items run.
        let cancel = AtomicBool::new(false);
        let started = AtomicUsize::new(0);
        let finished = AtomicUsize::new(0);
        let tick = |done: usize, _total: usize| {
            if done >= 3 {
                cancel.store(true, Ordering::SeqCst);
            }
        };
        let ctl = MapControl { cancel: Some(&cancel), progress: Some(&tick) };
        let out = parallel_map_controlled(
            (0..100).collect::<Vec<u32>>(),
            2,
            &|x| {
                started.fetch_add(1, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(1));
                finished.fetch_add(1, Ordering::SeqCst);
                x
            },
            ctl,
        );
        assert!(out.is_none());
        let (started, finished) = (started.load(Ordering::SeqCst), finished.load(Ordering::SeqCst));
        assert_eq!(started, finished, "in-flight items always complete");
        assert!(finished < 100, "cancellation skipped the tail");
    }

    #[test]
    fn cancel_after_completion_still_returns_full_results() {
        let cancel = AtomicBool::new(false);
        let tick = |done: usize, total: usize| {
            if done == total {
                cancel.store(true, Ordering::SeqCst);
            }
        };
        let ctl = MapControl { cancel: Some(&cancel), progress: Some(&tick) };
        let out = parallel_map_controlled((0..8).collect::<Vec<u32>>(), 1, &|x| x * 2, ctl);
        assert_eq!(out, Some((0..8).map(|x| x * 2).collect()));
    }

    #[test]
    fn non_clone_results_are_moved_through_the_buffer() {
        // The result type is deliberately not Clone/Copy: the merge path
        // must move results out of the workers' local buffers.
        let out = parallel_map((0..16).collect::<Vec<u32>>(), 4, &|x| Box::new(x * 3));
        assert_eq!(
            out.iter().map(|b| **b).collect::<Vec<_>>(),
            (0..16).map(|x| x * 3).collect::<Vec<_>>()
        );
    }
}
