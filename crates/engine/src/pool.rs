//! A hand-rolled work-stealing thread pool over `std::thread`.
//!
//! The build environment vendors no external crates, so this is a minimal
//! scoped fork-join pool: jobs are dealt round-robin onto one deque per
//! worker; a worker pops from the *front* of its own deque and, when empty,
//! steals from the *back* of the others, so large scenarios queued on one
//! worker get redistributed instead of serialising the sweep.  Because jobs
//! never spawn further jobs, a worker may exit as soon as every deque is
//! empty.
//!
//! Each worker accumulates `(index, result)` pairs in a thread-local buffer
//! — the write path takes no lock per item — and after the workers join,
//! the buffers drain into a single pre-sized result vector indexed by each
//! job's position in the input.  The indices are disjoint by construction
//! (every job is popped exactly once), so the output order equals the input
//! order no matter which worker ran what — the property the sweep
//! determinism tests pin down.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::thread;

/// Applies `f` to every item on `threads` worker threads and returns the
/// results in input order.
///
/// `threads` is clamped to `1..=items.len()`; with one thread (or one item)
/// everything runs on the calling thread, which keeps single-threaded runs
/// free of synchronisation entirely.
pub fn parallel_map<T, R, F>(items: Vec<T>, threads: usize, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let jobs = items.len();
    if jobs == 0 {
        return Vec::new();
    }
    let threads = threads.max(1).min(jobs);
    if threads == 1 {
        return items.into_iter().map(f).collect();
    }

    // Deal jobs round-robin onto one deque per worker.
    let queues: Vec<Mutex<VecDeque<(usize, T)>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (index, item) in items.into_iter().enumerate() {
        queues[index % threads].lock().expect("queue lock").push_back((index, item));
    }

    // Single pre-sized result buffer, filled at disjoint indices after the
    // workers hand back their locally buffered results.
    let mut results: Vec<Option<R>> = Vec::with_capacity(jobs);
    results.resize_with(jobs, || None);

    thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let queues = &queues;
                scope.spawn(move || {
                    // Lock-free write path: results buffer locally until the
                    // worker runs out of jobs.
                    let mut local: Vec<(usize, R)> = Vec::new();
                    while let Some((index, item)) = next_job(queues, worker) {
                        local.push((index, f(item)));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            for (index, result) in handle.join().expect("worker thread panicked") {
                debug_assert!(results[index].is_none(), "job {index} ran twice");
                results[index] = Some(result);
            }
        }
    });

    results.into_iter().map(|slot| slot.expect("every job ran")).collect()
}

/// Pops the next job: own deque front first, then steal from the back of
/// the other deques. `None` means every deque is empty, and since jobs never
/// enqueue new jobs the worker can exit.
fn next_job<T>(queues: &[Mutex<VecDeque<(usize, T)>>], worker: usize) -> Option<(usize, T)> {
    if let Some(job) = queues[worker].lock().expect("queue lock").pop_front() {
        return Some(job);
    }
    let n = queues.len();
    for offset in 1..n {
        let victim = (worker + offset) % n;
        if let Some(job) = queues[victim].lock().expect("queue lock").pop_back() {
            return Some(job);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_input_order_for_any_thread_count() {
        let items: Vec<u64> = (0..100).collect();
        for threads in [1, 2, 3, 8, 200] {
            let out = parallel_map(items.clone(), threads, &|x| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn runs_every_job_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map((0..57).collect::<Vec<u32>>(), 4, &|x| {
            counter.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out.len(), 57);
        assert_eq!(counter.load(Ordering::SeqCst), 57);
    }

    #[test]
    fn uneven_job_costs_are_stolen() {
        // One expensive job on worker 0's deque plus many cheap ones: the
        // cheap ones must still all complete (stolen by idle workers).
        let out = parallel_map((0..32).collect::<Vec<u64>>(), 4, &|x| {
            if x == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            x + 1
        });
        assert_eq!(out, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_returns_empty() {
        let out: Vec<u32> = parallel_map(Vec::<u32>::new(), 8, &|x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        let out = parallel_map(vec![1, 2, 3], 0, &|x| x);
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn non_clone_results_are_moved_through_the_buffer() {
        // The result type is deliberately not Clone/Copy: the merge path
        // must move results out of the workers' local buffers.
        let out = parallel_map((0..16).collect::<Vec<u32>>(), 4, &|x| Box::new(x * 3));
        assert_eq!(
            out.iter().map(|b| **b).collect::<Vec<_>>(),
            (0..16).map(|x| x * 3).collect::<Vec<_>>()
        );
    }
}
