//! A parallel scenario-sweep engine for the whole power-management
//! pipeline.
//!
//! The paper's results are single points — one circuit, one latency bound,
//! one branch-probability model.  Its central claim (scheduling the
//! controlling operations early buys shut-down slack) is really a family of
//! trade-off curves, and this crate turns the end-to-end flow (benchmark →
//! CDFG → schedule → bind → RTL → power estimate) into a batch service that
//! maps out those curves:
//!
//! * [`Scenario`] — one point of the matrix
//!   {circuit × latency bound × scheduler × pipeline depth ×
//!   mux-reordering × branch-probability model},
//! * [`SweepPlan`] — a builder that expands a matrix into a deduplicated,
//!   canonically ordered work list,
//! * [`Engine`] — executes a plan on a hand-rolled `std::thread`
//!   work-stealing pool ([`pool`]) with deterministic result ordering,
//! * [`SweepReport`] — typed results with JSON/CSV emitters, per-circuit
//!   min/median/max savings and a Pareto front over latency vs. predicted
//!   power reduction.
//!
//! # Cache keying
//!
//! The expensive part of a scenario is its *pipeline prefix*: building the
//! CDFG and running the power-management scheduling pass.  That prefix is
//! fully determined by `(circuit, effective latency, scheduler, reorder)` —
//! the branch-probability model only affects the (cheap) expected-execution
//! evaluation, and scenarios with different `(latency, pipeline depth)`
//! factorings of the same effective latency share one schedule.  The engine
//! therefore memoises prefixes in a compute-once [`cache::MemoCache`]; a
//! sweep of N branch models over one circuit/latency runs the scheduler
//! once, and the memoisation is exact, so cached results are bit-identical
//! to cold ones (a property the determinism tests pin down).
//!
//! # Quick start
//!
//! ```
//! use engine::{Engine, SweepPlan};
//!
//! # fn main() -> Result<(), engine::EngineError> {
//! let plan = SweepPlan::builder()
//!     .circuits(["dealer", "gcd"])
//!     .latencies([5, 6])
//!     .reorder([false, true])
//!     .build()?;
//! let engine = Engine::new();
//! let report = engine.run(&plan, 2);
//! assert_eq!(report.records.len(), 8);
//! assert!(report.failure_count() == 0);
//! println!("{}", report.render());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod error;
pub mod online;
pub mod pareto;
pub mod plan;
pub mod pool;
pub mod report;
pub mod scenario;

use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::AtomicBool;
use std::sync::{Arc, Mutex};

use cdfg::{Cdfg, OpClass};
use pmsched::{
    pipeline_register_estimate, power_manage, OpWeights, PowerManagementOptions,
    PowerManagementResult, SelectProbabilities,
};
use power::{gate_level_with_result, GateLevelOptions};
use sched::{hyper, ResourceConstraint};

pub use crate::cache::CacheStats;
pub use crate::error::EngineError;
pub use crate::online::{
    run_stream, run_stream_controlled, run_stream_verified, run_streams, EventMetrics, EventRecord,
    OnlineReport, OnlineSummary, SessionState, VerifiedOutcome,
};
pub use crate::pareto::{
    BudgetCeiling, BudgetPolicy, CircuitExploration, DelayScaling, ExploreOptions, ExplorePoint,
    ExploreRequest, ParetoReport, VoltagePolicy, VoltagePreset,
};
pub use crate::plan::{GateLevelSpec, SweepPlan, SweepPlanBuilder};
pub use crate::report::{
    CircuitSummary, GateMetrics, ParetoPoint, ScenarioMetrics, SweepRecord, SweepReport,
};
pub use crate::scenario::{BranchModel, Scenario, SchedulerKind};

/// Permutation bound for the reordering search (matches the exhaustive
/// limit the Section IV-A ablation uses).
const REORDER_EXHAUSTIVE_LIMIT: usize = 5;

/// Progress of a running sweep or exploration: work items completed out of
/// the total the (expanded) plan contains.
///
/// For [`Engine::run_with_progress`] an item is one scenario (failed
/// scenarios count too — they are part of the plan); for
/// [`Engine::explore_controlled`] an item is one circuit walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Progress {
    /// Items finished so far.
    pub completed: usize,
    /// Total items in the expanded plan.
    pub total: usize,
}

/// Cache key of a pipeline prefix; see the crate-level documentation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct PrefixKey {
    circuit: String,
    effective_latency: u32,
    scheduler: SchedulerKind,
    reorder: bool,
}

/// Cached prefix value: the scheduling result, or the error message it
/// failed with (negative caching — an infeasible latency stays infeasible).
type PrefixValue = Result<Arc<PowerManagementResult>, String>;

/// The scenario-sweep engine: a circuit registry plus the memo cache.
///
/// One engine may run any number of plans; the cache is shared across runs,
/// so repeated or overlapping sweeps get warmer and warmer.
#[derive(Debug)]
pub struct Engine {
    circuits: BTreeMap<String, Arc<Cdfg>>,
    cache: cache::MemoCache<PrefixKey, PrefixValue>,
}

impl Engine {
    /// An engine preloaded with every benchmark circuit of the paper
    /// (Table I: `dealer`, `gcd`, `vender`, `cordic`) plus the `abs_diff`
    /// walkthrough of Figures 1 and 2.
    pub fn new() -> Self {
        let mut engine = Engine { circuits: BTreeMap::new(), cache: cache::MemoCache::new() };
        engine.register_benchmarks(circuits::all_benchmarks());
        engine.register_circuit(circuits::abs_diff());
        engine
    }

    /// Registers an additional circuit under its CDFG name, replacing any
    /// previous circuit with that name.
    pub fn register_circuit(&mut self, cdfg: Cdfg) {
        self.circuits.insert(cdfg.name().to_owned(), Arc::new(cdfg));
    }

    /// Registers every circuit of a batch of benchmarks under its benchmark
    /// name — the entry point for generated workloads (`crates/gen`), whose
    /// names embed the generator seed and parameters and thereby key the
    /// prefix cache.
    pub fn register_benchmarks<I>(&mut self, benches: I)
    where
        I: IntoIterator<Item = circuits::Benchmark>,
    {
        for bench in benches {
            debug_assert_eq!(bench.name, bench.cdfg.name(), "benchmark/CDFG name mismatch");
            self.circuits.insert(bench.name, Arc::new(bench.cdfg));
        }
    }

    /// The registered circuit names, sorted.
    pub fn circuit_names(&self) -> Vec<&str> {
        self.circuits.keys().map(String::as_str).collect()
    }

    /// Looks up a registered circuit.
    pub fn circuit(&self, name: &str) -> Option<&Arc<Cdfg>> {
        self.circuits.get(name)
    }

    /// Executes every scenario of `plan` on `threads` worker threads
    /// (0 = one per available CPU) and returns the aggregated report.
    ///
    /// Scenario failures (unknown circuit, infeasible latency, simulation
    /// errors) are recorded per scenario, never panicking or aborting the
    /// sweep, and the report is identical for every thread count.
    pub fn run(&self, plan: &SweepPlan, threads: usize) -> SweepReport {
        self.run_controlled(plan, threads, None, None)
            .expect("a run without a cancel flag cannot be cancelled")
    }

    /// [`Engine::run`] with a progress callback: `progress` is invoked once
    /// per completed scenario with monotonically increasing completed
    /// counts covering `1..=total` (failed scenarios count — they are part
    /// of the plan).  The report is identical to a plain [`Engine::run`].
    pub fn run_with_progress<F>(
        &self,
        plan: &SweepPlan,
        threads: usize,
        progress: &mut F,
    ) -> SweepReport
    where
        F: FnMut(Progress) + Send,
    {
        // Workers tick concurrently; the mutex serialises them into the
        // caller's FnMut.
        let progress = Mutex::new(progress);
        let forward = |p: Progress| (progress.lock().expect("progress lock"))(p);
        self.run_controlled(plan, threads, None, Some(&forward))
            .expect("a run without a cancel flag cannot be cancelled")
    }

    /// [`Engine::run`] with cooperative cancellation and progress hooks —
    /// the entry point long-running services drive.
    ///
    /// `cancel` is checked at scenario boundaries: once set, no further
    /// scenario starts (in-flight scenarios complete) and the run returns
    /// `None`, discarding the partial results.  An uncancelled run returns
    /// `Some(report)` bit-identical to a plain [`Engine::run`] — the hooks
    /// observe the sweep, they never alter it.
    pub fn run_controlled(
        &self,
        plan: &SweepPlan,
        threads: usize,
        cancel: Option<&AtomicBool>,
        progress: Option<&(dyn Fn(Progress) + Sync)>,
    ) -> Option<SweepReport> {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map_or(1, usize::from)
        } else {
            threads
        };
        let gate = plan.gate_level();
        let forward;
        let ctl = pool::MapControl {
            cancel,
            progress: match progress {
                Some(tick) => {
                    forward =
                        move |completed: usize, total: usize| tick(Progress { completed, total });
                    Some(&forward as &(dyn Fn(usize, usize) + Sync))
                }
                None => None,
            },
        };
        let records = pool::parallel_map_controlled(
            self.expand_scenarios(plan),
            threads,
            &|scenario| self.run_scenario(scenario, gate),
            ctl,
        )?;
        let report = SweepReport::from_records(records);
        Some(match plan.budget_policy() {
            BudgetPolicy::Fixed | BudgetPolicy::FullRange => report,
            BudgetPolicy::Pareto => report.retain_pareto_front(),
        })
    }

    /// Expands a plan's scenarios according to its budget policy: under the
    /// range policies every scenario's latency bound becomes the *ceiling*
    /// of a walk that starts at the cheapest feasible bound.  Feasibility is
    /// a property of the *effective* latency (`latency × pipeline_depth`),
    /// so the walk floor is `ceil(critical path / pipeline_depth)`.
    /// Scenarios whose circuit is unknown or whose bound is below that
    /// floor pass through unchanged so their failure surfaces in the
    /// report.
    fn expand_scenarios(&self, plan: &SweepPlan) -> Vec<Scenario> {
        if plan.budget_policy() == BudgetPolicy::Fixed {
            return plan.scenarios().to_vec();
        }
        let mut expanded: BTreeSet<Scenario> = BTreeSet::new();
        for scenario in plan.scenarios() {
            let floor = self.circuits.get(&scenario.circuit).map(|cdfg| {
                cdfg.critical_path_length().div_ceil(scenario.pipeline_depth.max(1)).max(1)
            });
            match floor {
                Some(floor) if floor <= scenario.latency => {
                    for budget in floor..=scenario.latency {
                        let mut expanded_scenario = scenario.clone();
                        expanded_scenario.latency = budget;
                        expanded.insert(expanded_scenario);
                    }
                }
                _ => {
                    expanded.insert(scenario.clone());
                }
            }
        }
        expanded.into_iter().collect()
    }

    /// Hit/miss counters of the prefix cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    fn run_scenario(&self, scenario: Scenario, gate: Option<GateLevelSpec>) -> SweepRecord {
        let outcome = self.scenario_metrics(&scenario, gate);
        SweepRecord { scenario, outcome }
    }

    fn scenario_metrics(
        &self,
        scenario: &Scenario,
        gate: Option<GateLevelSpec>,
    ) -> Result<ScenarioMetrics, String> {
        let cdfg = self
            .circuits
            .get(&scenario.circuit)
            .ok_or_else(|| format!("unknown circuit `{}`", scenario.circuit))?;
        let result = self.prefix(cdfg, scenario)?;

        let probs = select_probabilities(&result, scenario.branch_model);
        let savings = result.savings_with(&probs, &OpWeights::paper_power());
        let expected = [
            savings.expected(OpClass::Mux),
            savings.expected(OpClass::Comp),
            savings.expected(OpClass::Add),
            savings.expected(OpClass::Sub),
            savings.expected(OpClass::Mul),
        ];
        let gate = match gate {
            None => None,
            Some(spec) => {
                let options = GateLevelOptions::new(scenario.effective_latency())
                    .samples(spec.samples)
                    .seed(spec.seed);
                let report = gate_level_with_result(cdfg, &result, &options)
                    .map_err(|e| format!("gate-level estimation failed: {e}"))?;
                Some(GateMetrics {
                    original_area: report.original_area,
                    managed_area: report.managed_area,
                    area_ratio: report.area_ratio,
                    original_power: report.original_power,
                    managed_power: report.managed_power,
                    power_reduction: report.power_reduction_percent,
                    samples: report.samples,
                })
            }
        };

        Ok(ScenarioMetrics {
            effective_latency: scenario.effective_latency(),
            schedule_steps: result.schedule().num_steps(),
            pm_muxes: result.managed_mux_count(),
            accepted_muxes: result.accepted_muxes().len(),
            control_edges: result.control_edge_count(),
            area_increase: result.area_increase(&OpWeights::paper_area()),
            expected,
            power_reduction: savings.reduction_percent,
            extra_registers: pipeline_register_estimate(
                &result,
                scenario.latency,
                scenario.pipeline_depth,
            ),
            gate,
        })
    }

    /// Computes (or fetches) the shared pipeline prefix of a scenario.
    fn prefix(
        &self,
        cdfg: &Arc<Cdfg>,
        scenario: &Scenario,
    ) -> Result<Arc<PowerManagementResult>, String> {
        let key = PrefixKey {
            circuit: scenario.circuit.clone(),
            effective_latency: scenario.effective_latency(),
            scheduler: scenario.scheduler,
            reorder: scenario.reorder,
        };
        let effective_latency = key.effective_latency;
        let scheduler = key.scheduler;
        let reorder = key.reorder;
        self.cache.get_or_compute(key, || {
            compute_prefix(cdfg, effective_latency, scheduler, reorder)
                .map(Arc::new)
                .map_err(|e| e.to_string())
        })
    }
}

impl Default for Engine {
    fn default() -> Self {
        Engine::new()
    }
}

/// Per-multiplexor select probabilities for a branch model: fair stays at
/// the default 0.5, a biased model sets every multiplexor to the same
/// probability of selecting its 1-input.
pub(crate) fn select_probabilities(
    result: &PowerManagementResult,
    model: BranchModel,
) -> SelectProbabilities {
    match model {
        BranchModel::Fair => SelectProbabilities::fair(),
        biased @ BranchModel::Biased { .. } => {
            let p = biased.p_select_one();
            let mut probs = SelectProbabilities::fair();
            for mux in result.cdfg().mux_nodes() {
                probs.set(mux, p);
            }
            probs
        }
    }
}

/// Runs the full power-management scheduling pass for one prefix.
fn compute_prefix(
    cdfg: &Cdfg,
    effective_latency: u32,
    scheduler: SchedulerKind,
    reorder: bool,
) -> Result<PowerManagementResult, pmsched::PowerManageError> {
    let options = match scheduler {
        SchedulerKind::ForceDirected => PowerManagementOptions::with_latency(effective_latency),
        SchedulerKind::List => {
            // Fix the allocation to what the resource-minimising scheduler
            // needs at this latency, then let list scheduling fill it.
            let minimum = hyper::minimum_resources(cdfg, effective_latency)?;
            PowerManagementOptions::with_resources(
                effective_latency,
                ResourceConstraint::Limited(minimum),
            )
        }
    };
    if reorder {
        pmsched::algorithm::power_manage_reordered(cdfg, &options, REORDER_EXHAUSTIVE_LIMIT)
    } else {
        power_manage(cdfg, &options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_registers_the_paper_circuits() {
        let engine = Engine::new();
        for name in ["dealer", "gcd", "vender", "cordic", "abs_diff"] {
            assert!(engine.circuit(name).is_some(), "{name} registered");
        }
        assert_eq!(engine.circuit_names().len(), 5);
    }

    #[test]
    fn run_matches_direct_power_manage() {
        let plan = SweepPlan::builder().case("dealer", 6).build().unwrap();
        let engine = Engine::new();
        let report = engine.run(&plan, 1);
        let metrics = report.records[0].metrics().expect("dealer@6 is feasible");

        let direct =
            power_manage(&circuits::dealer(), &PowerManagementOptions::with_latency(6)).unwrap();
        assert_eq!(metrics.pm_muxes, direct.managed_mux_count());
        assert_eq!(metrics.power_reduction, direct.savings().reduction_percent);
        assert_eq!(metrics.control_edges, direct.control_edge_count());
    }

    #[test]
    fn prefix_cache_is_shared_across_branch_models_and_factorings() {
        // 3 branch models × one case, plus a (latency 3, depth 2) scenario
        // sharing the effective latency of (latency 6, depth 1): one prefix.
        let plan = SweepPlan::builder()
            .case("dealer", 6)
            .branch_models([BranchModel::Fair, BranchModel::biased(250), BranchModel::biased(750)])
            .build()
            .unwrap();
        let engine = Engine::new();
        engine.run(&plan, 2);
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1, "one shared prefix");
        assert_eq!(stats.hits, 2);

        let pipelined =
            SweepPlan::builder().case("dealer", 3).pipeline_depths([2]).build().unwrap();
        engine.run(&pipelined, 1);
        let stats = engine.cache_stats();
        assert_eq!(stats.misses, 1, "latency 3 x depth 2 reuses the latency-6 prefix");
    }

    #[test]
    fn run_with_progress_ticks_once_per_scenario() {
        let plan = SweepPlan::builder()
            .circuits(["dealer", "gcd"])
            .latencies([5, 6])
            .reorder([false, true])
            .build()
            .unwrap();
        let engine = Engine::new();
        for threads in [1, 3] {
            let mut ticks = Vec::new();
            let report = engine.run_with_progress(&plan, threads, &mut |p: Progress| {
                ticks.push(p);
            });
            assert_eq!(report.records.len(), 8);
            assert_eq!(ticks.len(), 8, "one callback per scenario (threads={threads})");
            assert!(ticks.iter().all(|p| p.total == 8));
            let mut completed: Vec<usize> = ticks.iter().map(|p| p.completed).collect();
            completed.sort_unstable();
            assert_eq!(completed, (1..=8).collect::<Vec<_>>());
            // And the report matches the hook-free path exactly.
            assert_eq!(report.to_json(), engine.run(&plan, 1).to_json());
        }
    }

    #[test]
    fn progress_counts_failed_scenarios_too() {
        let plan = SweepPlan::builder().case("nonexistent", 4).case("dealer", 6).build().unwrap();
        let engine = Engine::new();
        let mut ticks = 0usize;
        let report = engine.run_with_progress(&plan, 1, &mut |_| ticks += 1);
        assert_eq!(report.failure_count(), 1);
        assert_eq!(ticks, 2);
    }

    #[test]
    fn cancelled_run_returns_none_and_a_clear_flag_changes_nothing() {
        use std::sync::atomic::Ordering;
        let plan =
            SweepPlan::builder().circuits(["dealer", "gcd"]).latencies([5, 6]).build().unwrap();
        let engine = Engine::new();
        let cancel = AtomicBool::new(true);
        assert!(engine.run_controlled(&plan, 2, Some(&cancel), None).is_none());
        cancel.store(false, Ordering::SeqCst);
        let controlled = engine.run_controlled(&plan, 2, Some(&cancel), None).unwrap();
        assert_eq!(controlled.to_json(), engine.run(&plan, 1).to_json());
    }

    #[test]
    fn cancelling_mid_run_stops_at_a_scenario_boundary() {
        use std::sync::atomic::Ordering;
        let plan = SweepPlan::builder()
            .circuits(["dealer", "gcd", "vender"])
            .latencies([5, 6, 7])
            .build()
            .unwrap();
        let engine = Engine::new();
        let cancel = AtomicBool::new(false);
        let seen = std::sync::atomic::AtomicUsize::new(0);
        let tick = |p: Progress| {
            seen.fetch_max(p.completed, Ordering::SeqCst);
            if p.completed >= 2 {
                cancel.store(true, Ordering::SeqCst);
            }
        };
        let out = engine.run_controlled(&plan, 1, Some(&cancel), Some(&tick));
        assert!(out.is_none(), "cancellation discards the partial run");
        let seen = seen.load(Ordering::SeqCst);
        assert!((2..9).contains(&seen), "stopped after the boundary tick, before the end: {seen}");
    }

    #[test]
    fn unknown_circuits_and_infeasible_latencies_become_record_errors() {
        let plan = SweepPlan::builder()
            .case("nonexistent", 4)
            .case("dealer", 1) // below dealer's critical path of 4
            .build()
            .unwrap();
        let report = Engine::new().run(&plan, 2);
        assert_eq!(report.failure_count(), 2);
        let unknown = report.record_for(&Scenario::new("nonexistent", 4)).unwrap();
        assert!(unknown.error().unwrap().contains("unknown circuit"));
        let infeasible = report.record_for(&Scenario::new("dealer", 1)).unwrap();
        assert!(infeasible.error().is_some());
    }

    #[test]
    fn list_scheduler_runs_on_the_minimum_allocation() {
        let plan = SweepPlan::builder()
            .case("vender", 6)
            .schedulers([SchedulerKind::ForceDirected, SchedulerKind::List])
            .build()
            .unwrap();
        let report = Engine::new().run(&plan, 2);
        assert_eq!(report.failure_count(), 0);
        let force = report
            .record_for(&Scenario::new("vender", 6).scheduler(SchedulerKind::ForceDirected))
            .unwrap()
            .metrics()
            .unwrap();
        let list = report
            .record_for(&Scenario::new("vender", 6).scheduler(SchedulerKind::List))
            .unwrap()
            .metrics()
            .unwrap();
        // Both meet the latency; the list run may manage fewer muxes under
        // the fixed allocation but never reports a negative saving.
        assert!(list.schedule_steps <= 6 && force.schedule_steps <= 6);
        assert!(list.power_reduction >= -1e-9);
    }

    #[test]
    fn pipelining_raises_savings_for_tight_latencies() {
        let plan = SweepPlan::builder().case("vender", 5).pipeline_depths([1, 2]).build().unwrap();
        let report = Engine::new().run(&plan, 2);
        let depth1 = report.record_for(&Scenario::new("vender", 5)).unwrap().metrics().unwrap();
        let depth2 = report
            .record_for(&Scenario::new("vender", 5).pipeline_depth(2))
            .unwrap()
            .metrics()
            .unwrap();
        assert_eq!(depth2.effective_latency, 10);
        assert!(depth2.power_reduction >= depth1.power_reduction - 1e-9);
        assert!(depth2.extra_registers >= depth1.extra_registers);
    }

    #[test]
    fn biased_branch_models_change_the_estimate_not_the_schedule() {
        let plan = SweepPlan::builder()
            .case("vender", 6)
            .branch_models([BranchModel::biased(0), BranchModel::Fair, BranchModel::biased(1000)])
            .build()
            .unwrap();
        let report = Engine::new().run(&plan, 1);
        let get = |model| {
            report
                .record_for(&Scenario::new("vender", 6).branch_model(model))
                .unwrap()
                .metrics()
                .unwrap()
                .clone()
        };
        let zero = get(BranchModel::biased(0));
        let fair = get(BranchModel::Fair);
        let one = get(BranchModel::biased(1000));
        // Same schedule...
        assert_eq!(zero.schedule_steps, one.schedule_steps);
        assert_eq!(zero.pm_muxes, one.pm_muxes);
        // ...but vender's multipliers sit on the 1-branches, so savings fall
        // as the selects move towards 1 (see the sensitivity module).
        assert!(zero.power_reduction > fair.power_reduction);
        assert!(fair.power_reduction > one.power_reduction);
    }

    #[test]
    fn full_range_policy_walks_critical_path_to_ceiling() {
        // dealer's critical path is 4; a single case at latency 6 becomes
        // the walk 4, 5, 6 under the range policies.
        let plan = SweepPlan::builder()
            .case("dealer", 6)
            .budget_policy(BudgetPolicy::FullRange)
            .build()
            .unwrap();
        let engine = Engine::new();
        let report = engine.run(&plan, 2);
        let latencies: Vec<u32> = report.records.iter().map(|r| r.scenario.latency).collect();
        assert_eq!(latencies, vec![4, 5, 6]);
        assert_eq!(report.failure_count(), 0);
        // Each expanded point matches its own fixed-budget run exactly.
        let fixed = engine.run(&SweepPlan::builder().case("dealer", 5).build().unwrap(), 1).records
            [0]
        .clone();
        let expanded = report.record_for(&Scenario::new("dealer", 5)).unwrap();
        assert_eq!(expanded, &fixed);
    }

    #[test]
    fn pareto_policy_prunes_dominated_records_but_keeps_failures() {
        let plan = SweepPlan::builder()
            .case("dealer", 6)
            .case("nonexistent", 4)
            .budget_policy(BudgetPolicy::Pareto)
            .build()
            .unwrap();
        let report = Engine::new().run(&plan, 2);
        assert_eq!(report.failure_count(), 1, "unknown circuit still surfaces");
        let successes: Vec<&SweepRecord> =
            report.records.iter().filter(|r| r.metrics().is_some()).collect();
        // Every retained success is on the (rebuilt) front.
        assert_eq!(successes.len(), report.pareto.len());
        // And the front is monotone: more budget strictly buys more savings.
        for pair in report.pareto.windows(2) {
            assert!(pair[0].effective_latency < pair[1].effective_latency);
            assert!(pair[0].power_reduction < pair[1].power_reduction);
        }
    }

    #[test]
    fn full_range_expansion_floors_at_the_effective_critical_path() {
        // Feasibility is about effective latency (latency × depth): dealer's
        // critical path is 4, so at depth 2 the cheapest feasible *bound* is
        // 2 (effective 4), and a ceiling of 3 walks bounds 2 and 3 — not an
        // empty (or pass-through) range floored at the raw critical path.
        let plan = SweepPlan::builder()
            .case("dealer", 3)
            .pipeline_depths([2])
            .budget_policy(BudgetPolicy::FullRange)
            .build()
            .unwrap();
        let report = Engine::new().run(&plan, 1);
        let latencies: Vec<u32> = report.records.iter().map(|r| r.scenario.latency).collect();
        assert_eq!(latencies, vec![2, 3]);
        assert_eq!(report.failure_count(), 0);
        let effective: Vec<u32> = report
            .records
            .iter()
            .filter_map(|r| r.metrics())
            .map(|m| m.effective_latency)
            .collect();
        assert_eq!(effective, vec![4, 6]);
    }

    #[test]
    fn sub_critical_bounds_pass_through_expansion_as_failures() {
        let plan = SweepPlan::builder()
            .case("dealer", 2) // below dealer's critical path of 4
            .budget_policy(BudgetPolicy::FullRange)
            .build()
            .unwrap();
        let report = Engine::new().run(&plan, 1);
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.failure_count(), 1);
    }

    #[test]
    fn gate_level_metrics_match_the_direct_table3_flow() {
        let plan =
            SweepPlan::builder().case("abs_diff", 3).gate_level(200, 0xDAC96).build().unwrap();
        let report = Engine::new().run(&plan, 1);
        let gate = report.records[0].metrics().unwrap().gate.clone().expect("gate requested");

        let direct = power::gate_level_comparison(
            &circuits::abs_diff(),
            &GateLevelOptions::new(3).samples(200),
        )
        .unwrap();
        assert_eq!(gate.original_area, direct.original_area);
        assert_eq!(gate.managed_power, direct.managed_power);
        assert_eq!(gate.power_reduction, direct.power_reduction_percent);
        assert_eq!(gate.samples, 200);
    }
}
