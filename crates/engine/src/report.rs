//! Typed sweep results: per-scenario records, per-circuit aggregates, a
//! Pareto front over latency vs. predicted power reduction, and
//! machine-readable emitters.
//!
//! Everything in a [`SweepReport`] is a pure function of the plan, so the
//! JSON and CSV renderings are byte-identical across thread counts and
//! across cold vs. cached runs (cache counters deliberately live on the
//! engine, not in the report).

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::scenario::Scenario;

/// Gate-level (Table III style) metrics for one scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct GateMetrics {
    /// Gate-equivalent area of the traditionally scheduled design.
    pub original_area: f64,
    /// Gate-equivalent area of the power-managed design.
    pub managed_area: f64,
    /// `managed_area / original_area`.
    pub area_ratio: f64,
    /// Simulated energy of the traditional design (arbitrary units).
    pub original_power: f64,
    /// Simulated energy of the power-managed design.
    pub managed_power: f64,
    /// Power reduction in percent at gate level.
    pub power_reduction: f64,
    /// Number of random samples simulated.
    pub samples: usize,
}

/// Everything the pipeline reports for one successfully executed scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioMetrics {
    /// Control steps one sample actually had (`latency × pipeline_depth`).
    pub effective_latency: u32,
    /// Control steps the final schedule uses.
    pub schedule_steps: u32,
    /// Multiplexors that gate at least one operation in the final schedule
    /// (the "P.Man. Muxs" column of Table II).
    pub pm_muxes: usize,
    /// Multiplexors accepted by the selection loop.
    pub accepted_muxes: usize,
    /// Control edges inserted across all accepted multiplexors.
    pub control_edges: usize,
    /// Execution-unit area ratio vs. the traditional schedule.
    pub area_increase: f64,
    /// Expected executions per class under the scenario's branch model, in
    /// the paper's column order: MUX, COMP, +, −, ×.
    pub expected: [f64; 5],
    /// Datapath power reduction in percent under the scenario's branch
    /// model.
    pub power_reduction: f64,
    /// Estimated extra pipeline registers (0 without pipelining).
    pub extra_registers: usize,
    /// Gate-level metrics, when the plan requested them.
    pub gate: Option<GateMetrics>,
}

/// The outcome of one scenario: metrics, or the error that stopped it.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord {
    /// The scenario that was executed.
    pub scenario: Scenario,
    /// Metrics on success, a human-readable error otherwise (e.g. a latency
    /// bound below the circuit's critical path).
    pub outcome: Result<ScenarioMetrics, String>,
}

impl SweepRecord {
    /// The metrics, if the scenario succeeded.
    pub fn metrics(&self) -> Option<&ScenarioMetrics> {
        self.outcome.as_ref().ok()
    }

    /// The error message, if the scenario failed.
    pub fn error(&self) -> Option<&str> {
        self.outcome.as_ref().err().map(String::as_str)
    }
}

/// Aggregate savings statistics for one circuit across all its scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitSummary {
    /// Circuit name.
    pub circuit: String,
    /// Scenarios executed for this circuit.
    pub scenarios: usize,
    /// Scenarios that failed.
    pub failures: usize,
    /// Smallest predicted power reduction among successful scenarios.
    pub min_reduction: f64,
    /// Median predicted power reduction.
    pub median_reduction: f64,
    /// Largest predicted power reduction.
    pub max_reduction: f64,
    /// The scenario achieving the largest reduction.
    pub best: Scenario,
}

/// One point of the per-circuit Pareto front over effective latency
/// (control steps a sample may take) vs. predicted power reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct ParetoPoint {
    /// Circuit name.
    pub circuit: String,
    /// Effective latency of the scenario.
    pub effective_latency: u32,
    /// Predicted datapath power reduction in percent.
    pub power_reduction: f64,
    /// The scenario behind the point.
    pub scenario: Scenario,
}

/// The complete result of a sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// One record per scenario, in plan (canonical) order.
    pub records: Vec<SweepRecord>,
    /// Per-circuit aggregates, sorted by circuit name.
    pub summaries: Vec<CircuitSummary>,
    /// Per-circuit Pareto fronts, concatenated in circuit order and sorted
    /// by effective latency within a circuit.
    pub pareto: Vec<ParetoPoint>,
}

impl SweepReport {
    /// Builds the report (aggregates + Pareto fronts) from per-scenario
    /// records in plan order.
    pub fn from_records(records: Vec<SweepRecord>) -> Self {
        let mut by_circuit: BTreeMap<&str, Vec<&SweepRecord>> = BTreeMap::new();
        for record in &records {
            by_circuit.entry(record.scenario.circuit.as_str()).or_default().push(record);
        }

        let mut summaries = Vec::new();
        let mut pareto = Vec::new();
        for (circuit, group) in &by_circuit {
            let successes: Vec<(&Scenario, &ScenarioMetrics)> =
                group.iter().filter_map(|r| r.metrics().map(|m| (&r.scenario, m))).collect();
            if let Some(summary) = summarize(circuit, group.len(), &successes) {
                summaries.push(summary);
            }
            pareto.extend(pareto_front(circuit, &successes));
        }
        SweepReport { records, summaries, pareto }
    }

    /// Iterates over the successful scenarios with their metrics, in plan
    /// order.
    pub fn successes(&self) -> impl Iterator<Item = (&Scenario, &ScenarioMetrics)> {
        self.records.iter().filter_map(|r| r.metrics().map(|m| (&r.scenario, m)))
    }

    /// The record for an exact scenario, if the plan contained it.
    pub fn record_for(&self, scenario: &Scenario) -> Option<&SweepRecord> {
        self.records.iter().find(|r| &r.scenario == scenario)
    }

    /// Number of failed scenarios.
    pub fn failure_count(&self) -> usize {
        self.records.iter().filter(|r| r.error().is_some()).count()
    }

    /// Reduces the report to each circuit's Pareto-optimal records —
    /// [`crate::pareto::BudgetPolicy::Pareto`]'s report shape.  Failed
    /// records are always kept (a pruned failure would hide an infeasible
    /// matrix point), and the summaries and fronts are rebuilt from the
    /// retained records.
    pub fn retain_pareto_front(self) -> SweepReport {
        let SweepReport { records, pareto, .. } = self;
        let records = records
            .into_iter()
            .filter(|r| r.error().is_some() || pareto.iter().any(|p| p.scenario == r.scenario))
            .collect();
        SweepReport::from_records(records)
    }

    /// Renders the report as JSON (hand-rolled; the workspace vendors no
    /// serialisation crates).  Key order and float formatting are stable,
    /// so equal reports produce byte-identical JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"records\": [");
        for (i, record) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    ");
            out.push_str(&record_json(record));
        }
        out.push_str("\n  ],\n  \"summaries\": [");
        for (i, summary) in self.summaries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"circuit\": {}, \"scenarios\": {}, \"failures\": {}, \
                 \"min_reduction\": {}, \"median_reduction\": {}, \"max_reduction\": {}, \
                 \"best\": {}}}",
                json_string(&summary.circuit),
                summary.scenarios,
                summary.failures,
                json_number(summary.min_reduction),
                json_number(summary.median_reduction),
                json_number(summary.max_reduction),
                scenario_json(&summary.best),
            );
        }
        out.push_str("\n  ],\n  \"pareto\": [");
        for (i, point) in self.pareto.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\n    {{\"circuit\": {}, \"effective_latency\": {}, \"power_reduction\": {}, \
                 \"scenario\": {}}}",
                json_string(&point.circuit),
                point.effective_latency,
                json_number(point.power_reduction),
                scenario_json(&point.scenario),
            );
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders the per-scenario records as CSV (header + one line per
    /// scenario, in plan order).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "circuit,latency,scheduler,pipeline_depth,reorder,branch_model,\
             effective_latency,schedule_steps,pm_muxes,accepted_muxes,control_edges,\
             area_increase,expected_mux,expected_comp,expected_add,expected_sub,expected_mul,\
             power_reduction,extra_registers,gate_area_ratio,gate_power_reduction,error\n",
        );
        for record in &self.records {
            let s = &record.scenario;
            let _ = write!(
                out,
                "{},{},{},{},{},{}",
                csv_field(&s.circuit),
                s.latency,
                s.scheduler,
                s.pipeline_depth,
                s.reorder,
                s.branch_model
            );
            match &record.outcome {
                Ok(m) => {
                    let _ = write!(
                        out,
                        ",{},{},{},{},{},{},{},{},{},{},{},{},{}",
                        m.effective_latency,
                        m.schedule_steps,
                        m.pm_muxes,
                        m.accepted_muxes,
                        m.control_edges,
                        json_number(m.area_increase),
                        json_number(m.expected[0]),
                        json_number(m.expected[1]),
                        json_number(m.expected[2]),
                        json_number(m.expected[3]),
                        json_number(m.expected[4]),
                        json_number(m.power_reduction),
                        m.extra_registers,
                    );
                    match &m.gate {
                        Some(g) => {
                            let _ = write!(
                                out,
                                ",{},{},",
                                json_number(g.area_ratio),
                                json_number(g.power_reduction)
                            );
                        }
                        None => out.push_str(",,,"),
                    }
                }
                Err(e) => {
                    out.push_str(&",".repeat(15));
                    out.push(',');
                    out.push_str(&csv_field(e));
                }
            }
            out.push('\n');
        }
        out
    }

    /// Renders a human-readable summary: per-scenario table, per-circuit
    /// aggregates and the Pareto fronts.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<8} {:>3} {:<5} {:>3} {:>7} {:<6} | {:>4} {:>5} {:>6} {:>8} {:>5}",
            "Circuit",
            "Stp",
            "Sched",
            "Pipe",
            "Reorder",
            "Branch",
            "Eff",
            "Muxs",
            "Area",
            "Red.(%)",
            "Regs"
        );
        for record in &self.records {
            let s = &record.scenario;
            let _ = write!(
                out,
                "{:<8} {:>3} {:<5} {:>4} {:>7} {:<6} |",
                s.circuit,
                s.latency,
                s.scheduler.label(),
                s.pipeline_depth,
                s.reorder,
                s.branch_model.label()
            );
            match &record.outcome {
                Ok(m) => {
                    let _ = writeln!(
                        out,
                        " {:>4} {:>5} {:>6.2} {:>8.2} {:>5}",
                        m.effective_latency,
                        m.pm_muxes,
                        m.area_increase,
                        m.power_reduction,
                        m.extra_registers
                    );
                }
                Err(e) => {
                    let _ = writeln!(out, " error: {e}");
                }
            }
        }
        out.push('\n');
        let _ = writeln!(
            out,
            "{:<8} {:>5} {:>5} {:>8} {:>8} {:>8}  best",
            "Circuit", "Runs", "Fail", "Min(%)", "Med(%)", "Max(%)"
        );
        for summary in &self.summaries {
            let _ = writeln!(
                out,
                "{:<8} {:>5} {:>5} {:>8.2} {:>8.2} {:>8.2}  {}",
                summary.circuit,
                summary.scenarios,
                summary.failures,
                summary.min_reduction,
                summary.median_reduction,
                summary.max_reduction,
                summary.best
            );
        }
        out.push('\n');
        out.push_str("Pareto front (effective latency vs. power reduction):\n");
        for point in &self.pareto {
            let _ = writeln!(
                out,
                "{:<8} {:>4} steps {:>8.2}%  [{}]",
                point.circuit, point.effective_latency, point.power_reduction, point.scenario
            );
        }
        out
    }
}

fn summarize(
    circuit: &str,
    total: usize,
    successes: &[(&Scenario, &ScenarioMetrics)],
) -> Option<CircuitSummary> {
    let mut reductions: Vec<f64> = successes.iter().map(|(_, m)| m.power_reduction).collect();
    if reductions.is_empty() {
        return None;
    }
    reductions.sort_by(f64::total_cmp);
    let median = if reductions.len() % 2 == 1 {
        reductions[reductions.len() / 2]
    } else {
        let hi = reductions.len() / 2;
        (reductions[hi - 1] + reductions[hi]) / 2.0
    };
    let best = successes
        .iter()
        .max_by(|a, b| a.1.power_reduction.total_cmp(&b.1.power_reduction))
        .expect("non-empty successes");
    Some(CircuitSummary {
        circuit: circuit.to_owned(),
        scenarios: total,
        failures: total - successes.len(),
        min_reduction: reductions[0],
        median_reduction: median,
        max_reduction: *reductions.last().expect("non-empty"),
        best: best.0.clone(),
    })
}

/// Extracts the Pareto-optimal points: a scenario is dominated when another
/// one achieves at least its power reduction at no more control steps (with
/// at least one strict improvement).  Exact ties keep only the first point
/// in plan order.
///
/// Reductions are ranked with [`f64::total_cmp`], like every other place
/// the report orders them: plain `>`/`==` comparisons would let a NaN
/// reduction (e.g. from a degenerate gate-level baseline before that became
/// a typed error) be incomparable to everything — never dominated, never a
/// tie — and quietly pollute the front.  Under `total_cmp` even non-finite
/// values rank deterministically.
fn pareto_front(circuit: &str, successes: &[(&Scenario, &ScenarioMetrics)]) -> Vec<ParetoPoint> {
    let mut front = Vec::new();
    for (i, (scenario, metrics)) in successes.iter().enumerate() {
        let dominated = successes.iter().enumerate().any(|(j, (_, other))| {
            let reduction = other.power_reduction.total_cmp(&metrics.power_reduction);
            let strictly_better =
                other.effective_latency < metrics.effective_latency || reduction.is_gt();
            let no_worse =
                other.effective_latency <= metrics.effective_latency && reduction.is_ge();
            let earlier_tie =
                j < i && other.effective_latency == metrics.effective_latency && reduction.is_eq();
            (no_worse && strictly_better) || earlier_tie
        });
        if !dominated {
            front.push(ParetoPoint {
                circuit: circuit.to_owned(),
                effective_latency: metrics.effective_latency,
                power_reduction: metrics.power_reduction,
                scenario: (*scenario).clone(),
            });
        }
    }
    front.sort_by(|a, b| {
        a.effective_latency
            .cmp(&b.effective_latency)
            .then(a.power_reduction.total_cmp(&b.power_reduction))
    });
    front
}

/// The single-line JSON object for one record, exactly as it appears inside
/// [`SweepReport::to_json`]'s `records` array.  Public so the sweep service
/// can stream records over the wire with byte-identical formatting.
pub fn record_json(record: &SweepRecord) -> String {
    let mut out = format!("{{\"scenario\": {}", scenario_json(&record.scenario));
    match &record.outcome {
        Ok(m) => {
            let _ = write!(
                out,
                ", \"ok\": true, \"effective_latency\": {}, \"schedule_steps\": {}, \
                 \"pm_muxes\": {}, \"accepted_muxes\": {}, \"control_edges\": {}, \
                 \"area_increase\": {}, \"expected\": [{}, {}, {}, {}, {}], \
                 \"power_reduction\": {}, \"extra_registers\": {}",
                m.effective_latency,
                m.schedule_steps,
                m.pm_muxes,
                m.accepted_muxes,
                m.control_edges,
                json_number(m.area_increase),
                json_number(m.expected[0]),
                json_number(m.expected[1]),
                json_number(m.expected[2]),
                json_number(m.expected[3]),
                json_number(m.expected[4]),
                json_number(m.power_reduction),
                m.extra_registers,
            );
            if let Some(g) = &m.gate {
                let _ = write!(
                    out,
                    ", \"gate\": {{\"original_area\": {}, \"managed_area\": {}, \
                     \"area_ratio\": {}, \"original_power\": {}, \"managed_power\": {}, \
                     \"power_reduction\": {}, \"samples\": {}}}",
                    json_number(g.original_area),
                    json_number(g.managed_area),
                    json_number(g.area_ratio),
                    json_number(g.original_power),
                    json_number(g.managed_power),
                    json_number(g.power_reduction),
                    g.samples,
                );
            }
        }
        Err(e) => {
            let _ = write!(out, ", \"ok\": false, \"error\": {}", json_string(e));
        }
    }
    out.push('}');
    out
}

fn scenario_json(scenario: &Scenario) -> String {
    format!(
        "{{\"circuit\": {}, \"latency\": {}, \"scheduler\": {}, \"pipeline_depth\": {}, \
         \"reorder\": {}, \"branch_model\": {}}}",
        json_string(&scenario.circuit),
        scenario.latency,
        json_string(scenario.scheduler.label()),
        scenario.pipeline_depth,
        scenario.reorder,
        json_string(&scenario.branch_model.label()),
    )
}

/// Escapes and quotes a string for JSON output.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number (shortest round-trip form; non-finite
/// values become `null`, which JSON has no number for).
pub fn json_number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_owned()
    }
}

/// Escapes and quotes a string for CSV output when needed.
pub(crate) fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(effective_latency: u32, reduction: f64) -> ScenarioMetrics {
        ScenarioMetrics {
            effective_latency,
            schedule_steps: effective_latency,
            pm_muxes: 1,
            accepted_muxes: 1,
            control_edges: 2,
            area_increase: 1.0,
            expected: [1.0, 1.0, 0.0, 1.0, 0.0],
            power_reduction: reduction,
            extra_registers: 0,
            gate: None,
        }
    }

    fn record(circuit: &str, latency: u32, reduction: f64) -> SweepRecord {
        SweepRecord {
            scenario: Scenario::new(circuit, latency),
            outcome: Ok(metrics(latency, reduction)),
        }
    }

    #[test]
    fn summaries_compute_min_median_max() {
        let report = SweepReport::from_records(vec![
            record("a", 3, 10.0),
            record("a", 4, 30.0),
            record("a", 5, 20.0),
        ]);
        assert_eq!(report.summaries.len(), 1);
        let s = &report.summaries[0];
        assert_eq!(s.min_reduction, 10.0);
        assert_eq!(s.median_reduction, 20.0);
        assert_eq!(s.max_reduction, 30.0);
        assert_eq!(s.best.latency, 4);
        assert_eq!(s.failures, 0);
    }

    #[test]
    fn even_count_median_averages_the_middle_pair() {
        let report = SweepReport::from_records(vec![record("a", 3, 10.0), record("a", 4, 30.0)]);
        assert_eq!(report.summaries[0].median_reduction, 20.0);
    }

    #[test]
    fn pareto_front_drops_dominated_points() {
        // (3, 10), (4, 30), (5, 20): the last point is dominated (more
        // latency, less savings than (4, 30)).
        let report = SweepReport::from_records(vec![
            record("a", 3, 10.0),
            record("a", 4, 30.0),
            record("a", 5, 20.0),
        ]);
        let latencies: Vec<u32> = report.pareto.iter().map(|p| p.effective_latency).collect();
        assert_eq!(latencies, vec![3, 4]);
    }

    #[test]
    fn pareto_keeps_one_of_exact_ties() {
        let report = SweepReport::from_records(vec![record("a", 3, 10.0), record("a", 3, 10.0)]);
        assert_eq!(report.pareto.len(), 1);
    }

    #[test]
    fn pareto_ranks_non_finite_reductions_with_total_cmp() {
        // A NaN reduction used to be incomparable under `>` / `==`: never
        // dominated, never a tie, so it always leaked onto the front — and
        // two NaN points both did.  Under total_cmp NaN ranks above +inf,
        // deterministically: here it dominates the finite point at the same
        // latency, and the duplicate NaN is dropped as an exact tie.
        let report = SweepReport::from_records(vec![
            record("a", 3, f64::NAN),
            record("a", 3, 25.0),
            record("a", 4, f64::NAN),
        ]);
        assert_eq!(report.pareto.len(), 1);
        assert_eq!(report.pareto[0].effective_latency, 3);
        assert!(report.pareto[0].power_reduction.is_nan());
        // Byte-identical across re-emissions, NaN and all.
        assert_eq!(report.to_json(), report.to_json());
    }

    #[test]
    fn even_and_odd_medians_and_ranking_are_total_cmp_ordered() {
        // Negative zero sorts below positive zero under total_cmp; the
        // even-length median averages the middle pair either way.
        let report = SweepReport::from_records(vec![
            record("a", 3, 0.0),
            record("a", 4, -0.0),
            record("a", 5, 10.0),
            record("a", 6, 20.0),
        ]);
        assert_eq!(report.summaries[0].median_reduction, 5.0);
        assert_eq!(report.summaries[0].min_reduction, -0.0);
        assert_eq!(report.summaries[0].max_reduction, 20.0);
        assert_eq!(report.summaries[0].best.latency, 6);
    }

    #[test]
    fn retain_pareto_front_keeps_front_and_failures_only() {
        let mut records = vec![
            record("a", 3, 10.0),
            record("a", 4, 30.0),
            record("a", 5, 20.0), // dominated by (4, 30)
        ];
        records.push(SweepRecord {
            scenario: Scenario::new("a", 1),
            outcome: Err("latency too small".to_owned()),
        });
        let report = SweepReport::from_records(records).retain_pareto_front();
        let latencies: Vec<u32> = report
            .records
            .iter()
            .filter_map(|r| r.metrics())
            .map(|m| m.effective_latency)
            .collect();
        assert_eq!(latencies, vec![3, 4], "dominated point pruned");
        assert_eq!(report.failure_count(), 1, "failures are never hidden");
        assert_eq!(report.pareto.len(), 2, "front rebuilt from retained records");
    }

    #[test]
    fn failures_are_counted_and_do_not_enter_aggregates() {
        let mut records = vec![record("a", 4, 25.0)];
        records.push(SweepRecord {
            scenario: Scenario::new("a", 1),
            outcome: Err("latency too small".to_owned()),
        });
        let report = SweepReport::from_records(records);
        assert_eq!(report.failure_count(), 1);
        assert_eq!(report.summaries[0].failures, 1);
        assert_eq!(report.summaries[0].scenarios, 2);
        assert_eq!(report.summaries[0].min_reduction, 25.0);
        assert_eq!(report.pareto.len(), 1);
    }

    #[test]
    fn json_is_stable_and_escapes() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_number(1.5), "1.5");
        assert_eq!(json_number(f64::NAN), "null");
        let report = SweepReport::from_records(vec![record("a", 3, 12.5)]);
        let json = report.to_json();
        assert!(json.contains("\"power_reduction\": 12.5"));
        assert!(json.contains("\"pareto\""));
        assert_eq!(report.to_json(), json, "emission is deterministic");
    }

    #[test]
    fn csv_has_header_and_one_line_per_record() {
        let mut records = vec![record("a", 3, 12.5)];
        records.push(SweepRecord {
            scenario: Scenario::new("a", 1),
            outcome: Err("nope, too tight".to_owned()),
        });
        let report = SweepReport::from_records(records);
        let csv = report.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.lines().next().unwrap().starts_with("circuit,latency,scheduler"));
        assert!(csv.contains("nope, too tight") || csv.contains("\"nope, too tight\""));
    }

    #[test]
    fn render_mentions_every_section() {
        let report = SweepReport::from_records(vec![record("a", 3, 12.5)]);
        let text = report.render();
        assert!(text.contains("Pareto front"));
        assert!(text.contains("Red.(%)"));
        assert!(text.contains("Med(%)"));
    }

    #[test]
    fn record_for_finds_exact_scenarios() {
        let report = SweepReport::from_records(vec![record("a", 3, 12.5)]);
        assert!(report.record_for(&Scenario::new("a", 3)).is_some());
        assert!(report.record_for(&Scenario::new("a", 4)).is_none());
    }
}
