//! Property tests for the Pareto explorer: across every generated circuit
//! family and voltage policy, each emitted front must be actually
//! non-dominated in all three objectives (budget, energy, area), identical
//! across thread counts, and anchored at the critical path — the paper's
//! Table II walk generalised to a 3-objective trade-off surface.

use engine::{
    BudgetCeiling, BudgetPolicy, DelayScaling, Engine, ExploreOptions, ExplorePoint,
    ExploreRequest, ParetoReport, VoltagePolicy, VoltagePreset,
};
use gen::{Family, GenSpec};
use proptest::prelude::*;

/// A small-but-varied spec for one circuit of the given family.
fn spec_for(family: Family, seed: u64, scale: u32) -> GenSpec {
    let mut spec = GenSpec::new(family, seed, 1);
    match family {
        Family::RandomDag => {
            spec.width = 3 + scale;
            spec.depth = 4 + 2 * scale;
            spec.mux_permille = 300;
        }
        Family::MuxTree => spec.depth = 2 + scale % 4,
        Family::DspChain => spec.taps = 3 + 2 * scale,
        Family::Cordic => spec.iters = 2 + scale,
    }
    spec
}

fn family_strategy() -> impl Strategy<Value = Family> {
    prop_oneof![
        Just(Family::RandomDag),
        Just(Family::MuxTree),
        Just(Family::DspChain),
        Just(Family::Cordic),
    ]
}

fn voltage_strategy() -> impl Strategy<Value = VoltagePolicy> {
    prop_oneof![
        Just(VoltagePolicy::Global(DelayScaling::Quadratic)),
        Just(VoltagePolicy::PerOp(VoltagePreset::ThreeLevel)),
        Just(VoltagePolicy::PerOp(VoltagePreset::FiveLevel)),
    ]
}

/// 3-objective dominance, exactly as the explorer defines it: weakly
/// better everywhere, strictly better somewhere, floats via `total_cmp`.
fn dominates(a: &ExplorePoint, b: &ExplorePoint) -> bool {
    a.budget <= b.budget
        && a.energy.total_cmp(&b.energy).is_le()
        && a.area.total_cmp(&b.area).is_le()
        && (a.budget < b.budget
            || a.energy.total_cmp(&b.energy).is_lt()
            || a.area.total_cmp(&b.area).is_lt())
}

fn explore(
    engine: &Engine,
    name: &str,
    policy: BudgetPolicy,
    voltage: VoltagePolicy,
    threads: usize,
) -> ParetoReport {
    let options = ExploreOptions::new()
        .policy(policy)
        .ceiling(BudgetCeiling::CriticalPathPlus(3))
        .voltage(voltage);
    engine.explore(&[ExploreRequest::new(name)], &options, threads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(14))]

    #[test]
    fn fronts_are_non_dominated_deterministic_and_anchored(
        family in family_strategy(),
        voltage in voltage_strategy(),
        seed in 0u64..1000,
        scale in 1u32..4,
    ) {
        let spec = spec_for(family, seed, scale);
        let bench = gen::generate_one(&spec, 0).expect("generator produces valid circuits");
        let mut engine = Engine::new();
        let name = bench.name.clone();
        engine.register_benchmarks([bench]);

        // Determinism: byte-identical JSON at 1, 4 and 8 threads.
        let one = explore(&engine, &name, BudgetPolicy::Pareto, voltage, 1);
        let four = explore(&engine, &name, BudgetPolicy::Pareto, voltage, 4);
        let eight = explore(&engine, &name, BudgetPolicy::Pareto, voltage, 8);
        prop_assert_eq!(one.to_json(), four.to_json(), "{} at 4 threads", name);
        prop_assert_eq!(one.to_json(), eight.to_json(), "{} at 8 threads", name);

        let circuit = one.circuit(&name).expect("explored");
        prop_assert!(circuit.failures.is_empty(), "{}: {:?}", name, circuit.failures);
        prop_assert!(!circuit.points.is_empty(), "{}", name);
        // The smallest feasible budget can never be dominated (every other
        // point pays strictly more budget), so the front always starts at
        // the critical path.
        prop_assert_eq!(circuit.points[0].budget, circuit.critical_path);

        // The front walks ascending budgets, every point carries real
        // objective values, and no point dominates another — checked
        // pairwise from the 3-objective definition.
        for pair in circuit.points.windows(2) {
            prop_assert!(pair[0].budget < pair[1].budget, "{}", name);
        }
        for p in &circuit.points {
            prop_assert!(p.energy.is_finite() && p.energy >= 0.0, "{}", name);
            prop_assert!(p.area.is_finite() && p.area > 0.0, "{}", name);
        }
        for (i, a) in circuit.points.iter().enumerate() {
            for b in circuit.points.iter().skip(i + 1) {
                prop_assert!(
                    !dominates(a, b) && !dominates(b, a),
                    "{}: dominated pair @ {} and @ {}",
                    name, a.budget, b.budget
                );
            }
        }

        // The Pareto policy's points are exactly the full-range walk's
        // front — pruning, not recomputing.
        let full = explore(&engine, &name, BudgetPolicy::FullRange, voltage, 1);
        let full_circuit = full.circuit(&name).expect("explored");
        let front: Vec<_> = full_circuit.front().collect();
        prop_assert_eq!(front.len(), circuit.points.len(), "{}", name);
        for (a, b) in front.iter().zip(&circuit.points) {
            prop_assert_eq!(a.budget, b.budget);
            prop_assert_eq!(a.energy.to_bits(), b.energy.to_bits(), "{}", name);
            prop_assert_eq!(a.area.to_bits(), b.area.to_bits(), "{}", name);
            prop_assert_eq!(a.combined_reduction, b.combined_reduction);
        }
        // And every full-range point is weakly dominated by some front
        // point (the front really is the maximum set).
        for p in &full_circuit.points {
            prop_assert!(
                circuit.points.iter().any(|f| f.budget <= p.budget
                    && f.energy.total_cmp(&p.energy).is_le()
                    && f.area.total_cmp(&p.area).is_le()),
                "{}: point @ {} not covered by the front", name, p.budget
            );
        }
    }
}
