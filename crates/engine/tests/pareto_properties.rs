//! Property tests for the Pareto explorer: across every generated circuit
//! family, each emitted front must be actually non-dominated, identical
//! across thread counts, and monotone — savings never decrease as the
//! budget grows along the front, the paper's Table II invariant.

use engine::{
    BudgetCeiling, BudgetPolicy, DelayScaling, Engine, ExploreOptions, ExploreRequest, ParetoReport,
};
use gen::{Family, GenSpec};
use proptest::prelude::*;

/// A small-but-varied spec for one circuit of the given family.
fn spec_for(family: Family, seed: u64, scale: u32) -> GenSpec {
    let mut spec = GenSpec::new(family, seed, 1);
    match family {
        Family::RandomDag => {
            spec.width = 3 + scale;
            spec.depth = 4 + 2 * scale;
            spec.mux_permille = 300;
        }
        Family::MuxTree => spec.depth = 2 + scale % 4,
        Family::DspChain => spec.taps = 3 + 2 * scale,
        Family::Cordic => spec.iters = 2 + scale,
    }
    spec
}

fn family_strategy() -> impl Strategy<Value = Family> {
    prop_oneof![
        Just(Family::RandomDag),
        Just(Family::MuxTree),
        Just(Family::DspChain),
        Just(Family::Cordic),
    ]
}

fn explore(engine: &Engine, name: &str, policy: BudgetPolicy, threads: usize) -> ParetoReport {
    let options = ExploreOptions::new()
        .policy(policy)
        .ceiling(BudgetCeiling::CriticalPathPlus(3))
        .scaling(DelayScaling::Quadratic);
    engine.explore(&[ExploreRequest::new(name)], &options, threads)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(14))]

    #[test]
    fn fronts_are_non_dominated_deterministic_and_monotone(
        family in family_strategy(),
        seed in 0u64..1000,
        scale in 1u32..4,
    ) {
        let spec = spec_for(family, seed, scale);
        let bench = gen::generate_one(&spec, 0).expect("generator produces valid circuits");
        let mut engine = Engine::new();
        let name = bench.name.clone();
        engine.register_benchmarks([bench]);

        // Determinism: byte-identical JSON at 1, 4 and 8 threads.
        let one = explore(&engine, &name, BudgetPolicy::Pareto, 1);
        let four = explore(&engine, &name, BudgetPolicy::Pareto, 4);
        let eight = explore(&engine, &name, BudgetPolicy::Pareto, 8);
        prop_assert_eq!(one.to_json(), four.to_json(), "{} at 4 threads", name);
        prop_assert_eq!(one.to_json(), eight.to_json(), "{} at 8 threads", name);

        let circuit = one.circuit(&name).expect("explored");
        prop_assert!(circuit.failures.is_empty(), "{}: {:?}", name, circuit.failures);
        prop_assert!(!circuit.points.is_empty(), "{}", name);
        // The cheapest feasible budget can never be dominated, so the
        // front always starts at the critical path.
        prop_assert_eq!(circuit.points[0].budget, circuit.critical_path);

        // Monotone (Table II invariant) and strictly improving: along the
        // front, a bigger budget always buys strictly more savings.
        for pair in circuit.points.windows(2) {
            prop_assert!(pair[0].budget < pair[1].budget, "{}", name);
            prop_assert!(
                pair[0].combined_reduction < pair[1].combined_reduction,
                "{}: front not monotone ({} @ {} vs {} @ {})",
                name, pair[0].combined_reduction, pair[0].budget,
                pair[1].combined_reduction, pair[1].budget
            );
        }
        // Actually non-dominated, checked pairwise from the definition.
        for (i, a) in circuit.points.iter().enumerate() {
            for b in circuit.points.iter().skip(i + 1) {
                let b_dominates_a = b.budget <= a.budget
                    && b.combined_reduction >= a.combined_reduction;
                let a_dominates_b = a.budget <= b.budget
                    && a.combined_reduction >= b.combined_reduction;
                prop_assert!(!b_dominates_a && !a_dominates_b, "{}", name);
            }
        }

        // The Pareto policy's points are exactly the full-range walk's
        // front — pruning, not recomputing.
        let full = explore(&engine, &name, BudgetPolicy::FullRange, 1);
        let full_circuit = full.circuit(&name).expect("explored");
        let front: Vec<_> = full_circuit.front().collect();
        prop_assert_eq!(front.len(), circuit.points.len(), "{}", name);
        for (a, b) in front.iter().zip(&circuit.points) {
            prop_assert_eq!(a.budget, b.budget);
            prop_assert_eq!(a.combined_reduction, b.combined_reduction);
        }
        // And every full-range point is weakly dominated by some front
        // point (the front really is the maximum set).
        for p in &full_circuit.points {
            prop_assert!(
                circuit.points.iter().any(|f| f.budget <= p.budget
                    && f.combined_reduction.total_cmp(&p.combined_reduction).is_ge()),
                "{}: point @ {} not covered by the front", name, p.budget
            );
        }
    }
}
