//! Property tests for sweep-plan canonicalisation: the plan a builder
//! produces must depend only on the *set* of requested scenarios, never on
//! the order cases or sweep dimensions were inserted — the gap PR 2's
//! determinism suite left open.

use engine::{BranchModel, Scenario, SchedulerKind, SweepPlan};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic Fisher–Yates driven by the workspace's seeded rng shim.
fn shuffled<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = items.to_vec();
    for i in (1..out.len()).rev() {
        let j = rng.gen_range(0usize..i + 1);
        out.swap(i, j);
    }
    out
}

/// The case pool the property draws from: enough circuits and latencies for
/// permutations (and duplicated insertions) to be meaningful.
fn case_pool() -> Vec<(&'static str, u32)> {
    let mut cases = Vec::new();
    for circuit in ["dealer", "gcd", "vender", "abs_diff", "cordic"] {
        for latency in [3u32, 4, 5, 6, 48] {
            cases.push((circuit, latency));
        }
    }
    cases
}

fn build_plan(
    cases: &[(&str, u32)],
    schedulers: &[SchedulerKind],
    depths: &[u32],
    reorder: &[bool],
    models: &[BranchModel],
) -> SweepPlan {
    let mut builder = SweepPlan::builder();
    for &(circuit, latency) in cases {
        builder = builder.case(circuit, latency);
    }
    builder
        .schedulers(schedulers.iter().copied())
        .pipeline_depths(depths.iter().copied())
        .reorder(reorder.iter().copied())
        .branch_models(models.iter().copied())
        .build()
        .expect("non-empty plan")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn plans_are_insensitive_to_insertion_order(
        seed in 0u64..1_000_000,
        take in 1usize..26,
    ) {
        let pool = case_pool();
        let cases: Vec<(&str, u32)> = pool[..take.min(pool.len())].to_vec();
        let schedulers = [SchedulerKind::ForceDirected, SchedulerKind::List];
        let depths = [1u32, 2];
        let reorder = [false, true];
        let models = [BranchModel::Fair, BranchModel::biased(250), BranchModel::biased(750)];

        let canonical = build_plan(&cases, &schedulers, &depths, &reorder, &models);
        let permuted = build_plan(
            &shuffled(&cases, seed),
            &shuffled(&schedulers, seed ^ 1),
            &shuffled(&depths, seed ^ 2),
            &shuffled(&reorder, seed ^ 3),
            &shuffled(&models, seed ^ 4),
        );
        prop_assert_eq!(&canonical, &permuted);

        // Duplicated insertions (the whole case list twice, shuffled) change
        // nothing either: the plan is a set.
        let mut doubled = cases.clone();
        doubled.extend(shuffled(&cases, seed ^ 5));
        let deduped = build_plan(&doubled, &schedulers, &depths, &reorder, &models);
        prop_assert_eq!(&canonical, &deduped);
    }

    #[test]
    fn scenarios_come_out_sorted_and_unique(
        seed in 0u64..1_000_000,
        take in 1usize..26,
    ) {
        let pool = case_pool();
        let cases = shuffled(&pool[..take.min(pool.len())], seed);
        let plan = build_plan(
            &cases,
            &[SchedulerKind::ForceDirected, SchedulerKind::List],
            &[1, 3],
            &[false, true],
            &[BranchModel::Fair],
        );
        let scenarios: &[Scenario] = plan.scenarios();
        for pair in scenarios.windows(2) {
            prop_assert!(pair[0] < pair[1], "strictly ascending canonical order");
        }
    }
}
