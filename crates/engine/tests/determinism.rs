//! Engine determinism: the sweep report — down to its emitted bytes — must
//! not depend on the thread count, on repetition, or on whether the memo
//! cache was cold or warm.

use engine::{BranchModel, Engine, SchedulerKind, SweepPlan};

/// A matrix that exercises every dimension (both schedulers, pipelining,
/// reordering, biased branch models) plus a deliberately infeasible latency
/// so error records are covered too.
fn mixed_plan() -> SweepPlan {
    SweepPlan::builder()
        .circuits(["dealer", "gcd", "vender", "abs_diff"])
        .latencies([3, 5, 6])
        .schedulers([SchedulerKind::ForceDirected, SchedulerKind::List])
        .pipeline_depths([1, 2])
        .reorder([false, true])
        .branch_models([BranchModel::Fair, BranchModel::biased(300)])
        .build()
        .expect("valid plan")
}

#[test]
fn report_is_byte_identical_across_thread_counts() {
    let plan = mixed_plan();
    let reference = Engine::new().run(&plan, 1);
    let reference_json = reference.to_json();
    let reference_csv = reference.to_csv();
    assert_eq!(reference.records.len(), plan.len());

    for threads in [2, 8] {
        let report = Engine::new().run(&plan, threads);
        assert_eq!(report, reference, "records differ at {threads} threads");
        assert_eq!(report.to_json(), reference_json, "json differs at {threads} threads");
        assert_eq!(report.to_csv(), reference_csv, "csv differs at {threads} threads");
    }
}

#[test]
fn repeated_runs_are_byte_identical() {
    let plan = mixed_plan();
    let engine = Engine::new();
    let first = engine.run(&plan, 4);
    let second = engine.run(&plan, 4);
    assert_eq!(first, second);
    assert_eq!(first.to_json(), second.to_json());
}

#[test]
fn cached_runs_equal_cold_runs() {
    let plan = mixed_plan();

    // Cold: a fresh engine per run.
    let cold = Engine::new().run(&plan, 2);

    // Warm: the same engine runs the plan twice; the second run is answered
    // almost entirely from the prefix cache.
    let engine = Engine::new();
    let warm_first = engine.run(&plan, 2);
    let misses_after_first = engine.cache_stats().misses;
    let warm_second = engine.run(&plan, 2);
    let stats = engine.cache_stats();
    assert_eq!(stats.misses, misses_after_first, "second run must not recompute any prefix");
    assert!(stats.hits > 0, "cache was actually exercised");

    assert_eq!(cold, warm_first, "first warm run equals a cold run");
    assert_eq!(cold, warm_second, "cached results never change the report");
    assert_eq!(cold.to_json(), warm_second.to_json());
    assert_eq!(cold.to_csv(), warm_second.to_csv());
}

#[test]
fn gate_level_reports_are_deterministic_too() {
    // Gate-level simulation is seeded; the full report including simulated
    // power must be identical across thread counts.
    let plan = SweepPlan::builder()
        .circuits(["dealer", "abs_diff"])
        .latencies([3, 6])
        .gate_level(100, 0xDAC96)
        .build()
        .unwrap();
    let one = Engine::new().run(&plan, 1);
    let many = Engine::new().run(&plan, 8);
    assert_eq!(one, many);
    assert_eq!(one.to_json(), many.to_json());
}
