//! Circuit statistics (Table I of the paper).

use std::fmt;

use cdfg::{Cdfg, OpCounts};

/// The Table I row for one circuit: minimum number of control steps
/// (critical path) and the number of operations of each class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CircuitStats {
    /// Circuit name.
    pub name: String,
    /// Critical path length in control steps (column 2 of Table I).
    pub critical_path: u32,
    /// Operation counts (columns 3–7 of Table I).
    pub counts: OpCounts,
    /// Total number of CDFG nodes (including inputs, constants, outputs).
    pub node_count: usize,
}

impl CircuitStats {
    /// Computes the statistics of one design.
    pub fn of(cdfg: &Cdfg) -> Self {
        CircuitStats {
            name: cdfg.name().to_owned(),
            critical_path: cdfg.critical_path_length(),
            counts: cdfg.op_counts(),
            node_count: cdfg.node_count(),
        }
    }

    /// Renders the row in the paper's column order:
    /// `name, critical path, MUX, COMP, +, -, *`.
    pub fn render_row(&self) -> String {
        format!(
            "{:<8} {:>4} {:>5} {:>5} {:>4} {:>4} {:>4}",
            self.name,
            self.critical_path,
            self.counts.mux,
            self.counts.comp,
            self.counts.add,
            self.counts.sub,
            self.counts.mul
        )
    }
}

impl fmt::Display for CircuitStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: critical path {}, {}", self.name, self.critical_path, self.counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmarks;

    #[test]
    fn render_row_has_paper_columns() {
        let stats = CircuitStats::of(&benchmarks::dealer());
        let row = stats.render_row();
        assert!(row.starts_with("dealer"));
        let fields: Vec<&str> = row.split_whitespace().collect();
        assert_eq!(fields.len(), 7);
        assert_eq!(fields[1], "4");
        assert!(stats.to_string().contains("critical path 4"));
    }
}
