//! Benchmark circuits for the DAC'96 power-management scheduling
//! experiments.
//!
//! The paper evaluates four designs — `dealer`, `gcd`, `vender` and
//! `cordic` — whose Silage sources are not public.  This crate reconstructs
//! designs with the same operation mix (Table I columns), the same critical
//! path and the same conditional structure, so the scheduling algorithm sees
//! equivalent optimisation opportunities.  The |a − b| example of Figures 1
//! and 2 is included as well.
//!
//! | circuit | critical path | MUX | COMP | + | − | × |
//! |---------|---------------|-----|------|---|---|---|
//! | dealer  | 4             | 3   | 3    | 2 | 1 | 0 |
//! | gcd     | 5             | 6   | 2    | 0 | 1 | 0 |
//! | vender  | 5             | 6   | 3    | 3 | 3 | 2 |
//! | cordic  | 48            | 47  | 16   | 43| 46| 0 |
//!
//! # Example
//!
//! ```
//! let dealer = circuits::dealer();
//! let stats = circuits::CircuitStats::of(&dealer);
//! assert_eq!(stats.critical_path, 4);
//! assert_eq!(stats.counts.mux, 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod benchmarks;
pub mod stats;

pub use crate::benchmarks::{
    abs_diff, abs_diff_silage_source, all_benchmarks, cordic, cordic_named, cordic_with_iterations,
    dealer, gcd, output_driver, vender, Benchmark,
};
pub use crate::stats::CircuitStats;
