//! The benchmark designs.
//!
//! Each builder reconstructs a design whose operation mix matches the
//! corresponding row of Table I of the paper (the original Silage sources
//! are not public).  See the crate-level documentation for the target
//! numbers and `DESIGN.md` for the substitution rationale.

use cdfg::{Cdfg, CdfgBuilder, NodeId, Op};

/// A named benchmark circuit together with the control-step budgets it is
/// evaluated at (column 2 of Table II for the paper circuits; critical-path
/// derived budgets for generated workloads).
///
/// The name is owned so the type covers synthetically generated circuits
/// (whose names embed generator parameters) as well as the paper's four.
/// It always equals `cdfg.name()`, which is what the sweep engine keys its
/// circuit registry and prefix cache on.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Circuit name as it appears in reports and the engine registry.
    pub name: String,
    /// The design itself.
    pub cdfg: Cdfg,
    /// Control-step budgets to evaluate the circuit at.
    pub control_steps: Vec<u32>,
}

/// All four benchmark circuits of the paper, with their Table II
/// control-step budgets.
pub fn all_benchmarks() -> Vec<Benchmark> {
    vec![
        Benchmark { name: "dealer".to_owned(), cdfg: dealer(), control_steps: vec![4, 5, 6] },
        Benchmark { name: "gcd".to_owned(), cdfg: gcd(), control_steps: vec![5, 6, 7] },
        Benchmark { name: "vender".to_owned(), cdfg: vender(), control_steps: vec![5, 6] },
        Benchmark { name: "cordic".to_owned(), cdfg: cordic(), control_steps: vec![48, 52] },
    ]
}

/// The `|a - b|` example of Figures 1 and 2.
pub fn abs_diff() -> Cdfg {
    let mut b = CdfgBuilder::new("abs_diff");
    let a = b.input("a");
    let x = b.input("b");
    let gt = b.gt(a, x).expect("valid operands");
    let amb = b.sub(a, x).expect("valid operands");
    let bma = b.sub(x, a).expect("valid operands");
    let m = b.mux(gt, bma, amb).expect("valid operands");
    b.output("abs", m).expect("fresh output name");
    b.finish().expect("abs_diff is structurally valid")
}

/// The `|a - b|` example as Silage-like source text, for exercising the
/// frontend end to end.
pub fn abs_diff_silage_source() -> &'static str {
    r#"
    # Figure 1 of the paper: |a - b| with an explicit condition.
    func abs_diff(a: num[8], b: num[8]) -> (abs: num[8]) {
        c   = a > b;
        abs = if c then a - b else b - a;
    }
    "#
}

/// `dealer`: a small card-dealing controller datapath.
///
/// Table I row: critical path 4, 3 MUX, 3 COMP, 2 `+`, 1 `−`.
/// The outer conditional selects between a shared running sum and a
/// secondary computation (a comparison, a subtraction and an inner
/// conditional) that can be shut down entirely.
pub fn dealer() -> Cdfg {
    let mut b = CdfgBuilder::new("dealer");
    let a = b.input("a");
    let bb = b.input("b");
    let c = b.input("c");
    let d = b.input("d");

    // Shared first-level values (never shut down: they feed both branches).
    let c1 = b.gt(a, bb).expect("ops");
    let s1 = b.add(a, bb).expect("ops");
    let s2 = b.add(c, d).expect("ops");

    // Secondary computation, exclusive to the outer conditional's branch.
    let c2 = b.gt(s1, s2).expect("ops");
    let d1 = b.sub(s1, s2).expect("ops");
    let m2 = b.mux(c2, s2, d1).expect("ops");

    // Outer conditional: hand out the running sum when a > b, otherwise the
    // secondary result (whose whole cone can then be shut down).
    let m3 = b.mux(c1, m2, s1).expect("ops");

    // Independent side channel (third mux and comparator).
    let c3 = b.gt(s2, a).expect("ops");
    let m1 = b.mux(c3, a, bb).expect("ops");

    b.output("deal", m3).expect("output");
    b.output("side", m1).expect("output");
    b.finish().expect("dealer is structurally valid")
}

/// `gcd`: one iteration of the subtractive greatest-common-divisor step
/// with swap and termination handling.
///
/// Table I row: critical path 5, 6 MUX, 2 COMP, 0 `+`, 1 `−`.
pub fn gcd() -> Cdfg {
    let mut b = CdfgBuilder::new("gcd");
    let a = b.input("a");
    let x = b.input("b");
    let zero = b.constant(0);

    let gt = b.gt(a, x).expect("ops");
    let eq = b.eq(a, x).expect("ops");

    // Order the operands so the subtraction is always non-negative.
    let big = b.mux(gt, x, a).expect("ops");
    let small = b.mux(gt, a, x).expect("ops");
    let diff = b.sub(big, small).expect("ops");

    // Next iteration state: when the larger operand came first the freshly
    // computed difference continues, otherwise the swapped smaller operand
    // does (and the subtraction result is never used).
    let next_a = b.mux(gt, small, diff).expect("ops");
    let next_b = b.mux(eq, small, x).expect("ops");
    // The result port is only meaningful once the operands are equal.
    let result = b.mux(eq, zero, a).expect("ops");
    // Normalised output: keep the larger remaining operand first.
    let next = b.mux(gt, next_a, next_b).expect("ops");

    b.output("result", result).expect("output");
    b.output("next", next).expect("output");
    // The un-normalised next numerator is observable as well (it feeds the
    // iteration register file in the full design).
    b.output("next_a", next_a).expect("output");
    b.finish().expect("gcd is structurally valid")
}

/// `vender`: a vending-machine price/change datapath with two multipliers
/// inside conditional branches.
///
/// Table I row: critical path 5, 6 MUX, 3 COMP, 3 `+`, 3 `−`, 2 `×`.
pub fn vender() -> Cdfg {
    let mut b = CdfgBuilder::new("vender");
    let item = b.input("item");
    let coins = b.input("coins");
    let price = b.input("price");
    let stock = b.input("stock");
    let tax = b.input("tax");

    let sum = b.add(coins, tax).expect("ops");
    let avail = b.sub(stock, item).expect("ops");
    let c1 = b.gt(coins, price).expect("ops");
    let c2 = b.gt(stock, item).expect("ops");
    let c3 = b.gt(item, tax).expect("ops");

    // Price computation: bulk pricing needs a multiply, single pricing an
    // add; only one of the two is ever used.
    let bulk = b.mul(sum, price).expect("ops");
    let single = b.add(sum, price).expect("ops");
    let m1 = b.mux(c1, single, bulk).expect("ops");

    // Discount computation: again a multiply or a subtract, exclusively.
    let disc = b.mul(avail, tax).expect("ops");
    let full = b.sub(avail, tax).expect("ops");
    let m2 = b.mux(c2, full, disc).expect("ops");

    // Change computation on the selected values.
    let change_sub = b.sub(m1, m2).expect("ops");
    let change_add = b.add(m1, m2).expect("ops");
    let m3 = b.mux(c3, change_add, change_sub).expect("ops");

    // Token/credit side channel.
    let m4 = b.mux(c2, item, price).expect("ops");
    let m5 = b.mux(c3, m4, coins).expect("ops");
    let m6 = b.mux(c1, m5, stock).expect("ops");

    b.output("dispense", m3).expect("output");
    b.output("credit", m6).expect("output");
    b.finish().expect("vender is structurally valid")
}

/// `cordic`: a 16-iteration unrolled CORDIC rotator.
///
/// Table I row: critical path 48, 47 MUX, 16 COMP, 43 `+`, 46 `−`
/// (the per-iteration shifts are constant-shift operations that the paper's
/// table does not list).
pub fn cordic() -> Cdfg {
    build_cordic("cordic", 14, true)
}

/// A CORDIC rotator with `iterations` full iterations and no trimmed tail —
/// useful for smaller experiments (e.g. the pipelining example).
pub fn cordic_with_iterations(iterations: u32) -> Cdfg {
    build_cordic(&format!("cordic{iterations}"), iterations, false)
}

/// A CORDIC rotator under a caller-chosen name.
///
/// The synthetic workload generator uses this to register scaled variants
/// whose names embed the generator parameters (the sweep engine keys its
/// circuit registry and prefix cache on the name, so the name must be a
/// faithful function of the structure).
pub fn cordic_named(name: &str, iterations: u32, trimmed_tail: bool) -> Cdfg {
    build_cordic(name, iterations, trimmed_tail)
}

/// Arc-tangent table entries for the angle accumulator, scaled to an 8-bit
/// integer angle; the precise values do not matter for scheduling.
fn atan_entry(i: u32) -> i64 {
    (90 >> i).max(1)
}

fn build_cordic(name: &str, full_iterations: u32, trimmed_tail: bool) -> Cdfg {
    let mut b = CdfgBuilder::new(name);
    let mut x = b.input("x0");
    let mut y = b.input("y0");
    let mut z = b.input("z0");
    let zero = b.constant(0);

    for i in 0..full_iterations {
        let shift = b.constant(i64::from(i));
        let angle = b.constant(atan_entry(i));
        // Rotation direction from the sign of the residual angle.
        let dir = b.ge(z, zero).expect("ops");

        let xs = b.op(Op::Shr, &[y, shift]).expect("ops");
        let ys = b.op(Op::Shr, &[x, shift]).expect("ops");

        let x_add = b.add(x, xs).expect("ops");
        let x_sub = b.sub(x, xs).expect("ops");
        x = b.mux(dir, x_add, x_sub).expect("ops");

        let y_add = b.add(y, ys).expect("ops");
        let y_sub = b.sub(y, ys).expect("ops");
        y = b.mux(dir, y_sub, y_add).expect("ops");

        let z_add = b.add(z, angle).expect("ops");
        let z_sub = b.sub(z, angle).expect("ops");
        z = b.mux(dir, z_add, z_sub).expect("ops");
    }

    if trimmed_tail {
        // Iteration 15: the y channel is updated unconditionally and the
        // angle accumulator only needs the "rotate" branch.
        let i = full_iterations;
        let shift = b.constant(i64::from(i));
        let angle = b.constant(atan_entry(i));
        let dir = b.ge(z, zero).expect("ops");

        let xs = b.op(Op::Shr, &[y, shift]).expect("ops");
        let ys = b.op(Op::Shr, &[x, shift]).expect("ops");
        let x_add = b.add(x, xs).expect("ops");
        let x_sub = b.sub(x, xs).expect("ops");
        x = b.mux(dir, x_add, x_sub).expect("ops");

        y = b.sub(y, ys).expect("ops");

        let z_sub = b.sub(z, angle).expect("ops");
        z = b.mux(dir, z, z_sub).expect("ops");

        // Iteration 16: only selections and one subtraction remain.
        let i = full_iterations + 1;
        let shift = b.constant(i64::from(i));
        let dir = b.ge(z, zero).expect("ops");

        let new_x = b.mux(dir, y, x).expect("ops");
        let ys = b.op(Op::Shr, &[x, shift]).expect("ops");
        let y_sub = b.sub(y, ys).expect("ops");
        let new_y = b.mux(dir, y, y_sub).expect("ops");
        let new_z = b.mux(dir, x, z).expect("ops");
        x = new_x;
        y = new_y;
        z = new_z;
    }

    b.output("x_out", x).expect("output");
    b.output("y_out", y).expect("output");
    b.output("z_out", z).expect("output");
    b.finish().expect("cordic is structurally valid")
}

/// Convenience: the node id of the `index`-th primary output's driver
/// (handy in tests and examples that want to inspect the final
/// multiplexor).
///
/// Returns `None` when `index` is out of range for the circuit's outputs —
/// callers must handle that case explicitly rather than assume every
/// benchmark has a driver at every index (`gcd` has three outputs, the
/// others fewer; generated circuits have arbitrarily many).
pub fn output_driver(cdfg: &Cdfg, index: usize) -> Option<NodeId> {
    cdfg.outputs().get(index).map(|&o| cdfg.operands(o)[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::CircuitStats;
    use std::collections::BTreeMap;

    fn assert_table1(
        cdfg: &Cdfg,
        cp: u32,
        mux: usize,
        comp: usize,
        add: usize,
        sub: usize,
        mul: usize,
    ) {
        let stats = CircuitStats::of(cdfg);
        assert_eq!(stats.critical_path, cp, "{}: critical path", cdfg.name());
        assert_eq!(stats.counts.mux, mux, "{}: mux count", cdfg.name());
        assert_eq!(stats.counts.comp, comp, "{}: comp count", cdfg.name());
        assert_eq!(stats.counts.add, add, "{}: add count", cdfg.name());
        assert_eq!(stats.counts.sub, sub, "{}: sub count", cdfg.name());
        assert_eq!(stats.counts.mul, mul, "{}: mul count", cdfg.name());
    }

    #[test]
    fn dealer_matches_table_1() {
        assert_table1(&dealer(), 4, 3, 3, 2, 1, 0);
    }

    #[test]
    fn gcd_matches_table_1() {
        assert_table1(&gcd(), 5, 6, 2, 0, 1, 0);
    }

    #[test]
    fn vender_matches_table_1() {
        assert_table1(&vender(), 5, 6, 3, 3, 3, 2);
    }

    #[test]
    fn cordic_matches_table_1() {
        assert_table1(&cordic(), 48, 47, 16, 43, 46, 0);
    }

    #[test]
    fn abs_diff_matches_figure_1() {
        assert_table1(&abs_diff(), 2, 1, 1, 0, 2, 0);
    }

    #[test]
    fn abs_diff_silage_source_compiles_to_the_same_structure() {
        let from_source = silage::compile(abs_diff_silage_source()).unwrap();
        let built = abs_diff();
        assert_eq!(from_source.op_counts(), built.op_counts());
        assert_eq!(from_source.critical_path_length(), built.critical_path_length());
    }

    #[test]
    fn all_benchmarks_cover_the_paper_rows() {
        let benches = all_benchmarks();
        assert_eq!(benches.len(), 4);
        assert_eq!(benches[0].name, "dealer");
        assert_eq!(benches[3].control_steps, vec![48, 52]);
        for bench in &benches {
            bench.cdfg.validate().unwrap();
        }
    }

    #[test]
    fn gcd_evaluates_a_correct_iteration() {
        let g = gcd();
        let mut inputs = BTreeMap::new();
        inputs.insert("a".to_owned(), 12);
        inputs.insert("b".to_owned(), 8);
        let out = g.evaluate(&inputs);
        // a > b, not equal: next keeps iterating with (12-8, 8) = (4, 8);
        // `next` is the larger remaining operand ordering applied to (4, 8).
        assert_eq!(out["result"], 0, "not finished yet");
        assert!(out["next"] == 4 || out["next"] == 8);

        inputs.insert("a".to_owned(), 6);
        inputs.insert("b".to_owned(), 6);
        let out = g.evaluate(&inputs);
        assert_eq!(out["result"], 6, "equal operands terminate with the gcd");
    }

    #[test]
    fn dealer_evaluates_both_branches() {
        let g = dealer();
        let mut inputs = BTreeMap::new();
        inputs.insert("a".to_owned(), 9);
        inputs.insert("b".to_owned(), 3);
        inputs.insert("c".to_owned(), 2);
        inputs.insert("d".to_owned(), 1);
        // a > b, so the running sum a+b is dealt directly.
        assert_eq!(g.evaluate(&inputs)["deal"], 12);
        inputs.insert("a".to_owned(), 1);
        // a <= b: the secondary computation is selected.
        let out = g.evaluate(&inputs);
        assert_ne!(out["deal"], 4 + 9, "secondary branch selected");
    }

    #[test]
    fn cordic_with_fewer_iterations_scales_linearly() {
        let four = cordic_with_iterations(4);
        let stats = CircuitStats::of(&four);
        assert_eq!(stats.counts.mux, 12);
        assert_eq!(stats.counts.comp, 4);
        assert_eq!(stats.counts.add, 12);
        assert_eq!(stats.counts.sub, 12);
        assert_eq!(stats.critical_path, 12);
    }

    #[test]
    fn cordic_rotation_preserves_magnitude_roughly() {
        // A sanity check that the structure really is a rotator: rotating
        // (64, 0) by a positive angle moves amplitude into y while the angle
        // accumulator decreases.
        let g = cordic_with_iterations(4);
        let mut inputs = BTreeMap::new();
        inputs.insert("x0".to_owned(), 64);
        inputs.insert("y0".to_owned(), 0);
        inputs.insert("z0".to_owned(), 45);
        let out = g.evaluate(&inputs);
        assert!(out["y_out"] != 0, "rotation moved energy into y");
        assert!(out["z_out"] < 45, "residual angle decreased");
    }

    #[test]
    fn output_driver_returns_the_final_mux() {
        let g = abs_diff();
        let driver = output_driver(&g, 0).unwrap();
        assert!(g.node(driver).unwrap().op.is_mux());
    }

    #[test]
    fn output_driver_is_none_exactly_past_the_last_output() {
        // The `None` contract, pinned per benchmark: every in-range index
        // has a driver, the first out-of-range index (and far beyond) has
        // none.  Callers that unwrap blindly would panic on `dealer`'s
        // third output or `vender`'s fourth — this is the audit trail.
        for bench in all_benchmarks() {
            let n = bench.cdfg.outputs().len();
            for i in 0..n {
                assert!(output_driver(&bench.cdfg, i).is_some(), "{} output {i}", bench.name);
            }
            assert!(output_driver(&bench.cdfg, n).is_none(), "{} boundary", bench.name);
            assert!(output_driver(&bench.cdfg, usize::MAX).is_none(), "{} far", bench.name);
        }
        assert!(output_driver(&abs_diff(), 5).is_none());
    }

    #[test]
    fn cordic_named_matches_cordic_with_iterations_structurally() {
        let canonical = cordic_with_iterations(4);
        let named = cordic_named("gen-cordic-i4-0000", 4, false);
        assert_eq!(named.name(), "gen-cordic-i4-0000");
        assert_eq!(named.op_counts(), canonical.op_counts());
        assert_eq!(named.critical_path_length(), canonical.critical_path_length());
        let tail = cordic_named("tail", 14, true);
        assert_eq!(tail.op_counts(), cordic().op_counts(), "trimmed tail matches the paper build");
    }
}
