//! Edge-case backfill: admission during shutdown observed over the wire,
//! and per-job cache deltas ([`engine::CacheStats::since`]) staying
//! correct across a cancelled job in between.

use std::time::{Duration, Instant};

use engine::Scenario;
use service::{
    Client, Daemon, DaemonConfig, JobSpec, JobState, RejectReason, Request, Response, ServiceError,
};

fn start_daemon(tag: &str) -> service::DaemonHandle {
    let socket =
        std::env::temp_dir().join(format!("sweepd-edge-{tag}-{}.sock", std::process::id()));
    Daemon::start(DaemonConfig { socket, threads: 1, limits: Default::default() })
        .expect("daemon starts")
}

/// A generated job big enough (single engine thread, debug build) to be
/// observably mid-run when the tests act on it.
const SLOW_GEN: &str = "family=mux-tree,seed=3,count=60";

fn slow_job() -> JobSpec {
    JobSpec::Sweep {
        gen: vec![SLOW_GEN.to_owned()],
        scenarios: service::plans::gen_scenarios(&[SLOW_GEN.to_owned()]).expect("gen scenarios"),
        policy: engine::BudgetPolicy::Fixed,
        gate_level: None,
    }
}

fn poll_state(socket: &std::path::Path, id: u64, wanted: impl Fn(&service::JobStatus) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut client = Client::connect(socket).expect("connect for polling");
    loop {
        if let Response::Status { job, .. } =
            client.request(&Request::Status { id }).expect("status request")
        {
            if wanted(&job) {
                return;
            }
        }
        assert!(Instant::now() < deadline, "timed out polling job {id}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Shutdown that begins while jobs are queued: the queued job is
/// cancelled, and a submission racing in *after* shutdown started — on a
/// connection that was already open — gets the typed shutting-down
/// rejection, not a hangup and not a queue slot.
#[test]
fn mid_queue_shutdown_rejects_new_work_with_the_typed_reason() {
    let daemon = start_daemon("shutdown");
    let socket = daemon.socket().to_path_buf();

    // Keep a connection open from before the shutdown begins.
    let mut early_client = Client::connect(&socket).expect("connect before shutdown");

    // Occupy the executor; queue a second job behind it.
    let running = {
        let socket = socket.clone();
        std::thread::spawn(move || {
            Client::connect(&socket).expect("connect").submit_and_wait(slow_job())
        })
    };
    poll_state(&socket, 1, |job| job.state == JobState::Running);
    let queued = {
        let socket = socket.clone();
        std::thread::spawn(move || {
            Client::connect(&socket)
                .expect("connect")
                .submit_and_wait(JobSpec::sweep(vec![Scenario::new("dealer", 4)]))
        })
    };
    poll_state(&socket, 2, |job| job.state == JobState::Queued);

    daemon.shutdown();

    // The queued job never runs; its submitter sees a cancelled terminal.
    let queued = queued.join().expect("queued submitter").expect("queued outcome");
    assert_eq!(queued.state, JobState::Cancelled);
    assert!(queued.report.is_none());

    // The running job is asked to stop at its next scenario boundary.
    let running = running.join().expect("running submitter").expect("running outcome");
    assert_eq!(running.state, JobState::Cancelled, "shutdown cancels the running job");

    // A submission on the pre-shutdown connection is turned away with the
    // typed reason — the queue has room, but the daemon is draining.
    let err = early_client
        .submit(JobSpec::sweep(vec![Scenario::new("gcd", 5)]))
        .expect_err("post-shutdown submissions are rejected");
    match err {
        ServiceError::Rejected(rejection) => {
            assert_eq!(rejection.reason, RejectReason::ShuttingDown, "{rejection}");
        }
        other => panic!("expected a typed rejection, got {other}"),
    }

    daemon.join();
}

/// A cancelled job's prefixes land in the *global* cache counters, but a
/// later job's own delta ([`engine::CacheStats::since`] from its start
/// baseline) must not absorb them: the executor snapshots the baseline
/// when the job starts, after the cancelled job's counters settled.
#[test]
fn cancelled_jobs_do_not_leak_misses_into_the_next_jobs_delta() {
    let daemon = start_daemon("cache-delta");
    let socket = daemon.socket().to_path_buf();
    let small = JobSpec::sweep(vec![Scenario::new("dealer", 4), Scenario::new("gcd", 5)]);

    // Job 1: computes its prefixes cold.
    let first = Client::connect(&socket)
        .expect("connect")
        .submit_and_wait(small.clone())
        .expect("first job");
    assert_eq!(first.state, JobState::Done);
    let first_cache = first.job_cache.expect("finished jobs carry a delta");
    assert!(first_cache.misses > 0, "cold job computes: {first_cache:?}");

    // Job 2: a big generated job, cancelled mid-run.  Its partly computed
    // prefixes stay in the shared cache (they are correct and reusable),
    // but the job itself reports no delta.
    let submitter = {
        let socket = socket.clone();
        std::thread::spawn(move || {
            Client::connect(&socket).expect("connect").submit_and_wait(slow_job())
        })
    };
    poll_state(&socket, 2, |job| job.state == JobState::Running && job.completed > 0);
    let response = Client::connect(&socket)
        .expect("connect")
        .request(&Request::Cancel { id: 2 })
        .expect("cancel request");
    assert!(matches!(response, Response::Cancelled { .. }));
    let cancelled = submitter.join().expect("submitter").expect("cancelled outcome");
    assert_eq!(cancelled.state, JobState::Cancelled);
    assert!(cancelled.job_cache.is_none(), "cancelled jobs report no delta");

    // The cancelled job's misses are visible globally …
    let Response::Jobs { cache: global, .. } =
        Client::connect(&socket).expect("connect").request(&Request::List).expect("list request")
    else {
        panic!("list answered unexpectedly")
    };
    assert!(
        global.misses > first_cache.misses,
        "the cancelled job computed prefixes: {global:?} vs {first_cache:?}"
    );

    // … but job 3 — identical to job 1 — sees a pure-hit delta of exactly
    // its own lookups, none of the cancelled job's.
    let third =
        Client::connect(&socket).expect("connect").submit_and_wait(small).expect("third job");
    assert_eq!(third.state, JobState::Done);
    let third_cache = third.job_cache.expect("finished jobs carry a delta");
    assert_eq!(third_cache.misses, 0, "everything was already cached: {third_cache:?}");
    assert_eq!(
        third_cache.hits,
        first_cache.hits + first_cache.misses,
        "the delta is exactly this job's lookups"
    );
    assert_eq!(third.report, first.report, "cache reuse never changes bytes");

    daemon.shutdown();
    daemon.join();
}
