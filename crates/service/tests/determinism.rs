//! The tentpole acceptance bar: a job's final report is **byte-identical**
//! whether it runs in-process, against a cold daemon, as a warm
//! re-submission, interleaved with concurrent jobs, or after a neighbouring
//! job was cancelled.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Duration;

use engine::report::record_json;
use engine::{Engine, Scenario, SchedulerKind, SweepPlan, SweepReport};
use service::{Client, Daemon, DaemonConfig, DaemonHandle, JobSpec, JobState};

static SOCKET_COUNTER: AtomicU32 = AtomicU32::new(0);

fn unique_socket(tag: &str) -> PathBuf {
    let n = SOCKET_COUNTER.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("sweepd-{tag}-{}-{n}.sock", std::process::id()))
}

fn start_daemon(tag: &str) -> DaemonHandle {
    Daemon::start(DaemonConfig::new(unique_socket(tag))).expect("daemon starts")
}

/// The paper matrix (Table I circuits at their Table II budgets under both
/// schedulers), without the debug-build-heavy cordic — the same shape the
/// CI smoke's `sweep --small` runs.
fn paper_scenarios() -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for bench in circuits::all_benchmarks() {
        if bench.name == "cordic" {
            continue;
        }
        for &steps in &bench.control_steps {
            for scheduler in [SchedulerKind::ForceDirected, SchedulerKind::List] {
                scenarios.push(Scenario::new(bench.name.as_str(), steps).scheduler(scheduler));
            }
        }
    }
    scenarios
}

const GEN_SPEC: &str = "family=random-dag,seed=7,count=50";

fn in_process_report(scenarios: Vec<Scenario>, gen: &[String]) -> SweepReport {
    let mut engine = Engine::new();
    engine.register_benchmarks(service::plans::generate_batch(gen).expect("valid specs"));
    let plan = SweepPlan::builder().scenarios(scenarios).build().expect("valid plan");
    engine.run(&plan, 2)
}

#[test]
fn paper_matrix_is_byte_identical_cold_warm_and_after_neighbor_cancellation() {
    let baseline = in_process_report(paper_scenarios(), &[]);
    let baseline_json = baseline.to_json();
    let baseline_records: Vec<String> = baseline.records.iter().map(record_json).collect();

    let daemon = start_daemon("paper");
    let mut client = Client::connect(daemon.socket()).expect("connect");

    // Cold: the daemon's fresh cache must not change a single byte.
    let cold = client.submit_and_wait(JobSpec::sweep(paper_scenarios())).expect("cold job");
    assert_eq!(cold.state, JobState::Done);
    assert_eq!(cold.failures, Some(0));
    assert_eq!(cold.report.as_deref(), Some(baseline_json.as_str()));
    assert_eq!(cold.records, baseline_records, "records stream in plan order");
    let cold_cache = cold.job_cache.expect("cache delta");
    assert!(cold_cache.misses > 0, "a cold job computes prefixes");

    // Warm: byte-identical again, and every prefix lookup hits.
    let warm = client.submit_and_wait(JobSpec::sweep(paper_scenarios())).expect("warm job");
    assert_eq!(warm.report.as_deref(), Some(baseline_json.as_str()));
    assert_eq!(warm.records, baseline_records);
    let warm_cache = warm.job_cache.expect("cache delta");
    assert_eq!(warm_cache.misses, 0, "warm re-submit misses nothing");
    assert!(warm_cache.hits > 0);
    assert_eq!(warm_cache.since(warm_cache).hit_rate(), 0.0, "sanity: since() zeroes itself");

    // Cancel a neighbouring gen job mid-queue/mid-run, then re-submit the
    // paper matrix: the interrupted neighbour must leave no trace.
    let socket = daemon.socket().to_path_buf();
    let neighbor = std::thread::spawn(move || {
        let mut client = Client::connect(&socket).expect("connect");
        let spec = JobSpec::Sweep {
            gen: vec!["family=mux-tree,seed=3,count=20".to_owned()],
            scenarios: service::plans::gen_scenarios(&[
                "family=mux-tree,seed=3,count=20".to_owned()
            ])
            .expect("valid spec"),
            policy: engine::BudgetPolicy::Fixed,
            gate_level: None,
        };
        let id = client.submit(spec).expect("submit");
        (id, client.wait(id, |_, _| {}).expect("terminal event").state)
    });
    // Cancel it from this connection as soon as it is visible; whether it
    // is still queued or already running, the replayed matrix below must
    // not notice.
    let cancelled_state = loop {
        match client.request(&service::Request::Cancel { id: 3 }).expect("cancel") {
            service::Response::Cancelled { state, .. } => break state,
            service::Response::Error { .. } => std::thread::sleep(Duration::from_millis(5)),
            other => panic!("unexpected response {other:?}"),
        }
    };
    assert!(matches!(cancelled_state, JobState::Queued | JobState::Running | JobState::Cancelled));
    let (neighbor_id, neighbor_state) = neighbor.join().expect("neighbor thread");
    assert_eq!(neighbor_id, 3);
    assert_eq!(neighbor_state, JobState::Cancelled);

    let replay = client.submit_and_wait(JobSpec::sweep(paper_scenarios())).expect("replay job");
    assert_eq!(replay.report.as_deref(), Some(baseline_json.as_str()));
    assert_eq!(replay.records, baseline_records);

    daemon.shutdown();
    daemon.join();
}

#[test]
fn generated_plan_is_byte_identical_even_interleaved_with_concurrent_jobs() {
    let gen = vec![GEN_SPEC.to_owned()];
    let scenarios = service::plans::gen_scenarios(&gen).expect("valid spec");
    let baseline_json = in_process_report(scenarios.clone(), &gen).to_json();

    let daemon = start_daemon("gen");

    // Three clients race their submissions; the single-executor FIFO must
    // keep every result independent of arrival order.
    let socket = daemon.socket().to_path_buf();
    let target = {
        let socket = socket.clone();
        let gen = gen.clone();
        let scenarios = scenarios.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&socket).expect("connect");
            client
                .submit_and_wait(JobSpec::Sweep {
                    gen,
                    scenarios,
                    policy: engine::BudgetPolicy::Fixed,
                    gate_level: None,
                })
                .expect("target job")
        })
    };
    let paper = {
        let socket = socket.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&socket).expect("connect");
            client.submit_and_wait(JobSpec::sweep(paper_scenarios())).expect("paper job")
        })
    };
    let explore = {
        let socket = socket.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&socket).expect("connect");
            client
                .submit_and_wait(JobSpec::explore(vec![
                    engine::ExploreRequest::new("dealer").budgets([4, 6])
                ]))
                .expect("explore job")
        })
    };

    let target = target.join().expect("target thread");
    assert_eq!(target.state, JobState::Done);
    assert_eq!(target.failures, Some(0));
    assert_eq!(target.report.as_deref(), Some(baseline_json.as_str()));
    assert!(target.progress_events > 0, "progress streamed");

    let paper = paper.join().expect("paper thread");
    assert_eq!(paper.state, JobState::Done);
    let explore = explore.join().expect("explore thread");
    assert_eq!(explore.state, JobState::Done);
    assert!(explore.report.is_some());

    // Warm re-submission of the generated plan: byte-identical, 100% hits.
    let mut client = Client::connect(&socket).expect("connect");
    let warm = client
        .submit_and_wait(JobSpec::Sweep {
            gen,
            scenarios,
            policy: engine::BudgetPolicy::Fixed,
            gate_level: None,
        })
        .expect("warm job");
    assert_eq!(warm.report.as_deref(), Some(baseline_json.as_str()));
    let cache = warm.job_cache.expect("cache delta");
    assert_eq!((cache.misses, cache.hits > 0), (0, true), "warm gen job is all hits");

    daemon.shutdown();
    daemon.join();
}

#[test]
fn explore_jobs_match_in_process_exploration_byte_for_byte() {
    let requests = vec![
        engine::ExploreRequest::new("dealer").budgets([4, 5]),
        engine::ExploreRequest::new("gcd"),
    ];
    let options = engine::ExploreOptions::new()
        .policy(engine::BudgetPolicy::Pareto)
        .ceiling(engine::BudgetCeiling::CriticalPathPlus(3))
        .scaling(engine::DelayScaling::Quadratic);
    let baseline = Engine::new().explore(&requests, &options, 2).to_json();

    let daemon = start_daemon("explore");
    let mut client = Client::connect(daemon.socket()).expect("connect");
    let spec = JobSpec::Explore {
        gen: Vec::new(),
        requests,
        policy: engine::BudgetPolicy::Pareto,
        ceiling: engine::BudgetCeiling::CriticalPathPlus(3),
        voltage: engine::VoltagePolicy::Global(engine::DelayScaling::Quadratic),
        branch_model: engine::BranchModel::Fair,
    };
    let cold = client.submit_and_wait(spec.clone()).expect("cold explore");
    assert_eq!(cold.state, JobState::Done);
    assert_eq!(cold.report.as_deref(), Some(baseline.as_str()));
    let warm = client.submit_and_wait(spec).expect("warm explore");
    assert_eq!(warm.report.as_deref(), Some(baseline.as_str()));
    let cache = warm.job_cache.expect("cache delta");
    assert_eq!(cache.misses, 0, "warm exploration is all hits");

    // Fine-grained DVS jobs honour the same contract: the daemon's per-op
    // voltage exploration is byte-identical to the in-process run, cold
    // and warm alike.
    let dvs_requests = vec![engine::ExploreRequest::new("dealer")];
    let dvs_options = engine::ExploreOptions::new()
        .policy(engine::BudgetPolicy::FullRange)
        .ceiling(engine::BudgetCeiling::CriticalPathPlus(3))
        .voltage(engine::VoltagePolicy::PerOp(engine::VoltagePreset::ThreeLevel));
    let dvs_baseline = Engine::new().explore(&dvs_requests, &dvs_options, 2).to_json();
    let dvs_spec = JobSpec::Explore {
        gen: Vec::new(),
        requests: dvs_requests,
        policy: engine::BudgetPolicy::FullRange,
        ceiling: engine::BudgetCeiling::CriticalPathPlus(3),
        voltage: engine::VoltagePolicy::PerOp(engine::VoltagePreset::ThreeLevel),
        branch_model: engine::BranchModel::Fair,
    };
    let dvs_cold = client.submit_and_wait(dvs_spec.clone()).expect("cold dvs explore");
    assert_eq!(dvs_cold.state, JobState::Done);
    assert_eq!(dvs_cold.report.as_deref(), Some(dvs_baseline.as_str()));
    let dvs_warm = client.submit_and_wait(dvs_spec).expect("warm dvs explore");
    assert_eq!(dvs_warm.report.as_deref(), Some(dvs_baseline.as_str()));

    daemon.shutdown();
    daemon.join();
}
