//! Daemon soak test: seeded random interleavings of submit / cancel /
//! status / list against a **real** `sweepd` process, with sweep and
//! online jobs mixed.
//!
//! The contract under load is the same as solo: every job that completes
//! must produce a report **byte-identical** to an uncontended in-process
//! run of the same spec, online records must arrive in event order, and
//! after the storm drains the job table must account for every
//! submission exactly once — no leaked queued or running entries.

use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use engine::{Engine, Scenario, SweepPlan};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use service::{Client, JobOutcome, JobSpec, JobState, Request, Response};

struct DaemonProc {
    child: Child,
    socket: PathBuf,
}

impl DaemonProc {
    fn start(tag: &str) -> DaemonProc {
        let socket =
            std::env::temp_dir().join(format!("sweepd-soak-{tag}-{}.sock", std::process::id()));
        let child = Command::new(env!("CARGO_BIN_EXE_sweepd"))
            .arg("--socket")
            .arg(&socket)
            .arg("--threads")
            .arg("2")
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("sweepd spawns");
        assert!(
            service::wait_for_socket(&socket, Duration::from_secs(10)),
            "sweepd did not start listening"
        );
        DaemonProc { child, socket }
    }

    fn shutdown(mut self) {
        let mut client = Client::connect(&self.socket).expect("connect for shutdown");
        let response = client.request(&Request::Shutdown).expect("shutdown request");
        assert_eq!(response, Response::ShuttingDown);
        let _ = self.child.wait();
    }
}

impl Drop for DaemonProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

const ONLINE_A: &str = "family=mux-tree,seed=7,count=2;events=25,eseed=3,churn=150,rescale=150";
const ONLINE_B: &str = "family=random-dag,seed=5,count=2;events=30,eseed=8,churn=0,rescale=0";
const GEN_SWEEP: &str = "family=mux-tree,seed=11,count=2";

/// The job pool every soak client draws from (paper sweep, generated
/// sweep, and two online streams).
fn job_pool() -> Vec<JobSpec> {
    let gen_scenarios =
        service::plans::gen_scenarios(&[GEN_SWEEP.to_owned()]).expect("gen scenarios");
    vec![
        JobSpec::sweep(vec![Scenario::new("dealer", 4), Scenario::new("gcd", 5)]),
        JobSpec::Sweep {
            gen: vec![GEN_SWEEP.to_owned()],
            scenarios: gen_scenarios,
            policy: engine::BudgetPolicy::Fixed,
            gate_level: None,
        },
        JobSpec::online(ONLINE_A),
        JobSpec::online(ONLINE_B),
    ]
}

/// Uncontended in-process baseline report for each pool entry, in order.
fn baselines(pool: &[JobSpec]) -> Vec<String> {
    pool.iter()
        .map(|spec| match spec {
            JobSpec::Sweep { gen, scenarios, policy, .. } => {
                let mut engine = Engine::new();
                engine.register_benchmarks(service::plans::generate_batch(gen).expect("gen batch"));
                let plan = SweepPlan::builder()
                    .scenarios(scenarios.iter().cloned())
                    .budget_policy(*policy)
                    .build()
                    .expect("plan builds");
                engine.run(&plan, 2).to_json()
            }
            JobSpec::Online { stream } => {
                let stream = gen::StreamSpec::parse(stream).expect("stream parses");
                engine::online::run_stream(&stream).expect("stream runs").to_json()
            }
            JobSpec::Explore { .. } => unreachable!("pool has no explore jobs"),
        })
        .collect()
}

/// One soak client: a seeded action sequence of submissions (sometimes
/// cancelled mid-flight), status probes and lists.  Returns every job
/// outcome it collected, tagged with its pool index.
fn soak_client(socket: PathBuf, seed: u64, pool: Vec<JobSpec>) -> Vec<(usize, JobOutcome)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut outcomes = Vec::new();
    for _ in 0..5 {
        match rng.gen_range(0u32..10) {
            // Mostly: submit a random pool job and wait it out.
            0..=6 => {
                let which = rng.gen_range(0usize..pool.len());
                let outcome = Client::connect(&socket)
                    .expect("connect")
                    .submit_and_wait(pool[which].clone())
                    .expect("submit and wait");
                outcomes.push((which, outcome));
            }
            // Sometimes: submit, cancel from a second connection, wait.
            7 => {
                let which = rng.gen_range(0usize..pool.len());
                let mut submitter = Client::connect(&socket).expect("connect");
                let id = submitter.submit(pool[which].clone()).expect("submit");
                let response = Client::connect(&socket)
                    .expect("connect")
                    .request(&Request::Cancel { id })
                    .expect("cancel request");
                assert!(
                    matches!(response, Response::Cancelled { .. }),
                    "cancel answered {response:?}"
                );
                let outcome = submitter.wait(id, |_, _| {}).expect("wait after cancel");
                outcomes.push((which, outcome));
            }
            // Status probe of an arbitrary id (unknown ids are fine — the
            // daemon answers with a typed error, not a hangup).
            8 => {
                let id = rng.gen_range(1u64..20);
                let response = Client::connect(&socket)
                    .expect("connect")
                    .request(&Request::Status { id })
                    .expect("status request");
                assert!(
                    matches!(response, Response::Status { .. } | Response::Error { .. }),
                    "status answered {response:?}"
                );
            }
            _ => {
                let response = Client::connect(&socket)
                    .expect("connect")
                    .request(&Request::List)
                    .expect("list request");
                assert!(matches!(response, Response::Jobs { .. }), "list answered {response:?}");
            }
        }
    }
    outcomes
}

#[test]
fn interleaved_storm_keeps_reports_identical_and_leaks_no_jobs() {
    let pool = job_pool();
    let baselines = baselines(&pool);
    let daemon = DaemonProc::start("storm");

    let clients: Vec<_> = (0u64..3)
        .map(|seed| {
            let socket = daemon.socket.clone();
            let pool = pool.clone();
            std::thread::spawn(move || soak_client(socket, 0xDAC1996 + seed, pool))
        })
        .collect();
    let outcomes: Vec<(usize, JobOutcome)> =
        clients.into_iter().flat_map(|t| t.join().expect("soak client")).collect();
    assert!(!outcomes.is_empty(), "the seeded storm submitted nothing");

    let mut done = 0usize;
    for (which, outcome) in &outcomes {
        match outcome.state {
            JobState::Done => {
                done += 1;
                assert_eq!(outcome.failures, Some(0), "job of pool[{which}]: {outcome:?}");
                assert_eq!(
                    outcome.report.as_deref(),
                    Some(baselines[*which].as_str()),
                    "pool[{which}] report drifted under load"
                );
                // Online records stream live and must arrive in event order.
                if let JobSpec::Online { stream } = &pool[*which] {
                    let events = gen::StreamSpec::parse(stream).expect("stream parses").events;
                    assert_eq!(outcome.records.len(), events, "pool[{which}] record count");
                    for (i, record) in outcome.records.iter().enumerate() {
                        assert!(
                            record.starts_with(&format!("{{\"index\": {i},")),
                            "pool[{which}] record {i} out of order: {record}"
                        );
                    }
                }
            }
            JobState::Cancelled => {
                assert!(outcome.report.is_none(), "cancelled jobs carry no report: {outcome:?}");
            }
            state => panic!("pool[{which}] ended {state}: {outcome:?}"),
        }
    }
    assert!(done > 0, "no job survived to completion; weaken the cancel mix");

    // Drain check: every submission is accounted for, terminally.
    let response =
        Client::connect(&daemon.socket).expect("connect").request(&Request::List).expect("list");
    let Response::Jobs { jobs, .. } = response else { panic!("list answered {response:?}") };
    assert_eq!(jobs.len(), outcomes.len(), "job table leaked or lost entries");
    for job in &jobs {
        assert!(job.state.is_terminal(), "job {} leaked in state {}", job.id, job.state);
    }

    daemon.shutdown();
}

/// Re-running a finished online job on the same daemon reproduces the
/// same bytes the uncontended baseline produced — the session holds no
/// daemon-global state.
#[test]
fn online_resubmission_on_a_warm_daemon_is_byte_stable() {
    let daemon = DaemonProc::start("warm-online");
    let baseline =
        engine::online::run_stream(&gen::StreamSpec::parse(ONLINE_A).expect("stream parses"))
            .expect("stream runs")
            .to_json();
    for round in 0..2 {
        let outcome = Client::connect(&daemon.socket)
            .expect("connect")
            .submit_and_wait(JobSpec::online(ONLINE_A))
            .expect("submit and wait");
        assert_eq!(outcome.state, JobState::Done, "round {round}: {outcome:?}");
        assert_eq!(outcome.report.as_deref(), Some(baseline.as_str()), "round {round}");
    }
    daemon.shutdown();
}
