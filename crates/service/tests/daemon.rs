//! Black-box tests of the `sweepd`/`sweepctl` binaries: admission
//! rejections, queued-job cancellation and running-job cancellation, all
//! exercised over the real socket protocol.

use std::path::PathBuf;
use std::process::{Child, Command, Output, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::{Duration, Instant};

static SOCKET_COUNTER: AtomicU32 = AtomicU32::new(0);

struct DaemonProc {
    child: Child,
    socket: PathBuf,
}

impl DaemonProc {
    /// Spawns `sweepd` on a unique socket and waits until it listens.
    fn start(tag: &str, extra_args: &[&str]) -> DaemonProc {
        let n = SOCKET_COUNTER.fetch_add(1, Ordering::Relaxed);
        let socket =
            std::env::temp_dir().join(format!("sweepd-bin-{tag}-{}-{n}.sock", std::process::id()));
        let child = Command::new(env!("CARGO_BIN_EXE_sweepd"))
            .arg("--socket")
            .arg(&socket)
            .args(extra_args)
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .spawn()
            .expect("sweepd spawns");
        assert!(
            service::wait_for_socket(&socket, Duration::from_secs(10)),
            "sweepd did not start listening"
        );
        DaemonProc { child, socket }
    }

    fn ctl(&self, args: &[&str]) -> Output {
        Command::new(env!("CARGO_BIN_EXE_sweepctl"))
            .arg("--socket")
            .arg(&self.socket)
            .args(args)
            .output()
            .expect("sweepctl runs")
    }

    /// Runs `sweepctl` in a thread (for submissions that block until the
    /// job finishes).
    fn ctl_background(&self, args: &[String]) -> std::thread::JoinHandle<Output> {
        let socket = self.socket.clone();
        let args = args.to_vec();
        std::thread::spawn(move || {
            Command::new(env!("CARGO_BIN_EXE_sweepctl"))
                .arg("--socket")
                .arg(&socket)
                .args(&args)
                .output()
                .expect("sweepctl runs")
        })
    }

    /// Polls `sweepctl status ID` until `predicate` matches its stdout.
    fn poll_status(&self, id: &str, predicate: impl Fn(&str) -> bool) -> String {
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let output = self.ctl(&["status", id]);
            let stdout = String::from_utf8_lossy(&output.stdout).into_owned();
            if output.status.success() && predicate(&stdout) {
                return stdout;
            }
            assert!(Instant::now() < deadline, "timed out polling job {id}; last: {stdout}");
            std::thread::sleep(Duration::from_millis(20));
        }
    }

    fn shutdown(mut self) {
        let output = self.ctl(&["shutdown"]);
        assert!(output.status.success(), "shutdown failed: {output:?}");
        let _ = self.child.wait();
    }
}

impl Drop for DaemonProc {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
        let _ = std::fs::remove_file(&self.socket);
    }
}

fn stderr_of(output: &Output) -> String {
    String::from_utf8_lossy(&output.stderr).into_owned()
}

/// A generated job big enough (under `--threads 1`, debug build) that the
/// tests can observe and cancel it mid-flight.
const SLOW_GEN: &str = "family=mux-tree,seed=3,count=60";

#[test]
fn over_limit_submissions_get_typed_rejections() {
    let daemon = DaemonProc::start("limits", &["--max-items", "3"]);

    let output = daemon.ctl(&[
        "submit", "--case", "dealer:4", "--case", "dealer:5", "--case", "gcd:5", "--case", "gcd:6",
    ]);
    assert_eq!(output.status.code(), Some(3), "rejected submissions exit 3");
    let stderr = stderr_of(&output);
    assert!(stderr.contains("job-too-large"), "typed reason on stderr: {stderr}");

    let output = daemon.ctl(&["submit"]);
    assert_eq!(output.status.code(), Some(3));
    assert!(stderr_of(&output).contains("empty-job"));

    // An in-limits submission still goes through on the same daemon.
    let output = daemon.ctl(&["submit", "--case", "dealer:4"]);
    assert!(output.status.success(), "in-limits job runs: {output:?}");
    assert!(stderr_of(&output).contains("state=done"));

    daemon.shutdown();
}

#[test]
fn cancelling_a_queued_job_never_runs_it() {
    let daemon = DaemonProc::start("queued", &["--threads", "1"]);

    // Job 1 occupies the single executor; job 2 waits behind it.
    let slow = daemon.ctl_background(&["submit".into(), "--gen".into(), SLOW_GEN.into()]);
    daemon.poll_status("1", |s| s.contains("state=running"));
    let queued = daemon.ctl_background(&["submit".into(), "--case".into(), "dealer:4".into()]);
    daemon.poll_status("2", |s| s.contains("state=queued"));

    let output = daemon.ctl(&["cancel", "2"]);
    assert!(output.status.success());
    assert!(String::from_utf8_lossy(&output.stdout).contains("cancelled id=2 state=cancelled"));

    // The cancelled job never accrues any progress: it simply never ran.
    let status = daemon.poll_status("2", |s| s.contains("state=cancelled"));
    assert!(status.contains("completed=0 total=0"), "job 2 never ran: {status}");
    let queued = queued.join().expect("queued submitter");
    assert_eq!(queued.status.code(), Some(1), "cancelled job exits 1");
    assert!(stderr_of(&queued).contains("state=cancelled"));

    // Unblock the executor and shut down.
    let output = daemon.ctl(&["cancel", "1"]);
    assert!(output.status.success());
    daemon.poll_status("1", |s| s.contains("state=cancelled"));
    let _ = slow.join();
    daemon.shutdown();
}

#[test]
fn cancelling_a_running_job_stops_between_scenarios() {
    let daemon = DaemonProc::start("running", &["--threads", "1"]);

    let slow = daemon.ctl_background(&["submit".into(), "--gen".into(), SLOW_GEN.into()]);
    // Wait until the job is demonstrably mid-run (some but not all
    // scenarios finished), then cancel it.
    daemon.poll_status("1", |s| {
        s.contains("state=running") && !s.contains("completed=0 ") && !s.contains("total=0")
    });
    let output = daemon.ctl(&["cancel", "1"]);
    assert!(output.status.success());
    // A running job's flag is raised; it finalizes at the next boundary.
    assert!(String::from_utf8_lossy(&output.stdout).contains("cancelled id=1 state=running"));

    let status = daemon.poll_status("1", |s| s.contains("state=cancelled"));
    let (completed, total) = parse_progress(&status);
    assert!(total > 0, "the run had started: {status}");
    assert!(completed < total, "the run stopped early, between scenarios: {status}");

    let slow = slow.join().expect("submitter");
    assert_eq!(slow.status.code(), Some(1));
    assert!(stderr_of(&slow).contains("state=cancelled"));
    daemon.shutdown();
}

fn parse_progress(status: &str) -> (usize, usize) {
    let field = |key: &str| {
        status
            .split_whitespace()
            .find_map(|part| part.strip_prefix(key))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("no {key} in {status}"))
    };
    (field("completed="), field("total="))
}
