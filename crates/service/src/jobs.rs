//! The job manager: ids, states, the bounded FIFO queue and per-job
//! progress/cancellation handles.
//!
//! [`JobTable`] is the daemon's single source of truth about jobs.  It is
//! deliberately lock-agnostic — the daemon wraps it in a `Mutex` paired
//! with a `Condvar` — and it never performs I/O or touches the engine, so
//! its invariants are easy to state:
//!
//! * ids are assigned `1, 2, 3, …` in submission order and never reused,
//! * the queue holds only ids whose job is [`JobState::Queued`],
//! * a job's state moves strictly forward along
//!   `Queued → Running → {Done, Cancelled, Failed}` (with the one shortcut
//!   `Queued → Cancelled` for jobs cancelled before they ever ran).

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::Sender;
use std::sync::Arc;

use engine::CacheStats;

use crate::protocol::{Event, JobSpec, JobStatus};

/// What a job is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// A scenario sweep ([`engine::Engine::run`]).
    Sweep,
    /// A Pareto exploration ([`engine::Engine::explore`]).
    Explore,
    /// An online event-stream session ([`engine::online::run_stream`]).
    Online,
}

impl JobKind {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            JobKind::Sweep => "sweep",
            JobKind::Explore => "explore",
            JobKind::Online => "online",
        }
    }

    /// Parses a wire label.
    pub fn parse(text: &str) -> Option<Self> {
        [JobKind::Sweep, JobKind::Explore, JobKind::Online].into_iter().find(|k| k.label() == text)
    }
}

impl fmt::Display for JobKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Lifecycle state of a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting in the FIFO queue.
    Queued,
    /// Currently executing on the engine.
    Running,
    /// Finished; its report is final.
    Done,
    /// Cancelled before or during execution; it has no report.
    Cancelled,
    /// Aborted by an error (bad gen spec, plan validation); no report.
    Failed,
}

impl JobState {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// Parses a wire label.
    pub fn parse(text: &str) -> Option<Self> {
        [JobState::Queued, JobState::Running, JobState::Done, JobState::Cancelled, JobState::Failed]
            .into_iter()
            .find(|s| s.label() == text)
    }

    /// Whether the state is final.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Cancelled | JobState::Failed)
    }
}

impl fmt::Display for JobState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Scenario-completion counters, shared between the executor's progress
/// callback (which may tick from any engine worker thread) and status
/// queries.
#[derive(Debug, Default)]
pub struct JobProgress {
    /// Work items completed so far.
    pub completed: AtomicUsize,
    /// Total work items in the (expanded) plan; 0 until the run starts.
    pub total: AtomicUsize,
}

/// One tracked job.
#[derive(Debug)]
struct Job {
    kind: JobKind,
    state: JobState,
    /// Consumed when the executor picks the job up.
    spec: Option<JobSpec>,
    cancel: Arc<AtomicBool>,
    progress: Arc<JobProgress>,
    /// Stream back to the submitting connection, while it is interested.
    events: Option<Sender<Event>>,
    /// The job's own cache delta, recorded at completion.
    job_cache: Option<CacheStats>,
    failures: Option<usize>,
    error: Option<String>,
}

/// Everything the executor needs to run one job, extracted under the table
/// lock and then used without it.
pub struct ClaimedJob {
    /// The job id.
    pub id: u64,
    /// The (consumed) specification.
    pub spec: JobSpec,
    /// Cooperative cancellation flag, checked at scenario boundaries.
    pub cancel: Arc<AtomicBool>,
    /// Shared completion counters.
    pub progress: Arc<JobProgress>,
    /// Event stream to the submitter, if it is still listening.
    pub events: Option<Sender<Event>>,
}

/// What a cancellation request found.
#[derive(Debug)]
pub enum CancelOutcome {
    /// The job was queued; it will never run.  The submitter's stream (if
    /// any) is handed back so the daemon can send it a terminal event.
    WasQueued(Option<Sender<Event>>),
    /// The job is running; its cancel flag has been raised and the executor
    /// will finalize it at the next scenario boundary.
    RunningFlagRaised,
    /// The job had already reached this terminal state.
    AlreadyFinished(JobState),
    /// No such job id.
    Unknown,
}

/// The FIFO job table (see the module docs).
#[derive(Debug, Default)]
pub struct JobTable {
    next_id: u64,
    queue: VecDeque<u64>,
    jobs: BTreeMap<u64, Job>,
}

impl JobTable {
    /// An empty table; the first submitted job gets id 1.
    pub fn new() -> Self {
        JobTable::default()
    }

    /// Number of jobs currently waiting in the queue (the running job does
    /// not count — admission bounds *waiting* work).
    pub fn queued_len(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues an admitted job and returns its id.
    pub fn enqueue(&mut self, spec: JobSpec, events: Option<Sender<Event>>) -> u64 {
        self.next_id += 1;
        let id = self.next_id;
        self.jobs.insert(
            id,
            Job {
                kind: spec.kind(),
                state: JobState::Queued,
                spec: Some(spec),
                cancel: Arc::new(AtomicBool::new(false)),
                progress: Arc::new(JobProgress::default()),
                events,
                job_cache: None,
                failures: None,
                error: None,
            },
        );
        self.queue.push_back(id);
        id
    }

    /// Claims the oldest queued job for execution, marking it running.
    pub fn claim_next(&mut self) -> Option<ClaimedJob> {
        let id = self.queue.pop_front()?;
        let job = self.jobs.get_mut(&id).expect("queued id is tracked");
        debug_assert_eq!(job.state, JobState::Queued);
        job.state = JobState::Running;
        Some(ClaimedJob {
            id,
            spec: job.spec.take().expect("queued job keeps its spec"),
            cancel: Arc::clone(&job.cancel),
            progress: Arc::clone(&job.progress),
            events: job.events.clone(),
        })
    }

    /// Moves a running job into a terminal state, recording its outcome.
    /// The event sender is dropped — the stream ends with whatever terminal
    /// event the executor sent before calling this.
    pub fn finish(
        &mut self,
        id: u64,
        state: JobState,
        job_cache: Option<CacheStats>,
        failures: Option<usize>,
        error: Option<String>,
    ) {
        debug_assert!(state.is_terminal());
        if let Some(job) = self.jobs.get_mut(&id) {
            job.state = state;
            job.job_cache = job_cache;
            job.failures = failures;
            job.error = error;
            job.events = None;
        }
    }

    /// Requests cancellation of a job (see [`CancelOutcome`]).
    pub fn cancel(&mut self, id: u64) -> CancelOutcome {
        let Some(job) = self.jobs.get_mut(&id) else {
            return CancelOutcome::Unknown;
        };
        match job.state {
            JobState::Queued => {
                self.queue.retain(|&queued| queued != id);
                job.state = JobState::Cancelled;
                job.spec = None;
                CancelOutcome::WasQueued(job.events.take())
            }
            JobState::Running => {
                job.cancel.store(true, Ordering::Relaxed);
                CancelOutcome::RunningFlagRaised
            }
            state => CancelOutcome::AlreadyFinished(state),
        }
    }

    /// Cancels every queued job (daemon shutdown) and returns the streams of
    /// the cancelled submitters so they can be notified.
    pub fn cancel_all_queued(&mut self) -> Vec<(u64, Option<Sender<Event>>)> {
        let ids: Vec<u64> = self.queue.drain(..).collect();
        ids.into_iter()
            .map(|id| {
                let job = self.jobs.get_mut(&id).expect("queued id is tracked");
                job.state = JobState::Cancelled;
                job.spec = None;
                (id, job.events.take())
            })
            .collect()
    }

    /// A job's current status snapshot (without the daemon-global cache
    /// counters, which the daemon layer attaches).
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        self.jobs.get(&id).map(|job| JobStatus {
            id,
            kind: job.kind,
            state: job.state,
            completed: job.progress.completed.load(Ordering::Relaxed),
            total: job.progress.total.load(Ordering::Relaxed),
            job_cache: job.job_cache,
            failures: job.failures,
            error: job.error.clone(),
        })
    }

    /// Status snapshots of every tracked job, in id (submission) order.
    pub fn statuses(&self) -> Vec<JobStatus> {
        self.jobs.keys().map(|&id| self.status(id).expect("tracked id")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use engine::Scenario;

    fn spec(latency: u32) -> JobSpec {
        JobSpec::sweep(vec![Scenario::new("dealer", latency)])
    }

    #[test]
    fn ids_are_sequential_and_fifo_order_is_kept() {
        let mut table = JobTable::new();
        assert_eq!(table.enqueue(spec(4), None), 1);
        assert_eq!(table.enqueue(spec(5), None), 2);
        assert_eq!(table.queued_len(), 2);
        let first = table.claim_next().unwrap();
        assert_eq!(first.id, 1);
        assert_eq!(table.status(1).unwrap().state, JobState::Running);
        assert_eq!(table.claim_next().unwrap().id, 2);
        assert!(table.claim_next().is_none());
    }

    #[test]
    fn cancelling_a_queued_job_removes_it_from_the_queue() {
        let mut table = JobTable::new();
        table.enqueue(spec(4), None);
        table.enqueue(spec(5), None);
        assert!(matches!(table.cancel(1), CancelOutcome::WasQueued(None)));
        assert_eq!(table.status(1).unwrap().state, JobState::Cancelled);
        assert_eq!(table.queued_len(), 1);
        assert_eq!(table.claim_next().unwrap().id, 2, "job 1 never runs");
    }

    #[test]
    fn cancelling_a_running_job_raises_its_flag() {
        let mut table = JobTable::new();
        table.enqueue(spec(4), None);
        let claimed = table.claim_next().unwrap();
        assert!(!claimed.cancel.load(Ordering::Relaxed));
        assert!(matches!(table.cancel(1), CancelOutcome::RunningFlagRaised));
        assert!(claimed.cancel.load(Ordering::Relaxed));
        table.finish(1, JobState::Cancelled, None, None, None);
        assert!(matches!(table.cancel(1), CancelOutcome::AlreadyFinished(JobState::Cancelled)));
        assert!(matches!(table.cancel(99), CancelOutcome::Unknown));
    }

    #[test]
    fn statuses_cover_every_job_in_submission_order() {
        let mut table = JobTable::new();
        table.enqueue(spec(4), None);
        table.enqueue(spec(5), None);
        table.claim_next();
        table.finish(1, JobState::Done, None, Some(0), None);
        let statuses = table.statuses();
        assert_eq!(statuses.len(), 2);
        assert_eq!((statuses[0].id, statuses[0].state), (1, JobState::Done));
        assert_eq!((statuses[1].id, statuses[1].state), (2, JobState::Queued));
    }

    #[test]
    fn shutdown_cancels_every_queued_job() {
        let mut table = JobTable::new();
        table.enqueue(spec(4), None);
        table.enqueue(spec(5), None);
        table.claim_next();
        let cancelled = table.cancel_all_queued();
        assert_eq!(cancelled.len(), 1);
        assert_eq!(cancelled[0].0, 2);
        assert_eq!(table.status(1).unwrap().state, JobState::Running, "running job unaffected");
        assert_eq!(table.status(2).unwrap().state, JobState::Cancelled);
    }

    #[test]
    fn labels_roundtrip() {
        for kind in [JobKind::Sweep, JobKind::Explore, JobKind::Online] {
            assert_eq!(JobKind::parse(kind.label()), Some(kind));
        }
        for state in [
            JobState::Queued,
            JobState::Running,
            JobState::Done,
            JobState::Cancelled,
            JobState::Failed,
        ] {
            assert_eq!(JobState::parse(state.label()), Some(state));
            assert_eq!(state.is_terminal(), !matches!(state, JobState::Queued | JobState::Running));
        }
        assert_eq!(JobKind::parse("nope"), None);
        assert_eq!(JobState::parse("nope"), None);
    }
}
