//! Client-side expansion of generator specs into explicit work lists.
//!
//! The wire protocol carries jobs **fully explicit** — every sweep scenario
//! or explore request spelled out — so the daemon never has to guess how a
//! client meant to expand a generator spec.  These helpers do that
//! expansion, mirroring the experiment crate's conventions exactly: each
//! generated circuit is swept at every one of its derived budgets under
//! both schedulers, and explored across its own budget list.
//!
//! Both the client and the daemon call [`generate_batch`] on the *same*
//! spec strings; the generator is seeded and deterministic, so both sides
//! materialize identical circuits and the daemon can key its cache purely
//! on scenario identity.

use circuits::Benchmark;
use engine::{ExploreRequest, Scenario, SchedulerKind};
use gen::GenSpec;

/// Generates every circuit of every spec string, in spec order.
///
/// # Errors
///
/// Returns the generator's parse/validation message for the first bad spec.
pub fn generate_batch(specs: &[String]) -> Result<Vec<Benchmark>, String> {
    let mut batch = Vec::new();
    for text in specs {
        let spec = GenSpec::parse(text).map_err(|e| e.to_string())?;
        batch.extend(gen::generate(&spec).map_err(|e| e.to_string())?);
    }
    Ok(batch)
}

/// The sweep scenarios for a generated batch: each circuit at every one of
/// its derived budgets, under both schedulers — the same matrix
/// `sweep --gen` runs in-process.
pub fn batch_scenarios(batch: &[Benchmark]) -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for bench in batch {
        for &steps in &bench.control_steps {
            for scheduler in [SchedulerKind::ForceDirected, SchedulerKind::List] {
                scenarios.push(Scenario::new(bench.name.as_str(), steps).scheduler(scheduler));
            }
        }
    }
    scenarios
}

/// The explore requests for a generated batch: each circuit walked across
/// its own derived budget list — the same requests `pareto --gen` builds.
pub fn batch_requests(batch: &[Benchmark]) -> Vec<ExploreRequest> {
    batch
        .iter()
        .map(|bench| ExploreRequest::new(bench.name.as_str()).budgets(bench.control_steps.clone()))
        .collect()
}

/// Expands generator spec strings straight into sweep scenarios.
///
/// # Errors
///
/// Propagates [`generate_batch`] failures.
pub fn gen_scenarios(specs: &[String]) -> Result<Vec<Scenario>, String> {
    Ok(batch_scenarios(&generate_batch(specs)?))
}

/// Expands generator spec strings straight into explore requests.
///
/// # Errors
///
/// Propagates [`generate_batch`] failures.
pub fn gen_requests(specs: &[String]) -> Result<Vec<ExploreRequest>, String> {
    Ok(batch_requests(&generate_batch(specs)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_cover_budgets_times_schedulers() {
        let specs = vec!["family=mux-tree,seed=5,count=2".to_owned()];
        let batch = generate_batch(&specs).unwrap();
        assert_eq!(batch.len(), 2);
        let scenarios = gen_scenarios(&specs).unwrap();
        let budgets: usize = batch.iter().map(|b| b.control_steps.len()).sum();
        assert_eq!(scenarios.len(), budgets * 2, "two schedulers per budget");
        assert!(scenarios.iter().any(|s| s.scheduler == SchedulerKind::List));
    }

    #[test]
    fn requests_carry_each_circuits_own_budgets() {
        let specs = vec!["family=random-dag,seed=9,count=3".to_owned()];
        let batch = generate_batch(&specs).unwrap();
        let requests = gen_requests(&specs).unwrap();
        assert_eq!(requests.len(), 3);
        for (request, bench) in requests.iter().zip(&batch) {
            assert_eq!(request.circuit, bench.name);
            assert_eq!(request.budgets, bench.control_steps);
        }
    }

    #[test]
    fn bad_specs_surface_the_generator_message() {
        let err = generate_batch(&["family=warp,seed=1,count=1".to_owned()]).unwrap_err();
        assert!(err.contains("warp"), "{err}");
    }
}
