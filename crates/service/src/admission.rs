//! The admission layer: typed rejection instead of unbounded growth.
//!
//! Every submission passes [`AdmissionLimits::admit`] before it touches the
//! queue.  A rejected submission gets a typed [`Rejection`] on the wire —
//! the client can distinguish "back off and retry" ([`RejectReason::QueueFull`])
//! from "this job will never fit" ([`RejectReason::JobTooLarge`]) — and the
//! daemon's memory stays bounded by `max_queued × max_job_items` no matter
//! how fast clients submit.

use std::fmt;

/// Queue-depth and job-size bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionLimits {
    /// Maximum number of jobs waiting in the queue (the running job does
    /// not count).  A submission arriving at a full queue is rejected.
    pub max_queued: usize,
    /// Maximum work items per job: scenarios for a sweep, circuit walks for
    /// an exploration (both counted *before* any budget-policy expansion).
    pub max_job_items: usize,
}

impl Default for AdmissionLimits {
    fn default() -> Self {
        AdmissionLimits { max_queued: 16, max_job_items: 20_000 }
    }
}

impl AdmissionLimits {
    /// Admits or rejects a job of `items` work items given `queued` jobs
    /// already waiting.
    ///
    /// # Errors
    ///
    /// Returns the typed [`Rejection`] to put on the wire.
    pub fn admit(&self, items: usize, queued: usize, shutting_down: bool) -> Result<(), Rejection> {
        if shutting_down {
            return Err(Rejection {
                reason: RejectReason::ShuttingDown,
                detail: "daemon is shutting down".to_owned(),
            });
        }
        if items == 0 {
            return Err(Rejection {
                reason: RejectReason::EmptyJob,
                detail: "job contains no work items".to_owned(),
            });
        }
        if items > self.max_job_items {
            return Err(Rejection {
                reason: RejectReason::JobTooLarge,
                detail: format!("{items} work items exceed the {} limit", self.max_job_items),
            });
        }
        if queued >= self.max_queued {
            return Err(Rejection {
                reason: RejectReason::QueueFull,
                detail: format!("{queued} jobs queued (limit {})", self.max_queued),
            });
        }
        Ok(())
    }
}

/// Why a submission was turned away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The wait queue is at `max_queued`; retry later.
    QueueFull,
    /// The job exceeds `max_job_items`; it will never be admitted.
    JobTooLarge,
    /// The job expands to zero work items.
    EmptyJob,
    /// The daemon is shutting down and accepts no new work.
    ShuttingDown,
}

impl RejectReason {
    /// Stable wire label.
    pub fn label(self) -> &'static str {
        match self {
            RejectReason::QueueFull => "queue-full",
            RejectReason::JobTooLarge => "job-too-large",
            RejectReason::EmptyJob => "empty-job",
            RejectReason::ShuttingDown => "shutting-down",
        }
    }

    /// Parses a wire label.
    pub fn parse(text: &str) -> Option<Self> {
        [
            RejectReason::QueueFull,
            RejectReason::JobTooLarge,
            RejectReason::EmptyJob,
            RejectReason::ShuttingDown,
        ]
        .into_iter()
        .find(|r| r.label() == text)
    }
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A typed rejection: the machine-readable reason plus a human-readable
/// detail line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Why.
    pub reason: RejectReason,
    /// Context for logs and error messages.
    pub detail: String,
}

impl fmt::Display for Rejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.reason, self.detail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admits_within_every_limit() {
        let limits = AdmissionLimits { max_queued: 2, max_job_items: 10 };
        assert!(limits.admit(10, 1, false).is_ok());
        assert!(limits.admit(1, 0, false).is_ok());
    }

    #[test]
    fn each_limit_produces_its_own_reason() {
        let limits = AdmissionLimits { max_queued: 2, max_job_items: 10 };
        assert_eq!(limits.admit(11, 0, false).unwrap_err().reason, RejectReason::JobTooLarge);
        assert_eq!(limits.admit(5, 2, false).unwrap_err().reason, RejectReason::QueueFull);
        assert_eq!(limits.admit(0, 0, false).unwrap_err().reason, RejectReason::EmptyJob);
        assert_eq!(limits.admit(5, 0, true).unwrap_err().reason, RejectReason::ShuttingDown);
    }

    #[test]
    fn shutdown_outranks_everything_and_size_outranks_depth() {
        let limits = AdmissionLimits { max_queued: 0, max_job_items: 0 };
        assert_eq!(limits.admit(5, 9, true).unwrap_err().reason, RejectReason::ShuttingDown);
        assert_eq!(limits.admit(5, 9, false).unwrap_err().reason, RejectReason::JobTooLarge);
    }

    #[test]
    fn limits_are_inclusive_exactly_at_the_boundary() {
        let limits = AdmissionLimits { max_queued: 3, max_job_items: 7 };
        // items == max_job_items is the largest admissible job …
        assert!(limits.admit(7, 0, false).is_ok());
        // … and one more is the smallest rejected one.
        let rejection = limits.admit(8, 0, false).unwrap_err();
        assert_eq!(rejection.reason, RejectReason::JobTooLarge);
        assert!(rejection.detail.contains("8 work items exceed the 7 limit"), "{rejection}");
        // queued == max_queued - 1 still admits (the new job fills the
        // last slot); queued == max_queued is full.
        assert!(limits.admit(1, 2, false).is_ok());
        let rejection = limits.admit(1, 3, false).unwrap_err();
        assert_eq!(rejection.reason, RejectReason::QueueFull);
        assert!(rejection.detail.contains("3 jobs queued (limit 3)"), "{rejection}");
        // Over-full (a racing shrink of the limit) still reads as full.
        assert_eq!(limits.admit(1, 4, false).unwrap_err().reason, RejectReason::QueueFull);
        // A one-item job at a one-item limit is fine.
        let tight = AdmissionLimits { max_queued: 1, max_job_items: 1 };
        assert!(tight.admit(1, 0, false).is_ok());
    }

    #[test]
    fn shutdown_rejects_even_jobs_the_limits_would_admit() {
        // Mid-queue shutdown: the queue has room and the job fits, but
        // admission must still turn it away with the shutdown reason so
        // clients stop retrying instead of backing off.
        let limits = AdmissionLimits::default();
        assert!(limits.admit(5, 3, false).is_ok(), "sanity: admissible without shutdown");
        let rejection = limits.admit(5, 3, true).unwrap_err();
        assert_eq!(rejection.reason, RejectReason::ShuttingDown);
        assert_eq!(rejection.detail, "daemon is shutting down");
    }

    #[test]
    fn labels_roundtrip() {
        for reason in [
            RejectReason::QueueFull,
            RejectReason::JobTooLarge,
            RejectReason::EmptyJob,
            RejectReason::ShuttingDown,
        ] {
            assert_eq!(RejectReason::parse(reason.label()), Some(reason));
        }
        assert_eq!(RejectReason::parse("nope"), None);
        let rejection = AdmissionLimits::default().admit(0, 0, false).unwrap_err();
        assert!(rejection.to_string().starts_with("empty-job: "));
    }
}
