//! A long-running sweep service: job queue, admission control and streamed
//! deterministic results over a Unix socket.
//!
//! The engine sweeps this repository reproduces (scheduling for power
//! management, DAC 1996) are embarrassingly cacheable: the per-circuit
//! prefix computations that dominate a sweep recur across jobs.  Running
//! every sweep in a fresh process rebuilds that state from nothing.  This
//! crate keeps **one engine and its memo cache alive in a daemon**
//! (`sweepd`) and serves sweep and Pareto-exploration jobs over a
//! newline-delimited-JSON protocol (`sweepctl`, or the experiment binaries'
//! `--daemon` flag), so a warm job pays only cache lookups.
//!
//! The acceptance bar is **byte-determinism**: a job's final report is
//! byte-identical whether it runs in-process, against a cold daemon, as a
//! warm re-submission, interleaved with concurrent jobs, or after a
//! neighbouring job was cancelled.  Three design choices carry that bar:
//!
//! 1. jobs are *fully explicit* on the wire (every scenario spelled out)
//!    and reconstructed through the same canonicalizing plan builder an
//!    in-process run uses,
//! 2. a single executor thread runs jobs strictly in submission order, so
//!    the shared cache — keyed purely on scenario identity — only ever
//!    grows and never influences result *values*, and
//! 3. streamed records replay in plan order, never completion order.
//!
//! # Module map
//!
//! * [`protocol`] — typed requests, responses and streamed events,
//! * [`jobs`] — ids, states, the FIFO queue, progress and cancel handles,
//! * [`admission`] — queue-depth and job-size bounds with typed rejections,
//! * [`daemon`] — the socket listener, executor thread and engine,
//! * [`client`] — a blocking client used by `sweepctl` and the experiment
//!   binaries,
//! * [`plans`] — client-side expansion of generator specs into explicit
//!   work lists,
//! * [`json`] — the dependency-free JSON the wire format is built on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod client;
pub mod daemon;
pub mod jobs;
pub mod json;
pub mod plans;
pub mod protocol;

pub use crate::admission::{AdmissionLimits, RejectReason, Rejection};
pub use crate::client::{wait_for_socket, Client, JobOutcome, ServiceError};
pub use crate::daemon::{Daemon, DaemonConfig, DaemonHandle};
pub use crate::jobs::{JobKind, JobState};
pub use crate::protocol::{Event, JobSpec, JobStatus, Request, Response};
