//! A blocking client for the sweep service.
//!
//! [`Client`] wraps one connection: send a [`Request`], read the
//! [`Response`], and — for submissions — drain the event stream into a
//! [`JobOutcome`].  The `sweepctl` binary and the `--daemon` modes of the
//! experiment binaries are thin shells around this module.

use std::fmt;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::{Duration, Instant};

use engine::CacheStats;

use crate::admission::Rejection;
use crate::jobs::JobState;
use crate::protocol::{Event, JobSpec, Request, Response};

/// What can go wrong talking to the daemon.
#[derive(Debug)]
pub enum ServiceError {
    /// The socket could not be reached or the connection broke.
    Io(io::Error),
    /// The daemon sent a line this client cannot parse, or an unexpected
    /// message kind.
    Protocol(String),
    /// The daemon answered with a typed rejection.
    Rejected(Rejection),
    /// The daemon answered with an error response.
    Daemon(String),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Io(err) => write!(f, "connection failed: {err}"),
            ServiceError::Protocol(detail) => write!(f, "protocol violation: {detail}"),
            ServiceError::Rejected(rejection) => write!(f, "rejected: {rejection}"),
            ServiceError::Daemon(detail) => write!(f, "daemon error: {detail}"),
        }
    }
}

impl std::error::Error for ServiceError {}

impl From<io::Error> for ServiceError {
    fn from(err: io::Error) -> Self {
        ServiceError::Io(err)
    }
}

/// A finished job as observed from the submitting connection.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// The job id the daemon assigned.
    pub id: u64,
    /// The terminal state.
    pub state: JobState,
    /// Failed scenarios/walks inside the report.
    pub failures: Option<usize>,
    /// The job's cache delta (hits and misses attributable to it).
    pub job_cache: Option<CacheStats>,
    /// The full report JSON, byte-identical to an in-process run.
    pub report: Option<String>,
    /// The streamed record lines, in plan order.
    pub records: Vec<String>,
    /// Error detail for failed jobs.
    pub error: Option<String>,
    /// Number of progress events observed.
    pub progress_events: usize,
}

/// One blocking connection to the daemon.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connects to the daemon's socket.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(socket: impl AsRef<Path>) -> Result<Client, ServiceError> {
        let writer = UnixStream::connect(socket)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Client { reader, writer })
    }

    /// Sends one request and reads its one response.
    ///
    /// For [`Request::Submit`] this returns after the
    /// submitted/rejected line — follow up with [`Client::wait`] to drain
    /// the event stream.
    ///
    /// # Errors
    ///
    /// I/O failures and unparseable responses.
    pub fn request(&mut self, request: &Request) -> Result<Response, ServiceError> {
        self.send_line(&request.to_line())?;
        let line = self.read_line()?;
        Response::parse(&line).map_err(ServiceError::Protocol)
    }

    /// Submits a job, returning its id.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Rejected`] for typed admission rejections,
    /// [`ServiceError::Daemon`] for error responses, plus the usual I/O and
    /// protocol failures.
    pub fn submit(&mut self, spec: JobSpec) -> Result<u64, ServiceError> {
        match self.request(&Request::Submit(spec))? {
            Response::Submitted { id } => Ok(id),
            Response::Rejected(rejection) => Err(ServiceError::Rejected(rejection)),
            Response::Error { detail } => Err(ServiceError::Daemon(detail)),
            other => Err(ServiceError::Protocol(format!("unexpected response {other:?}"))),
        }
    }

    /// Drains the event stream after a submission until the job's terminal
    /// event, forwarding each progress tick to `on_progress`.
    ///
    /// # Errors
    ///
    /// I/O failures, unparseable events, or the stream ending without a
    /// terminal event.
    pub fn wait(
        &mut self,
        id: u64,
        mut on_progress: impl FnMut(usize, usize),
    ) -> Result<JobOutcome, ServiceError> {
        let mut records = Vec::new();
        let mut progress_events = 0usize;
        loop {
            let line = self.read_line()?;
            match Event::parse(&line).map_err(ServiceError::Protocol)? {
                Event::Progress { completed, total, .. } => {
                    progress_events += 1;
                    on_progress(completed, total);
                }
                Event::Record { json, .. } => records.push(json),
                Event::Done { id: done_id, state, failures, job_cache, report, error } => {
                    if done_id != id {
                        return Err(ServiceError::Protocol(format!(
                            "terminal event for job {done_id}, expected {id}"
                        )));
                    }
                    return Ok(JobOutcome {
                        id,
                        state,
                        failures,
                        job_cache,
                        report,
                        records,
                        error,
                        progress_events,
                    });
                }
            }
        }
    }

    /// [`Client::submit`] then [`Client::wait`].
    ///
    /// # Errors
    ///
    /// As for the two steps.
    pub fn submit_and_wait(&mut self, spec: JobSpec) -> Result<JobOutcome, ServiceError> {
        let id = self.submit(spec)?;
        self.wait(id, |_, _| {})
    }

    fn send_line(&mut self, line: &str) -> Result<(), ServiceError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        Ok(())
    }

    fn read_line(&mut self) -> Result<String, ServiceError> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(ServiceError::Protocol("connection closed mid-stream".to_owned()));
        }
        Ok(line.trim_end_matches(['\n', '\r']).to_owned())
    }
}

/// Polls until the daemon's socket accepts connections, up to `timeout`.
/// Returns whether it became reachable — startup scripts and tests use this
/// instead of sleeping a fixed amount.
pub fn wait_for_socket(socket: impl AsRef<Path>, timeout: Duration) -> bool {
    let socket = socket.as_ref();
    let deadline = Instant::now() + timeout;
    loop {
        if UnixStream::connect(socket).is_ok() {
            return true;
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}
