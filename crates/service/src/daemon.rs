//! The daemon: one engine, one executor, many connections.
//!
//! # Architecture
//!
//! ```text
//!  clients ──(unix socket, NDJSON)──► accept thread ──► connection threads
//!                                                            │ submit/status/cancel
//!                                                            ▼
//!                                        Mutex<JobTable> + Condvar
//!                                                            │ FIFO claim
//!                                                            ▼
//!                                      single executor thread ──► RwLock<Engine>
//! ```
//!
//! A **single executor thread** runs jobs strictly in submission order, one
//! at a time.  That serialization is the determinism anchor: the shared
//! prefix cache only ever grows, a job's cache *delta* is unambiguously its
//! own, and interleaved submissions cannot reorder each other's scenario
//! results (parallelism lives *inside* a job, in the engine's deterministic
//! thread pool).
//!
//! Lock discipline: the engine lock is never acquired while holding the job
//! table lock (connection threads read engine stats *before* touching the
//! table; the executor runs jobs entirely outside the table lock), so the
//! two locks never deadlock.

use std::collections::BTreeSet;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;

use engine::{Engine, ExploreOptions, Progress, SweepPlan};

use crate::admission::AdmissionLimits;
use crate::jobs::{CancelOutcome, ClaimedJob, JobState, JobTable};
use crate::protocol::{Event, JobSpec, Request, Response};

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Path of the Unix socket to listen on.
    pub socket: PathBuf,
    /// Engine threads per job (0 = all available cores).
    pub threads: usize,
    /// Admission bounds.
    pub limits: AdmissionLimits,
}

impl DaemonConfig {
    /// A default-limits configuration listening on `socket`.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        DaemonConfig { socket: socket.into(), threads: 0, limits: AdmissionLimits::default() }
    }
}

/// The sweep-service daemon.  See the module docs for the thread layout.
pub struct Daemon;

impl Daemon {
    /// Binds the socket and starts the accept and executor threads.
    ///
    /// A stale socket file left by a crashed daemon is replaced; a socket
    /// with a *live* daemon behind it is an error.
    ///
    /// # Errors
    ///
    /// Propagates bind failures.
    pub fn start(config: DaemonConfig) -> io::Result<DaemonHandle> {
        let listener = bind(&config.socket)?;
        let shared = Arc::new(Shared {
            engine: RwLock::new(Engine::new()),
            registered: Mutex::new(BTreeSet::new()),
            jobs: Mutex::new(JobTable::new()),
            wake: Condvar::new(),
            limits: config.limits,
            threads: config.threads,
            shutdown: AtomicBool::new(false),
            socket: config.socket.clone(),
        });

        let executor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || executor_loop(&shared))
        };
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(&shared, listener))
        };

        Ok(DaemonHandle {
            socket: config.socket,
            shared,
            acceptor: Some(acceptor),
            executor: Some(executor),
        })
    }
}

/// Handle to a running daemon: shut it down and wait for it.
pub struct DaemonHandle {
    socket: PathBuf,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    executor: Option<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The socket the daemon listens on.
    pub fn socket(&self) -> &Path {
        &self.socket
    }

    /// Initiates shutdown, exactly as a wire `shutdown` request would:
    /// queued jobs are cancelled (their submitters get a terminal event),
    /// the running job's cancel flag is raised, and the accept loop exits.
    pub fn shutdown(&self) {
        self.shared.initiate_shutdown();
    }

    /// Waits for the accept and executor threads and removes the socket
    /// file.  Call [`DaemonHandle::shutdown`] first (or send a wire
    /// `shutdown`), or this blocks forever.
    pub fn join(mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        if let Some(executor) = self.executor.take() {
            let _ = executor.join();
        }
        let _ = std::fs::remove_file(&self.socket);
    }
}

struct Shared {
    engine: RwLock<Engine>,
    /// Generator spec strings whose circuits are already registered.
    registered: Mutex<BTreeSet<String>>,
    jobs: Mutex<JobTable>,
    wake: Condvar,
    limits: AdmissionLimits,
    threads: usize,
    shutdown: AtomicBool,
    socket: PathBuf,
}

impl Shared {
    fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let cancelled = {
            let mut jobs = self.jobs.lock().expect("jobs lock");
            let cancelled = jobs.cancel_all_queued();
            // Ask the running job (if any) to stop at its next boundary.
            let running: Vec<u64> = jobs
                .statuses()
                .iter()
                .filter(|s| s.state == JobState::Running)
                .map(|s| s.id)
                .collect();
            for id in running {
                jobs.cancel(id);
            }
            cancelled
        };
        for (id, events) in cancelled {
            send_terminal(&events, cancelled_event(id));
            self.jobs.lock().expect("jobs lock").finish(id, JobState::Cancelled, None, None, None);
        }
        self.wake.notify_all();
        // Unblock the accept loop; the dummy connection is dropped there.
        let _ = UnixStream::connect(&self.socket);
    }
}

fn bind(socket: &Path) -> io::Result<UnixListener> {
    match UnixListener::bind(socket) {
        Ok(listener) => Ok(listener),
        Err(err) if err.kind() == io::ErrorKind::AddrInUse => {
            if UnixStream::connect(socket).is_ok() {
                return Err(io::Error::new(
                    io::ErrorKind::AddrInUse,
                    format!("a daemon is already listening on {}", socket.display()),
                ));
            }
            // Stale file from a crashed daemon: replace it.
            std::fs::remove_file(socket)?;
            UnixListener::bind(socket)
        }
        Err(err) => Err(err),
    }
}

fn accept_loop(shared: &Arc<Shared>, listener: UnixListener) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let shared = Arc::clone(shared);
                std::thread::spawn(move || handle_connection(&shared, stream));
            }
            Err(_) => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
            }
        }
    }
}

fn handle_connection(shared: &Arc<Shared>, stream: UnixStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => return,
            Ok(_) => {}
        }
        let text = line.trim_end_matches(['\n', '\r']);
        if text.is_empty() {
            continue;
        }
        let request = match Request::parse(text) {
            Ok(request) => request,
            Err(detail) => {
                if write_line(&mut writer, &Response::Error { detail }.to_line()).is_err() {
                    return;
                }
                continue;
            }
        };
        let keep_going = match request {
            Request::Submit(spec) => handle_submit(shared, &mut writer, spec),
            Request::Status { id } => {
                let cache = shared.engine.read().expect("engine lock").cache_stats();
                let status = shared.jobs.lock().expect("jobs lock").status(id);
                let response = match status {
                    Some(job) => Response::Status { cache, job },
                    None => Response::Error { detail: format!("no job {id}") },
                };
                write_line(&mut writer, &response.to_line()).is_ok()
            }
            Request::List => {
                let cache = shared.engine.read().expect("engine lock").cache_stats();
                let jobs = shared.jobs.lock().expect("jobs lock").statuses();
                write_line(&mut writer, &Response::Jobs { cache, jobs }.to_line()).is_ok()
            }
            Request::Cancel { id } => handle_cancel(shared, &mut writer, id),
            Request::Shutdown => {
                let _ = write_line(&mut writer, &Response::ShuttingDown.to_line());
                shared.initiate_shutdown();
                false
            }
        };
        if !keep_going {
            return;
        }
    }
}

fn handle_submit(shared: &Arc<Shared>, writer: &mut UnixStream, spec: JobSpec) -> bool {
    let (id, receiver) = {
        let mut jobs = shared.jobs.lock().expect("jobs lock");
        let admitted = shared.limits.admit(
            spec.size(),
            jobs.queued_len(),
            shared.shutdown.load(Ordering::SeqCst),
        );
        if let Err(rejection) = admitted {
            drop(jobs);
            return write_line(writer, &Response::Rejected(rejection).to_line()).is_ok();
        }
        let (sender, receiver) = std::sync::mpsc::channel();
        let id = jobs.enqueue(spec, Some(sender));
        (id, receiver)
    };
    shared.wake.notify_all();
    if write_line(writer, &Response::Submitted { id }.to_line()).is_err() {
        return false;
    }
    // Stream the job's events until its terminal event (or until every
    // sender is gone, which only happens after the job finished).
    while let Ok(event) = receiver.recv() {
        let done = matches!(event, Event::Done { .. });
        if write_line(writer, &event.to_line()).is_err() {
            // Client went away; the job keeps running (cancel is explicit).
            return false;
        }
        if done {
            break;
        }
    }
    true
}

fn handle_cancel(shared: &Arc<Shared>, writer: &mut UnixStream, id: u64) -> bool {
    let outcome = shared.jobs.lock().expect("jobs lock").cancel(id);
    let response = match outcome {
        CancelOutcome::WasQueued(events) => {
            send_terminal(&events, cancelled_event(id));
            shared.jobs.lock().expect("jobs lock").finish(
                id,
                JobState::Cancelled,
                None,
                None,
                None,
            );
            Response::Cancelled { id, state: JobState::Cancelled }
        }
        CancelOutcome::RunningFlagRaised => Response::Cancelled { id, state: JobState::Running },
        CancelOutcome::AlreadyFinished(state) => Response::Cancelled { id, state },
        CancelOutcome::Unknown => Response::Error { detail: format!("no job {id}") },
    };
    write_line(writer, &response.to_line()).is_ok()
}

fn executor_loop(shared: &Arc<Shared>) {
    let mut jobs = shared.jobs.lock().expect("jobs lock");
    loop {
        if shared.shutdown.load(Ordering::SeqCst) && jobs.queued_len() == 0 {
            return;
        }
        match jobs.claim_next() {
            Some(claimed) => {
                drop(jobs);
                run_job(shared, claimed);
                jobs = shared.jobs.lock().expect("jobs lock");
            }
            None => jobs = shared.wake.wait(jobs).expect("jobs lock"),
        }
    }
}

/// Runs one claimed job end to end: register its generated circuits, run
/// it on the engine, stream records and the terminal event, record the
/// outcome in the table.  Holds no job-table lock while running.
fn run_job(shared: &Arc<Shared>, claimed: ClaimedJob) {
    let ClaimedJob { id, spec, cancel, progress, events } = claimed;
    if let Err(detail) = register_gen_circuits(shared, spec.gen_specs()) {
        send_terminal(&events, failed_event(id, detail.clone()));
        shared.jobs.lock().expect("jobs lock").finish(
            id,
            JobState::Failed,
            None,
            None,
            Some(detail),
        );
        return;
    }

    // Progress ticks arrive concurrently from engine workers; fetch_max
    // keeps the shared counter monotone.
    let event_sender = events.clone().map(Mutex::new);
    let on_progress = |p: Progress| {
        progress.completed.fetch_max(p.completed, Ordering::Relaxed);
        progress.total.fetch_max(p.total, Ordering::Relaxed);
        if let Some(sender) = &event_sender {
            let _ = sender.lock().expect("events lock").send(Event::Progress {
                id,
                completed: p.completed,
                total: p.total,
            });
        }
    };

    let engine = shared.engine.read().expect("engine lock");
    let baseline = engine.cache_stats();
    let outcome = match &spec {
        JobSpec::Sweep { scenarios, policy, gate_level, .. } => {
            let mut builder =
                SweepPlan::builder().scenarios(scenarios.iter().cloned()).budget_policy(*policy);
            if let Some(gate) = gate_level {
                builder = builder.gate_level(gate.samples, gate.seed);
            }
            match builder.build() {
                Ok(plan) => Ok(engine
                    .run_controlled(&plan, shared.threads, Some(&cancel), Some(&on_progress))
                    .map(|report| {
                        (report.failure_count(), report.to_json(), record_lines(&report))
                    })),
                Err(err) => Err(err.to_string()),
            }
        }
        JobSpec::Explore { requests, policy, ceiling, voltage, branch_model, .. } => {
            let options = ExploreOptions::new()
                .policy(*policy)
                .ceiling(*ceiling)
                .voltage(*voltage)
                .branch_model(*branch_model);
            Ok(engine
                .explore_controlled(
                    requests,
                    &options,
                    shared.threads,
                    Some(&cancel),
                    Some(&on_progress),
                )
                .map(|report| (report.failure_count(), report.to_json(), Vec::new())))
        }
        JobSpec::Online { stream } => match gen::StreamSpec::parse(stream) {
            // Online records stream *live*, in event order, as the session
            // applies each event — there is no completion-order hazard to
            // shield the wire from (the session is strictly sequential), and
            // a power manager wants the repair outcome now, not at drain.
            Ok(stream_spec) => {
                let on_record = |record: &engine::online::EventRecord| {
                    if let Some(sender) = &event_sender {
                        let _ = sender
                            .lock()
                            .expect("events lock")
                            .send(Event::Record { id, json: engine::online::record_json(record) });
                    }
                };
                match engine::online::run_stream_controlled(
                    &stream_spec,
                    Some(&cancel),
                    Some(&on_progress),
                    Some(&on_record),
                ) {
                    Ok(Some(report)) => {
                        Ok(Some((report.summary.errors, report.to_json(), Vec::new())))
                    }
                    Ok(None) => Ok(None),
                    Err(err) => Err(err.to_string()),
                }
            }
            Err(err) => Err(err.to_string()),
        },
    };
    let job_cache = engine.cache_stats().since(baseline);
    drop(engine);

    let (state, failures, cache, error) = match outcome {
        Err(detail) => {
            send_terminal(&events, failed_event(id, detail.clone()));
            (JobState::Failed, None, None, Some(detail))
        }
        Ok(None) => {
            // Cancelled mid-run: partial results are discarded, never sent.
            send_terminal(&events, cancelled_event(id));
            (JobState::Cancelled, None, None, None)
        }
        Ok(Some((failures, report, records))) => {
            if let Some(sender) = &events {
                // Records replay in plan order — completion order never
                // reaches the wire.
                for json in records {
                    let _ = sender.send(Event::Record { id, json });
                }
            }
            send_terminal(
                &events,
                Event::Done {
                    id,
                    state: JobState::Done,
                    failures: Some(failures),
                    job_cache: Some(job_cache),
                    report: Some(report),
                    error: None,
                },
            );
            (JobState::Done, Some(failures), Some(job_cache), None)
        }
    };
    shared.jobs.lock().expect("jobs lock").finish(id, state, cache, failures, error);
}

/// Registers the circuits of every not-yet-seen generator spec.  Specs are
/// deduplicated by their exact string; the generator is deterministic, so
/// re-registering an equivalent spec would be a no-op anyway.
fn register_gen_circuits(shared: &Arc<Shared>, specs: &[String]) -> Result<(), String> {
    for text in specs {
        {
            let registered = shared.registered.lock().expect("registered lock");
            if registered.contains(text) {
                continue;
            }
        }
        let batch = crate::plans::generate_batch(std::slice::from_ref(text))?;
        let mut engine = shared.engine.write().expect("engine lock");
        engine.register_benchmarks(batch);
        drop(engine);
        shared.registered.lock().expect("registered lock").insert(text.clone());
    }
    Ok(())
}

fn record_lines(report: &engine::SweepReport) -> Vec<String> {
    report.records.iter().map(engine::report::record_json).collect()
}

fn cancelled_event(id: u64) -> Event {
    Event::Done {
        id,
        state: JobState::Cancelled,
        failures: None,
        job_cache: None,
        report: None,
        error: None,
    }
}

fn failed_event(id: u64, detail: String) -> Event {
    Event::Done {
        id,
        state: JobState::Failed,
        failures: None,
        job_cache: None,
        report: None,
        error: Some(detail),
    }
}

fn send_terminal(events: &Option<Sender<Event>>, event: Event) {
    if let Some(sender) = events {
        let _ = sender.send(event);
    }
}

fn write_line(writer: &mut UnixStream, line: &str) -> io::Result<()> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    writer.flush()
}
