//! A minimal JSON tree for the wire protocol.
//!
//! The workspace vendors no external crates, so this module hand-rolls the
//! little JSON the protocol needs: a [`Json`] tree, a recursive-descent
//! parser and a compact single-line emitter.  Two deliberate choices keep
//! the protocol byte-exact:
//!
//! * **Numbers stay raw tokens** ([`Json::Number`] holds the literal text),
//!   so a `u64` seed or an engine-formatted float survives a round trip
//!   without ever passing through `f64` and losing precision.
//! * **Objects are ordered pair lists**, so an emitted request or event has
//!   exactly the key order the protocol code wrote — no hash-map shuffling
//!   between daemon and client.
//!
//! Report payloads (the engine's pre-rendered JSON strings) are carried as
//! *strings* inside protocol messages; this module only needs to escape and
//! unescape them faithfully, never to re-parse their numerics.

use std::fmt::Write as _;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its literal token (see the module docs).
    Number(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object as an ordered `(key, value)` list.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// A number value from anything displayable as a numeric token.
    pub fn number(n: impl ToString) -> Json {
        Json::Number(n.to_string())
    }

    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The number token parsed as `u64`, if this is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(token) => token.parse().ok(),
            _ => None,
        }
    }

    /// The number token parsed as `u32`.
    pub fn as_u32(&self) -> Option<u32> {
        match self {
            Json::Number(token) => token.parse().ok(),
            _ => None,
        }
    }

    /// The number token parsed as `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Number(token) => token.parse().ok(),
            _ => None,
        }
    }

    /// Emits the value as compact single-line JSON (no added whitespace, so
    /// one protocol message is always exactly one line).
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.emit_into(&mut out);
        out
    }

    fn emit_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(token) => out.push_str(token),
            Json::Str(s) => escape_into(s, out),
            Json::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.emit_into(out);
                }
                out.push(']');
            }
            Json::Object(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(key, out);
                    out.push(':');
                    value.emit_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document; trailing content (other than whitespace) is
    /// an error, so a framing bug can never silently truncate a message.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        let value = parser.value()?;
        parser.skip_whitespace();
        if parser.pos != parser.bytes.len() {
            return Err(format!("trailing content at byte {}", parser.pos));
        }
        Ok(value)
    }
}

/// Escapes `s` as a JSON string literal (quotes included).  Escaping is the
/// minimal canonical set — `"`, `\` and control characters — so embedded
/// report bytes round-trip unchanged.
fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(format!("malformed number at byte {start}"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let token = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_owned())?;
        Ok(Json::Number(token.to_owned()))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_owned()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let unit = self.hex4()?;
                            // Combine a UTF-16 surrogate pair; a lone
                            // surrogate is a protocol error.
                            let c = if (0xd800..0xdc00).contains(&unit) {
                                if !(self.peek() == Some(b'\\')
                                    && self.bytes.get(self.pos + 1) == Some(&b'u'))
                                {
                                    return Err("lone high surrogate".to_owned());
                                }
                                self.pos += 2;
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err("bad low surrogate".to_owned());
                                }
                                let code = 0x10000 + ((unit - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(code).ok_or("bad surrogate pair")?
                            } else {
                                char::from_u32(unit).ok_or("bad unicode escape")?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one whole UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "non-utf8 string".to_owned())?;
                    let c = rest.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or("truncated unicode escape")?;
        let unit = u32::from_str_radix(hex, 16).map_err(|_| "bad unicode escape".to_owned())?;
        self.pos = end;
        Ok(unit)
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_whitespace();
            let key = self.string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.value()?;
            fields.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(value: &Json) {
        let line = value.emit();
        assert_eq!(&Json::parse(&line).unwrap(), value, "{line}");
    }

    #[test]
    fn scalars_round_trip() {
        roundtrip(&Json::Null);
        roundtrip(&Json::Bool(true));
        roundtrip(&Json::Bool(false));
        roundtrip(&Json::number(u64::MAX));
        roundtrip(&Json::Number("-12.5e-3".to_owned()));
        roundtrip(&Json::Str(String::new()));
        roundtrip(&Json::Str("plain".to_owned()));
    }

    #[test]
    fn u64_numbers_keep_full_precision() {
        // Through an f64 this would round; the raw token must not.
        let token = Json::number(u64::MAX).emit();
        assert_eq!(token, "18446744073709551615");
        assert_eq!(Json::parse(&token).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn embedded_report_strings_round_trip_byte_exactly() {
        let report = "{\n  \"records\": [\n    {\"x\": 1.25}\n  ]\n}\n";
        let wrapped = Json::Object(vec![("report".to_owned(), Json::Str(report.to_owned()))]);
        let line = wrapped.emit();
        assert!(!line.contains('\n'), "one message stays one line");
        let parsed = Json::parse(&line).unwrap();
        assert_eq!(parsed.get("report").unwrap().as_str(), Some(report));
    }

    #[test]
    fn escapes_and_unicode_round_trip() {
        roundtrip(&Json::Str("quote \" backslash \\ newline \n tab \t bell \u{0007}".to_owned()));
        roundtrip(&Json::Str("π ≈ 3.14159 — ✓ 🦀".to_owned()));
        assert_eq!(Json::parse("\"\\u00e9\\ud83e\\udd80\"").unwrap().as_str(), Some("é🦀"));
        assert!(Json::parse("\"\\ud800\"").is_err(), "lone surrogate rejected");
    }

    #[test]
    fn objects_preserve_key_order() {
        let obj = Json::Object(vec![
            ("zebra".to_owned(), Json::number(1)),
            ("alpha".to_owned(), Json::Bool(false)),
        ]);
        assert_eq!(obj.emit(), "{\"zebra\":1,\"alpha\":false}");
        roundtrip(&obj);
        assert_eq!(obj.get("alpha"), Some(&Json::Bool(false)));
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn nested_structures_parse_with_whitespace() {
        let parsed = Json::parse(" { \"a\" : [ 1 , 2.5 , { \"b\" : null } ] } ").unwrap();
        let items = parsed.get("a").unwrap().as_array().unwrap();
        assert_eq!(items.len(), 3);
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[2].get("b"), Some(&Json::Null));
    }

    #[test]
    fn malformed_input_is_rejected() {
        for bad in ["", "{", "[1,", "{\"a\":}", "tru", "1 2", "\"unterminated", "{'a':1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?}");
        }
    }
}
