//! The typed newline-delimited-JSON wire protocol.
//!
//! One message is one JSON object on one line.  Clients send [`Request`]
//! lines; the daemon answers each request with exactly one [`Response`]
//! line, and a successful `submit` additionally streams [`Event`] lines on
//! the same connection until the job reaches a terminal state.
//!
//! # Determinism contract
//!
//! The protocol is designed so a job's results are byte-identical no matter
//! how the daemon is feeling:
//!
//! * A submission carries its work list **fully explicit** — every sweep
//!   scenario (or explore request) spelled out, plus the `gen` spec strings
//!   naming any generated circuits the daemon must register.  The daemon
//!   reconstructs the plan through the same canonicalizing
//!   [`engine::SweepPlanBuilder`] an in-process run uses, so client-side
//!   and daemon-side plans are equal by construction.
//! * [`Event::Record`] lines replay the finished report's records in **plan
//!   order** (the canonical scenario order), never completion order.
//! * Report payloads travel as pre-rendered JSON *strings* (escaped, one
//!   line), so the daemon's byte-exact [`engine::SweepReport::to_json`]
//!   output reaches the client without any re-serialization.

use engine::{
    BranchModel, BudgetCeiling, BudgetPolicy, CacheStats, ExploreRequest, GateLevelSpec, Scenario,
    SchedulerKind, VoltagePolicy,
};

use crate::admission::{RejectReason, Rejection};
use crate::jobs::{JobKind, JobState};
use crate::json::Json;

/// A client-to-daemon message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job; the connection then receives the event stream.
    Submit(JobSpec),
    /// Query one job's status.
    Status {
        /// The job id.
        id: u64,
    },
    /// List every tracked job.
    List,
    /// Cancel a queued or running job.
    Cancel {
        /// The job id.
        id: u64,
    },
    /// Stop accepting work, cancel queued jobs and exit.
    Shutdown,
}

/// A fully explicit job specification (see the module docs).
#[derive(Debug, Clone, PartialEq)]
pub enum JobSpec {
    /// A scenario sweep.
    Sweep {
        /// Generator spec strings ([`gen::GenSpec::parse`] syntax) for
        /// circuits the daemon must register before running.
        gen: Vec<String>,
        /// The explicit scenario list.
        scenarios: Vec<Scenario>,
        /// Budget policy the plan runs under.
        policy: BudgetPolicy,
        /// Optional gate-level simulation request.
        gate_level: Option<GateLevelSpec>,
    },
    /// A Pareto exploration.
    Explore {
        /// Generator spec strings, as for sweeps.
        gen: Vec<String>,
        /// The explicit exploration requests, in report order.
        requests: Vec<ExploreRequest>,
        /// Budget policy.
        policy: BudgetPolicy,
        /// Budget ceiling for the range policies.
        ceiling: BudgetCeiling,
        /// Voltage policy: a global scaled-delay energy law or a per-op
        /// voltage preset (fine-grained DVS).
        voltage: VoltagePolicy,
        /// Branch-probability model.
        branch_model: BranchModel,
    },
    /// An online event-stream session with incremental schedule repair.
    Online {
        /// The stream spec string ([`gen::StreamSpec::parse`] syntax); it
        /// names both the circuit batch and the event sequence, so the
        /// daemon-side session is byte-identical to an in-process run.
        stream: String,
    },
}

impl JobSpec {
    /// A plain sweep job: no generated circuits, fixed budgets, no
    /// gate-level simulation.
    pub fn sweep(scenarios: Vec<Scenario>) -> JobSpec {
        JobSpec::Sweep { gen: Vec::new(), scenarios, policy: BudgetPolicy::Fixed, gate_level: None }
    }

    /// A plain exploration job with default options.
    pub fn explore(requests: Vec<ExploreRequest>) -> JobSpec {
        JobSpec::Explore {
            gen: Vec::new(),
            requests,
            policy: BudgetPolicy::default(),
            ceiling: BudgetCeiling::default(),
            voltage: VoltagePolicy::default(),
            branch_model: BranchModel::default(),
        }
    }

    /// An online session job over a stream spec string.
    pub fn online(stream: impl Into<String>) -> JobSpec {
        JobSpec::Online { stream: stream.into() }
    }

    /// What kind of job this is.
    pub fn kind(&self) -> JobKind {
        match self {
            JobSpec::Sweep { .. } => JobKind::Sweep,
            JobSpec::Explore { .. } => JobKind::Explore,
            JobSpec::Online { .. } => JobKind::Online,
        }
    }

    /// The generator specs the daemon must register.  Online jobs carry
    /// their circuit batch inside the stream spec instead.
    pub fn gen_specs(&self) -> &[String] {
        match self {
            JobSpec::Sweep { gen, .. } | JobSpec::Explore { gen, .. } => gen,
            JobSpec::Online { .. } => &[],
        }
    }

    /// Admission size: scenarios for a sweep, circuit walks for an
    /// exploration (pre-expansion in both cases), events for an online
    /// session (0 if the spec does not parse — execution rejects it with a
    /// typed failure anyway).
    pub fn size(&self) -> usize {
        match self {
            JobSpec::Sweep { scenarios, .. } => scenarios.len(),
            JobSpec::Explore { requests, .. } => requests.len(),
            JobSpec::Online { stream } => {
                gen::StreamSpec::parse(stream).map_or(0, |spec| spec.events)
            }
        }
    }

    fn to_json(&self) -> Json {
        match self {
            JobSpec::Sweep { gen, scenarios, policy, gate_level } => {
                let mut fields = vec![
                    ("kind".to_owned(), Json::Str("sweep".to_owned())),
                    ("gen".to_owned(), string_array(gen)),
                    (
                        "scenarios".to_owned(),
                        Json::Array(scenarios.iter().map(scenario_to_json).collect()),
                    ),
                    ("policy".to_owned(), Json::Str(policy.label().to_owned())),
                ];
                if let Some(gate) = gate_level {
                    fields.push((
                        "gate_level".to_owned(),
                        Json::Object(vec![
                            ("samples".to_owned(), Json::number(gate.samples)),
                            ("seed".to_owned(), Json::number(gate.seed)),
                        ]),
                    ));
                }
                Json::Object(fields)
            }
            JobSpec::Explore { gen, requests, policy, ceiling, voltage, branch_model } => {
                Json::Object(vec![
                    ("kind".to_owned(), Json::Str("explore".to_owned())),
                    ("gen".to_owned(), string_array(gen)),
                    (
                        "requests".to_owned(),
                        Json::Array(requests.iter().map(request_to_json).collect()),
                    ),
                    ("policy".to_owned(), Json::Str(policy.label().to_owned())),
                    ("ceiling".to_owned(), ceiling_to_json(*ceiling)),
                    ("voltage".to_owned(), Json::Str(voltage.label().to_owned())),
                    ("branch_model".to_owned(), Json::Str(branch_model.label())),
                ])
            }
            JobSpec::Online { stream } => Json::Object(vec![
                ("kind".to_owned(), Json::Str("online".to_owned())),
                ("stream".to_owned(), Json::Str(stream.clone())),
            ]),
        }
    }

    fn from_json(json: &Json) -> Result<JobSpec, String> {
        let kind = require_str(json, "kind")?;
        if kind == "online" {
            return Ok(JobSpec::Online { stream: require_str(json, "stream")?.to_owned() });
        }
        let gen = json.get("gen").map(parse_string_array).transpose()?.unwrap_or_default();
        let policy = BudgetPolicy::parse(require_str(json, "policy")?)
            .ok_or_else(|| "unknown budget policy".to_owned())?;
        match kind {
            "sweep" => {
                let scenarios = json
                    .get("scenarios")
                    .and_then(Json::as_array)
                    .ok_or("missing `scenarios`")?
                    .iter()
                    .map(scenario_from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                let gate_level = match json.get("gate_level") {
                    None | Some(Json::Null) => None,
                    Some(gate) => Some(GateLevelSpec {
                        samples: require_usize(gate, "samples")?,
                        seed: require_u64(gate, "seed")?,
                    }),
                };
                Ok(JobSpec::Sweep { gen, scenarios, policy, gate_level })
            }
            "explore" => {
                let requests = json
                    .get("requests")
                    .and_then(Json::as_array)
                    .ok_or("missing `requests`")?
                    .iter()
                    .map(request_from_json)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(JobSpec::Explore {
                    gen,
                    requests,
                    policy,
                    ceiling: ceiling_from_json(json.get("ceiling").ok_or("missing `ceiling`")?)?,
                    voltage: VoltagePolicy::parse(require_str(json, "voltage")?)
                        .ok_or("unknown voltage policy")?,
                    branch_model: parse_branch_model(require_str(json, "branch_model")?)?,
                })
            }
            other => Err(format!("unknown job kind `{other}`")),
        }
    }
}

/// One job's status snapshot (without the daemon-global cache counters,
/// which [`Response::Status`] carries alongside).
#[derive(Debug, Clone, PartialEq)]
pub struct JobStatus {
    /// The job id.
    pub id: u64,
    /// Sweep or explore.
    pub kind: JobKind,
    /// Current lifecycle state.
    pub state: JobState,
    /// Work items completed so far.
    pub completed: usize,
    /// Total work items in the expanded plan (0 until the run starts).
    pub total: usize,
    /// The job's own cache delta, once it finished.
    pub job_cache: Option<CacheStats>,
    /// Failed scenarios/walks in the finished report.
    pub failures: Option<usize>,
    /// The error a failed job ended with.
    pub error: Option<String>,
}

impl JobStatus {
    fn to_json(&self) -> Json {
        let mut fields = vec![
            ("id".to_owned(), Json::number(self.id)),
            ("kind".to_owned(), Json::Str(self.kind.label().to_owned())),
            ("state".to_owned(), Json::Str(self.state.label().to_owned())),
            ("completed".to_owned(), Json::number(self.completed)),
            ("total".to_owned(), Json::number(self.total)),
        ];
        if let Some(cache) = self.job_cache {
            fields.push(("job_cache".to_owned(), cache_to_json(cache)));
        }
        if let Some(failures) = self.failures {
            fields.push(("failures".to_owned(), Json::number(failures)));
        }
        if let Some(error) = &self.error {
            fields.push(("error".to_owned(), Json::Str(error.clone())));
        }
        Json::Object(fields)
    }

    fn from_json(json: &Json) -> Result<JobStatus, String> {
        Ok(JobStatus {
            id: require_u64(json, "id")?,
            kind: JobKind::parse(require_str(json, "kind")?).ok_or("unknown job kind")?,
            state: JobState::parse(require_str(json, "state")?).ok_or("unknown job state")?,
            completed: require_usize(json, "completed")?,
            total: require_usize(json, "total")?,
            job_cache: json.get("job_cache").map(cache_from_json).transpose()?,
            failures: json
                .get("failures")
                .map(|f| f.as_usize().ok_or("bad failures"))
                .transpose()?,
            error: json
                .get("error")
                .map(|e| Ok::<_, String>(e.as_str().ok_or("bad error")?.to_owned()))
                .transpose()?,
        })
    }
}

/// A daemon-to-client answer (one per request).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The job was admitted under this id.
    Submitted {
        /// The assigned job id.
        id: u64,
    },
    /// The job was turned away by the admission layer.
    Rejected(Rejection),
    /// The request itself was invalid (malformed line, unknown id, …).
    Error {
        /// What went wrong.
        detail: String,
    },
    /// One job's status plus the daemon-global cache counters.
    Status {
        /// Global cache counters at response time.
        cache: CacheStats,
        /// The job snapshot.
        job: JobStatus,
    },
    /// Every tracked job plus the daemon-global cache counters.
    Jobs {
        /// Global cache counters at response time.
        cache: CacheStats,
        /// Snapshots in submission order.
        jobs: Vec<JobStatus>,
    },
    /// Cancellation was processed; `state` is the job's state afterwards
    /// (a running job stays `running` until its next scenario boundary).
    Cancelled {
        /// The job id.
        id: u64,
        /// The state after the cancellation request.
        state: JobState,
    },
    /// The daemon acknowledged shutdown.
    ShuttingDown,
}

/// A streamed job-lifecycle message on a submit connection.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// Progress tick: `completed` of `total` work items are finished.
    /// Ticks arrive as workers finish, so consecutive `completed` values
    /// may be momentarily out of order; the final report is unaffected.
    Progress {
        /// The job id.
        id: u64,
        /// Work items completed.
        completed: usize,
        /// Total work items in the expanded plan.
        total: usize,
    },
    /// One finished record, replayed in plan order after the run completes.
    /// The payload is the exact single-line JSON object that appears in the
    /// final report's `records` array.
    Record {
        /// The job id.
        id: u64,
        /// The record's JSON line.
        json: String,
    },
    /// Terminal event: the job reached `state`.  `report` carries the full
    /// byte-exact report JSON for finished jobs.
    Done {
        /// The job id.
        id: u64,
        /// The terminal state.
        state: JobState,
        /// Failed scenarios/walks inside the report.
        failures: Option<usize>,
        /// The job's cache delta (hits/misses attributable to this job).
        job_cache: Option<CacheStats>,
        /// The full report JSON, byte-identical to an in-process run.
        report: Option<String>,
        /// The error a failed job ended with.
        error: Option<String>,
    },
}

impl Request {
    /// Emits the request as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let fields = match self {
            Request::Submit(spec) => vec![
                ("cmd".to_owned(), Json::Str("submit".to_owned())),
                ("job".to_owned(), spec.to_json()),
            ],
            Request::Status { id } => vec![
                ("cmd".to_owned(), Json::Str("status".to_owned())),
                ("id".to_owned(), Json::number(*id)),
            ],
            Request::List => vec![("cmd".to_owned(), Json::Str("list".to_owned()))],
            Request::Cancel { id } => vec![
                ("cmd".to_owned(), Json::Str("cancel".to_owned())),
                ("id".to_owned(), Json::number(*id)),
            ],
            Request::Shutdown => vec![("cmd".to_owned(), Json::Str("shutdown".to_owned()))],
        };
        Json::Object(fields).emit()
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the malformation.
    pub fn parse(line: &str) -> Result<Request, String> {
        let json = Json::parse(line)?;
        match require_str(&json, "cmd")? {
            "submit" => {
                Ok(Request::Submit(JobSpec::from_json(json.get("job").ok_or("missing `job`")?)?))
            }
            "status" => Ok(Request::Status { id: require_u64(&json, "id")? }),
            "list" => Ok(Request::List),
            "cancel" => Ok(Request::Cancel { id: require_u64(&json, "id")? }),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown command `{other}`")),
        }
    }
}

impl Response {
    /// Emits the response as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let fields = match self {
            Response::Submitted { id } => vec![
                ("resp".to_owned(), Json::Str("submitted".to_owned())),
                ("id".to_owned(), Json::number(*id)),
            ],
            Response::Rejected(rejection) => vec![
                ("resp".to_owned(), Json::Str("rejected".to_owned())),
                ("reason".to_owned(), Json::Str(rejection.reason.label().to_owned())),
                ("detail".to_owned(), Json::Str(rejection.detail.clone())),
            ],
            Response::Error { detail } => vec![
                ("resp".to_owned(), Json::Str("error".to_owned())),
                ("detail".to_owned(), Json::Str(detail.clone())),
            ],
            Response::Status { cache, job } => vec![
                ("resp".to_owned(), Json::Str("status".to_owned())),
                ("cache".to_owned(), cache_to_json(*cache)),
                ("job".to_owned(), job.to_json()),
            ],
            Response::Jobs { cache, jobs } => vec![
                ("resp".to_owned(), Json::Str("jobs".to_owned())),
                ("cache".to_owned(), cache_to_json(*cache)),
                ("jobs".to_owned(), Json::Array(jobs.iter().map(JobStatus::to_json).collect())),
            ],
            Response::Cancelled { id, state } => vec![
                ("resp".to_owned(), Json::Str("cancelled".to_owned())),
                ("id".to_owned(), Json::number(*id)),
                ("state".to_owned(), Json::Str(state.label().to_owned())),
            ],
            Response::ShuttingDown => {
                vec![("resp".to_owned(), Json::Str("shutting-down".to_owned()))]
            }
        };
        Json::Object(fields).emit()
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the malformation.
    pub fn parse(line: &str) -> Result<Response, String> {
        let json = Json::parse(line)?;
        match require_str(&json, "resp")? {
            "submitted" => Ok(Response::Submitted { id: require_u64(&json, "id")? }),
            "rejected" => Ok(Response::Rejected(Rejection {
                reason: RejectReason::parse(require_str(&json, "reason")?)
                    .ok_or("unknown reject reason")?,
                detail: require_str(&json, "detail")?.to_owned(),
            })),
            "error" => Ok(Response::Error { detail: require_str(&json, "detail")?.to_owned() }),
            "status" => Ok(Response::Status {
                cache: cache_from_json(json.get("cache").ok_or("missing `cache`")?)?,
                job: JobStatus::from_json(json.get("job").ok_or("missing `job`")?)?,
            }),
            "jobs" => Ok(Response::Jobs {
                cache: cache_from_json(json.get("cache").ok_or("missing `cache`")?)?,
                jobs: json
                    .get("jobs")
                    .and_then(Json::as_array)
                    .ok_or("missing `jobs`")?
                    .iter()
                    .map(JobStatus::from_json)
                    .collect::<Result<Vec<_>, _>>()?,
            }),
            "cancelled" => Ok(Response::Cancelled {
                id: require_u64(&json, "id")?,
                state: JobState::parse(require_str(&json, "state")?).ok_or("unknown state")?,
            }),
            "shutting-down" => Ok(Response::ShuttingDown),
            other => Err(format!("unknown response `{other}`")),
        }
    }
}

impl Event {
    /// Emits the event as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let fields = match self {
            Event::Progress { id, completed, total } => vec![
                ("event".to_owned(), Json::Str("progress".to_owned())),
                ("id".to_owned(), Json::number(*id)),
                ("completed".to_owned(), Json::number(*completed)),
                ("total".to_owned(), Json::number(*total)),
            ],
            Event::Record { id, json } => vec![
                ("event".to_owned(), Json::Str("record".to_owned())),
                ("id".to_owned(), Json::number(*id)),
                ("json".to_owned(), Json::Str(json.clone())),
            ],
            Event::Done { id, state, failures, job_cache, report, error } => {
                let mut fields = vec![
                    ("event".to_owned(), Json::Str("done".to_owned())),
                    ("id".to_owned(), Json::number(*id)),
                    ("state".to_owned(), Json::Str(state.label().to_owned())),
                ];
                if let Some(failures) = failures {
                    fields.push(("failures".to_owned(), Json::number(*failures)));
                }
                if let Some(cache) = job_cache {
                    fields.push(("job_cache".to_owned(), cache_to_json(*cache)));
                }
                if let Some(report) = report {
                    fields.push(("report".to_owned(), Json::Str(report.clone())));
                }
                if let Some(error) = error {
                    fields.push(("error".to_owned(), Json::Str(error.clone())));
                }
                fields
            }
        };
        Json::Object(fields).emit()
    }

    /// Parses one wire line.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the malformation.
    pub fn parse(line: &str) -> Result<Event, String> {
        let json = Json::parse(line)?;
        match require_str(&json, "event")? {
            "progress" => Ok(Event::Progress {
                id: require_u64(&json, "id")?,
                completed: require_usize(&json, "completed")?,
                total: require_usize(&json, "total")?,
            }),
            "record" => Ok(Event::Record {
                id: require_u64(&json, "id")?,
                json: require_str(&json, "json")?.to_owned(),
            }),
            "done" => Ok(Event::Done {
                id: require_u64(&json, "id")?,
                state: JobState::parse(require_str(&json, "state")?).ok_or("unknown state")?,
                failures: json
                    .get("failures")
                    .map(|f| f.as_usize().ok_or("bad failures"))
                    .transpose()?,
                job_cache: json.get("job_cache").map(cache_from_json).transpose()?,
                report: json
                    .get("report")
                    .map(|r| r.as_str().map(str::to_owned).ok_or("bad report"))
                    .transpose()?,
                error: json
                    .get("error")
                    .map(|e| e.as_str().map(str::to_owned).ok_or("bad error"))
                    .transpose()?,
            }),
            other => Err(format!("unknown event `{other}`")),
        }
    }
}

/// Parses a [`BranchModel::label`] string (`fair` or `p<permille>`).
pub fn parse_branch_model(label: &str) -> Result<BranchModel, String> {
    if label == "fair" {
        return Ok(BranchModel::Fair);
    }
    let permille: u16 = label
        .strip_prefix('p')
        .and_then(|digits| digits.parse().ok())
        .ok_or_else(|| format!("unknown branch model `{label}`"))?;
    if permille > 1000 {
        return Err(format!("branch model permille {permille} exceeds 1000"));
    }
    Ok(BranchModel::biased(permille))
}

/// Parses a [`SchedulerKind::label`] string.
pub fn parse_scheduler(label: &str) -> Result<SchedulerKind, String> {
    match label {
        "force" => Ok(SchedulerKind::ForceDirected),
        "list" => Ok(SchedulerKind::List),
        other => Err(format!("unknown scheduler `{other}`")),
    }
}

fn scenario_to_json(scenario: &Scenario) -> Json {
    Json::Object(vec![
        ("circuit".to_owned(), Json::Str(scenario.circuit.clone())),
        ("latency".to_owned(), Json::number(scenario.latency)),
        ("scheduler".to_owned(), Json::Str(scenario.scheduler.label().to_owned())),
        ("pipeline_depth".to_owned(), Json::number(scenario.pipeline_depth)),
        ("reorder".to_owned(), Json::Bool(scenario.reorder)),
        ("branch_model".to_owned(), Json::Str(scenario.branch_model.label())),
    ])
}

fn scenario_from_json(json: &Json) -> Result<Scenario, String> {
    Ok(Scenario::new(require_str(json, "circuit")?, require_u32(json, "latency")?)
        .scheduler(parse_scheduler(require_str(json, "scheduler")?)?)
        .pipeline_depth(require_u32(json, "pipeline_depth")?)
        .reorder(json.get("reorder").and_then(Json::as_bool).ok_or("missing `reorder`")?)
        .branch_model(parse_branch_model(require_str(json, "branch_model")?)?))
}

fn request_to_json(request: &ExploreRequest) -> Json {
    Json::Object(vec![
        ("circuit".to_owned(), Json::Str(request.circuit.clone())),
        (
            "budgets".to_owned(),
            Json::Array(request.budgets.iter().map(|&b| Json::number(b)).collect()),
        ),
    ])
}

fn request_from_json(json: &Json) -> Result<ExploreRequest, String> {
    let budgets = json
        .get("budgets")
        .and_then(Json::as_array)
        .ok_or("missing `budgets`")?
        .iter()
        .map(|b| b.as_u32().ok_or_else(|| "bad budget".to_owned()))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(ExploreRequest::new(require_str(json, "circuit")?).budgets(budgets))
}

fn ceiling_to_json(ceiling: BudgetCeiling) -> Json {
    match ceiling {
        BudgetCeiling::Absolute(steps) => {
            Json::Object(vec![("absolute".to_owned(), Json::number(steps))])
        }
        BudgetCeiling::CriticalPathPlus(span) => {
            Json::Object(vec![("cp-plus".to_owned(), Json::number(span))])
        }
    }
}

fn ceiling_from_json(json: &Json) -> Result<BudgetCeiling, String> {
    if let Some(steps) = json.get("absolute") {
        return Ok(BudgetCeiling::Absolute(steps.as_u32().ok_or("bad ceiling")?));
    }
    if let Some(span) = json.get("cp-plus") {
        return Ok(BudgetCeiling::CriticalPathPlus(span.as_u32().ok_or("bad ceiling")?));
    }
    Err("ceiling needs `absolute` or `cp-plus`".to_owned())
}

fn cache_to_json(cache: CacheStats) -> Json {
    Json::Object(vec![
        ("hits".to_owned(), Json::number(cache.hits)),
        ("misses".to_owned(), Json::number(cache.misses)),
        ("entries".to_owned(), Json::number(cache.entries)),
    ])
}

fn cache_from_json(json: &Json) -> Result<CacheStats, String> {
    Ok(CacheStats {
        hits: require_u64(json, "hits")?,
        misses: require_u64(json, "misses")?,
        entries: require_usize(json, "entries")?,
    })
}

fn string_array(items: &[String]) -> Json {
    Json::Array(items.iter().map(|s| Json::Str(s.clone())).collect())
}

fn parse_string_array(json: &Json) -> Result<Vec<String>, String> {
    json.as_array()
        .ok_or("expected string array")?
        .iter()
        .map(|item| item.as_str().map(str::to_owned).ok_or_else(|| "expected string".to_owned()))
        .collect()
}

fn require_str<'a>(json: &'a Json, key: &str) -> Result<&'a str, String> {
    json.get(key).and_then(Json::as_str).ok_or_else(|| format!("missing string `{key}`"))
}

fn require_u64(json: &Json, key: &str) -> Result<u64, String> {
    json.get(key).and_then(Json::as_u64).ok_or_else(|| format!("missing number `{key}`"))
}

fn require_u32(json: &Json, key: &str) -> Result<u32, String> {
    json.get(key).and_then(Json::as_u32).ok_or_else(|| format!("missing number `{key}`"))
}

fn require_usize(json: &Json, key: &str) -> Result<usize, String> {
    json.get(key).and_then(Json::as_usize).ok_or_else(|| format!("missing number `{key}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(request: Request) {
        let line = request.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(Request::parse(&line).unwrap(), request, "{line}");
    }

    fn roundtrip_response(response: Response) {
        let line = response.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(Response::parse(&line).unwrap(), response, "{line}");
    }

    fn roundtrip_event(event: Event) {
        let line = event.to_line();
        assert!(!line.contains('\n'));
        assert_eq!(Event::parse(&line).unwrap(), event, "{line}");
    }

    #[test]
    fn sweep_submissions_roundtrip_every_scenario_knob() {
        let scenarios = vec![
            Scenario::new("dealer", 4),
            Scenario::new("gen-rdag-s42-w6-d8-m300-0001", 9)
                .scheduler(SchedulerKind::List)
                .pipeline_depth(2)
                .reorder(true)
                .branch_model(BranchModel::biased(300)),
        ];
        roundtrip_request(Request::Submit(JobSpec::sweep(scenarios.clone())));
        roundtrip_request(Request::Submit(JobSpec::Sweep {
            gen: vec!["family=random-dag,seed=42,count=2".to_owned()],
            scenarios,
            policy: BudgetPolicy::Pareto,
            gate_level: Some(GateLevelSpec { samples: 256, seed: u64::MAX }),
        }));
    }

    #[test]
    fn explore_submissions_roundtrip_every_option() {
        roundtrip_request(Request::Submit(JobSpec::explore(vec![
            ExploreRequest::new("dealer").budgets([4, 6])
        ])));
        roundtrip_request(Request::Submit(JobSpec::Explore {
            gen: vec!["family=mux-tree,seed=7,count=3".to_owned()],
            requests: vec![ExploreRequest::new("x"), ExploreRequest::new("y").budgets([3])],
            policy: BudgetPolicy::FullRange,
            ceiling: BudgetCeiling::Absolute(20),
            voltage: VoltagePolicy::Global(engine::DelayScaling::Linear),
            branch_model: BranchModel::biased(900),
        }));
        roundtrip_request(Request::Submit(JobSpec::Explore {
            gen: Vec::new(),
            requests: vec![ExploreRequest::new("z")],
            policy: BudgetPolicy::Pareto,
            ceiling: BudgetCeiling::CriticalPathPlus(4),
            voltage: VoltagePolicy::PerOp(engine::VoltagePreset::FiveLevel),
            branch_model: BranchModel::Fair,
        }));
    }

    #[test]
    fn online_submissions_roundtrip_and_size_counts_events() {
        let stream = "family=mux-tree,seed=7,count=3;events=50,eseed=9,span=4";
        let spec = JobSpec::online(stream);
        assert_eq!(spec.kind(), JobKind::Online);
        assert_eq!(spec.size(), 50);
        assert!(spec.gen_specs().is_empty());
        roundtrip_request(Request::Submit(spec));
        assert_eq!(JobSpec::online("not a stream spec").size(), 0);
        assert!(Request::parse("{\"cmd\":\"submit\",\"job\":{\"kind\":\"online\"}}").is_err());
    }

    #[test]
    fn control_requests_roundtrip() {
        roundtrip_request(Request::Status { id: 7 });
        roundtrip_request(Request::List);
        roundtrip_request(Request::Cancel { id: u64::MAX });
        roundtrip_request(Request::Shutdown);
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Submitted { id: 1 });
        roundtrip_response(Response::Rejected(Rejection {
            reason: RejectReason::QueueFull,
            detail: "16 jobs queued (limit 16)".to_owned(),
        }));
        roundtrip_response(Response::Error { detail: "missing `job`".to_owned() });
        let status = JobStatus {
            id: 3,
            kind: JobKind::Sweep,
            state: JobState::Running,
            completed: 12,
            total: 32,
            job_cache: None,
            failures: None,
            error: None,
        };
        let cache = CacheStats { hits: 10, misses: 5, entries: 5 };
        roundtrip_response(Response::Status { cache, job: status.clone() });
        let finished = JobStatus {
            state: JobState::Done,
            completed: 32,
            job_cache: Some(CacheStats { hits: 16, misses: 0, entries: 5 }),
            failures: Some(2),
            ..status
        };
        roundtrip_response(Response::Jobs { cache, jobs: vec![finished] });
        roundtrip_response(Response::Cancelled { id: 2, state: JobState::Cancelled });
        roundtrip_response(Response::ShuttingDown);
    }

    #[test]
    fn events_roundtrip_including_multiline_report_payloads() {
        roundtrip_event(Event::Progress { id: 1, completed: 3, total: 32 });
        roundtrip_event(Event::Record {
            id: 1,
            json: "{\"scenario\": {\"circuit\": \"dealer\"}, \"ok\": true}".to_owned(),
        });
        roundtrip_event(Event::Done {
            id: 1,
            state: JobState::Done,
            failures: Some(0),
            job_cache: Some(CacheStats { hits: 0, misses: 16, entries: 16 }),
            report: Some("{\n  \"records\": [\n  ]\n}\n".to_owned()),
            error: None,
        });
        roundtrip_event(Event::Done {
            id: 2,
            state: JobState::Failed,
            failures: None,
            job_cache: None,
            report: None,
            error: Some("unknown family `nope`".to_owned()),
        });
    }

    #[test]
    fn branch_model_and_scheduler_labels_parse_back() {
        for model in [
            BranchModel::Fair,
            BranchModel::biased(0),
            BranchModel::biased(300),
            BranchModel::biased(1000),
        ] {
            assert_eq!(parse_branch_model(&model.label()).unwrap(), model);
        }
        assert!(parse_branch_model("p1001").is_err());
        assert!(parse_branch_model("biased").is_err());
        for scheduler in [SchedulerKind::ForceDirected, SchedulerKind::List] {
            assert_eq!(parse_scheduler(scheduler.label()).unwrap(), scheduler);
        }
        assert!(parse_scheduler("hyper").is_err());
    }

    #[test]
    fn malformed_lines_are_rejected_with_context() {
        assert!(Request::parse("not json").is_err());
        assert!(Request::parse("{\"cmd\":\"warp\"}").is_err());
        assert!(Request::parse("{\"cmd\":\"status\"}").is_err(), "missing id");
        assert!(Request::parse("{\"cmd\":\"submit\"}").is_err(), "missing job");
        assert!(Response::parse("{\"resp\":\"status\"}").is_err());
        assert!(Event::parse("{\"event\":\"progress\",\"id\":1}").is_err());
        let err =
            JobSpec::from_json(&Json::parse("{\"kind\":\"sweep\",\"policy\":\"fixed\"}").unwrap());
        assert!(err.is_err(), "missing scenarios");
    }
}
