//! Command-line client for the sweep-service daemon.
//!
//! ```text
//! sweepctl --socket PATH submit [--gen SPEC]... [--case CIRCUIT:LATENCY]...
//!          [--explore] [--online STREAM] [--policy fixed|full-range|pareto]
//!          [--json]
//! sweepctl --socket PATH status ID
//! sweepctl --socket PATH list
//! sweepctl --socket PATH cancel ID
//! sweepctl --socket PATH shutdown
//! ```
//!
//! `submit` blocks until the job finishes and prints a summary line (or,
//! with `--json`, the byte-exact report on stdout).  Generator specs are
//! expanded client-side into explicit scenarios — each generated circuit
//! at every derived budget under both schedulers for sweeps, each circuit
//! across its own budget list for explorations — so the daemon runs
//! exactly what an in-process `sweep --gen`/`pareto --gen` would.
//!
//! `submit --online STREAM` runs an online event-stream session instead
//! (`gen` stream-spec syntax, e.g.
//! `family=mux-tree,seed=7,count=3;events=200,eseed=1`); the daemon streams
//! one record per event, in event order, as the session repairs each
//! schedule, and the final report is byte-identical to an in-process
//! `engine::online::run_stream`.
//!
//! Exit codes: 0 success, 1 the job failed or was cancelled, 2 usage,
//! 3 connection/daemon/rejection errors.

use std::process::exit;

use engine::{BudgetPolicy, CacheStats, ExploreRequest, Scenario, VoltagePolicy};
use service::protocol::{JobStatus, Request, Response};
use service::{Client, JobSpec, JobState, ServiceError};

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let socket = take_flag_value(&mut args, "--socket")
        .unwrap_or_else(|| usage("--socket PATH is required"));
    if args.is_empty() {
        usage("missing command");
    }
    let command = args.remove(0);

    let mut client = match Client::connect(&socket) {
        Ok(client) => client,
        Err(err) => fail(&err),
    };

    match command.as_str() {
        "submit" => submit(&mut client, args),
        "status" => {
            let id = parse_id(&args);
            match client.request(&Request::Status { id }) {
                Ok(Response::Status { cache, job }) => {
                    println!("{}", status_line(&job));
                    println!("{}", cache_line(cache));
                }
                Ok(other) => fail_response(other),
                Err(err) => fail(&err),
            }
        }
        "list" => match client.request(&Request::List) {
            Ok(Response::Jobs { cache, jobs }) => {
                for job in &jobs {
                    println!("{}", status_line(job));
                }
                println!("{}", cache_line(cache));
            }
            Ok(other) => fail_response(other),
            Err(err) => fail(&err),
        },
        "cancel" => {
            let id = parse_id(&args);
            match client.request(&Request::Cancel { id }) {
                Ok(Response::Cancelled { id, state }) => {
                    println!("cancelled id={id} state={state}")
                }
                Ok(other) => fail_response(other),
                Err(err) => fail(&err),
            }
        }
        "shutdown" => match client.request(&Request::Shutdown) {
            Ok(Response::ShuttingDown) => println!("shutting down"),
            Ok(other) => fail_response(other),
            Err(err) => fail(&err),
        },
        other => usage(&format!("unknown command `{other}`")),
    }
}

fn submit(client: &mut Client, mut args: Vec<String>) {
    let mut gen_specs: Vec<String> = Vec::new();
    let mut cases: Vec<String> = Vec::new();
    let mut explore = false;
    let mut online: Option<String> = None;
    let mut policy: Option<BudgetPolicy> = None;
    let mut voltage: Option<VoltagePolicy> = None;
    let mut json = false;

    while !args.is_empty() {
        let arg = args.remove(0);
        match arg.as_str() {
            "--gen" => {
                if args.is_empty() {
                    usage("--gen needs a spec");
                }
                gen_specs.push(args.remove(0));
            }
            "--case" => {
                if args.is_empty() {
                    usage("--case needs CIRCUIT:LATENCY");
                }
                cases.push(args.remove(0));
            }
            "--explore" => explore = true,
            "--online" => {
                if args.is_empty() {
                    usage("--online needs a stream spec");
                }
                online = Some(args.remove(0));
            }
            "--json" => json = true,
            "--policy" => {
                if args.is_empty() {
                    usage("--policy needs a name");
                }
                let text = args.remove(0);
                policy = Some(
                    BudgetPolicy::parse(&text)
                        .unwrap_or_else(|| usage(&format!("unknown policy `{text}`"))),
                );
            }
            "--voltage" => {
                if args.is_empty() {
                    usage("--voltage needs a policy label (e.g. global-quadratic, per-op-3)");
                }
                let text = args.remove(0);
                voltage = Some(
                    VoltagePolicy::parse(&text)
                        .unwrap_or_else(|| usage(&format!("unknown voltage policy `{text}`"))),
                );
            }
            other => usage(&format!("unknown submit argument `{other}`")),
        }
    }

    let spec = if let Some(stream) = online {
        if explore || !gen_specs.is_empty() || !cases.is_empty() || policy.is_some() {
            usage("--online takes only a stream spec (and --json)");
        }
        if voltage.is_some() {
            usage("--voltage only applies to --explore jobs");
        }
        // Validate client-side so typos fail fast with the parser's message
        // instead of a failed job.
        if let Err(err) = gen::StreamSpec::parse(&stream) {
            usage(&err.to_string());
        }
        JobSpec::online(stream)
    } else if explore {
        let mut requests: Vec<ExploreRequest> = match service::plans::gen_requests(&gen_specs) {
            Ok(requests) => requests,
            Err(err) => usage(&err),
        };
        for case in &cases {
            let (circuit, budget) = parse_case(case);
            requests.push(ExploreRequest::new(circuit).budgets([budget]));
        }
        let mut spec = JobSpec::explore(requests);
        if let (JobSpec::Explore { policy: p, .. }, Some(wanted)) = (&mut spec, policy) {
            *p = wanted;
        }
        if let (JobSpec::Explore { voltage: v, .. }, Some(wanted)) = (&mut spec, voltage) {
            *v = wanted;
        }
        match (&mut spec, gen_specs) {
            (JobSpec::Explore { gen, .. }, specs) => *gen = specs,
            _ => unreachable!(),
        }
        spec
    } else {
        if voltage.is_some() {
            usage("--voltage only applies to --explore jobs");
        }
        let mut scenarios: Vec<Scenario> = match service::plans::gen_scenarios(&gen_specs) {
            Ok(scenarios) => scenarios,
            Err(err) => usage(&err),
        };
        for case in &cases {
            let (circuit, latency) = parse_case(case);
            scenarios.push(Scenario::new(circuit, latency));
        }
        JobSpec::Sweep {
            gen: gen_specs,
            scenarios,
            policy: policy.unwrap_or(BudgetPolicy::Fixed),
            gate_level: None,
        }
    };

    let id = match client.submit(spec) {
        Ok(id) => id,
        Err(err) => fail(&err),
    };
    eprintln!("submitted id={id}");
    let outcome = match client.wait(id, |_, _| {}) {
        Ok(outcome) => outcome,
        Err(err) => fail(&err),
    };
    if json {
        if let Some(report) = &outcome.report {
            print!("{report}");
        }
    }
    eprintln!(
        "id={} state={} failures={} progress_events={}{}",
        outcome.id,
        outcome.state,
        outcome.failures.map_or_else(|| "-".to_owned(), |f| f.to_string()),
        outcome.progress_events,
        outcome.job_cache.map_or_else(String::new, |c| format!(
            " cache_hits={} cache_misses={}",
            c.hits, c.misses
        )),
    );
    if let Some(error) = &outcome.error {
        eprintln!("error: {error}");
    }
    match outcome.state {
        JobState::Done if outcome.failures.unwrap_or(0) == 0 => {}
        _ => exit(1),
    }
}

fn status_line(job: &JobStatus) -> String {
    let mut line = format!(
        "id={} kind={} state={} completed={} total={}",
        job.id, job.kind, job.state, job.completed, job.total
    );
    if let Some(cache) = job.job_cache {
        line.push_str(&format!(" cache_hits={} cache_misses={}", cache.hits, cache.misses));
    }
    if let Some(failures) = job.failures {
        line.push_str(&format!(" failures={failures}"));
    }
    if let Some(error) = &job.error {
        line.push_str(&format!(" error={error}"));
    }
    line
}

fn cache_line(cache: CacheStats) -> String {
    format!("cache hits={} misses={} entries={}", cache.hits, cache.misses, cache.entries)
}

fn parse_case(text: &str) -> (String, u32) {
    let Some((circuit, number)) = text.rsplit_once(':') else {
        usage(&format!("`{text}` is not CIRCUIT:NUMBER"));
    };
    let Ok(number) = number.parse() else {
        usage(&format!("`{text}` is not CIRCUIT:NUMBER"));
    };
    (circuit.to_owned(), number)
}

fn parse_id(args: &[String]) -> u64 {
    args.first().and_then(|v| v.parse().ok()).unwrap_or_else(|| usage("expected a job id"))
}

fn take_flag_value(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let index = args.iter().position(|a| a == flag)?;
    if index + 1 >= args.len() {
        usage(&format!("{flag} needs a value"));
    }
    args.remove(index);
    Some(args.remove(index))
}

fn fail(err: &ServiceError) -> ! {
    eprintln!("sweepctl: {err}");
    exit(3);
}

fn fail_response(response: Response) -> ! {
    match response {
        Response::Error { detail } => eprintln!("sweepctl: daemon error: {detail}"),
        other => eprintln!("sweepctl: unexpected response {other:?}"),
    }
    exit(3);
}

fn usage(problem: &str) -> ! {
    eprintln!("sweepctl: {problem}");
    eprintln!(
        "usage: sweepctl --socket PATH submit [--gen SPEC]... [--case CIRCUIT:LATENCY]... \
         [--explore] [--online STREAM] [--policy fixed|full-range|pareto] \
         [--voltage global-none|global-linear|global-quadratic|per-op-2|per-op-3|per-op-5] \
         [--json]\n\
         \u{20}      sweepctl --socket PATH status|cancel ID\n\
         \u{20}      sweepctl --socket PATH list|shutdown"
    );
    exit(2);
}
