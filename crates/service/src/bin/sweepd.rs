//! The sweep-service daemon.
//!
//! ```text
//! cargo run --release -p service --bin sweepd -- --socket PATH
//!     [--threads N] [--max-queue N] [--max-items N]
//! ```
//!
//! Binds `PATH`, serves the newline-delimited-JSON protocol (see the
//! `service` crate docs) and runs until a client sends `shutdown` (e.g.
//! `sweepctl --socket PATH shutdown`).  One engine and its memo cache live
//! for the daemon's whole lifetime, so repeated jobs get warm-cache
//! latency.

use std::path::PathBuf;
use std::process::exit;

use service::{AdmissionLimits, Daemon, DaemonConfig};

fn main() {
    let mut socket: Option<PathBuf> = None;
    let mut threads = 0usize;
    let mut limits = AdmissionLimits::default();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => {
                socket = Some(PathBuf::from(
                    args.next().unwrap_or_else(|| usage("--socket needs a path")),
                ));
            }
            "--threads" => {
                threads = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--threads needs an integer"));
            }
            "--max-queue" => {
                limits.max_queued = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--max-queue needs an integer"));
            }
            "--max-items" => {
                limits.max_job_items = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--max-items needs an integer"));
            }
            other => usage(&format!("unknown argument `{other}`")),
        }
    }
    let Some(socket) = socket else { usage("--socket is required") };

    let config = DaemonConfig { socket: socket.clone(), threads, limits };
    let handle = match Daemon::start(config) {
        Ok(handle) => handle,
        Err(err) => {
            eprintln!("sweepd: {err}");
            exit(1);
        }
    };
    println!("sweepd: listening on {}", socket.display());
    handle.join();
    println!("sweepd: shut down");
}

fn usage(problem: &str) -> ! {
    eprintln!("sweepd: {problem}");
    eprintln!("usage: sweepd --socket PATH [--threads N] [--max-queue N] [--max-items N]");
    exit(2);
}
