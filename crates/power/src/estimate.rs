//! Power and area estimation: the Table II and Table III methods.

use std::collections::BTreeMap;
use std::fmt;

use binding::Datapath;
use cdfg::{Cdfg, OpClass};
use pmsched::{
    power_manage, OpWeights, PowerManageError, PowerManagementOptions, PowerManagementResult,
    SavingsReport, SelectProbabilities,
};
use rtl::{Controller, GateModel, SimError, Simulator};
use sched::ResourceConstraint;

use crate::vectors::RandomVectors;

/// The probabilistic datapath power estimate of Table II: expected operation
/// executions under `probs`, weighted by `weights`.
///
/// This is a thin convenience wrapper over
/// [`PowerManagementResult::savings_with`] so downstream code only needs the
/// `power` crate.
pub fn datapath_estimate(
    result: &PowerManagementResult,
    probs: &SelectProbabilities,
    weights: &OpWeights,
) -> SavingsReport {
    result.savings_with(probs, weights)
}

/// Options for the gate-level (Table III style) comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GateLevelOptions {
    /// Number of control steps per computation.
    pub latency: u32,
    /// Execution-unit constraint handed to both schedules.
    pub resources: ResourceConstraint,
    /// Number of random input samples to simulate.
    pub samples: usize,
    /// Seed for the random vector generator.
    pub seed: u64,
}

impl GateLevelOptions {
    /// Default options for a given latency: unlimited resources, 1000
    /// samples, a fixed seed.
    pub fn new(latency: u32) -> Self {
        GateLevelOptions {
            latency,
            resources: ResourceConstraint::Unlimited,
            samples: 1000,
            seed: 0xDAC96,
        }
    }

    /// Sets the number of simulated samples.
    pub fn samples(mut self, samples: usize) -> Self {
        self.samples = samples;
        self
    }

    /// Sets the execution-unit constraint.
    pub fn resources(mut self, resources: ResourceConstraint) -> Self {
        self.resources = resources;
        self
    }

    /// Sets the random seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Errors produced by the power-estimation flows.
#[derive(Debug)]
#[non_exhaustive]
pub enum EstimateError {
    /// Scheduling or power management failed.
    PowerManage(PowerManageError),
    /// RTL simulation failed (including functional mismatches, which would
    /// indicate an unsound shut-down decision).
    Simulation(SimError),
    /// Datapath construction failed.
    Binding(binding::BindError),
    /// The comparison baseline is degenerate — zero samples requested, or
    /// zero baseline power/area — so every "reduction" ratio would divide
    /// by zero.  Surfaced as a typed error instead of the NaN/∞ (or a
    /// silent 0%) the ratios used to produce.
    DegenerateBaseline {
        /// What exactly is degenerate about the baseline.
        reason: String,
    },
}

impl EstimateError {
    /// Builds the degenerate-baseline error.
    pub(crate) fn degenerate(reason: impl Into<String>) -> Self {
        EstimateError::DegenerateBaseline { reason: reason.into() }
    }
}

impl fmt::Display for EstimateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EstimateError::PowerManage(e) => write!(f, "power management failed: {e}"),
            EstimateError::Simulation(e) => write!(f, "rtl simulation failed: {e}"),
            EstimateError::Binding(e) => write!(f, "binding failed: {e}"),
            EstimateError::DegenerateBaseline { reason } => {
                write!(f, "degenerate baseline: {reason}")
            }
        }
    }
}

impl std::error::Error for EstimateError {}

impl From<PowerManageError> for EstimateError {
    fn from(e: PowerManageError) -> Self {
        EstimateError::PowerManage(e)
    }
}

impl From<SimError> for EstimateError {
    fn from(e: SimError) -> Self {
        EstimateError::Simulation(e)
    }
}

impl From<binding::BindError> for EstimateError {
    fn from(e: binding::BindError) -> Self {
        EstimateError::Binding(e)
    }
}

/// The Table III style report: original vs power-managed design at "gate
/// level" (simulated switching activity and gate-equivalent area).
#[derive(Debug, Clone, PartialEq)]
pub struct GateLevelReport {
    /// Design name.
    pub name: String,
    /// Control steps used by both designs.
    pub latency: u32,
    /// Gate-equivalent area of the original design.
    pub original_area: f64,
    /// Gate-equivalent area of the power-managed design (datapath plus the
    /// more complex controller).
    pub managed_area: f64,
    /// `managed_area / original_area` — the "Area Incr." column.
    pub area_ratio: f64,
    /// Simulated energy of the original design (arbitrary units).
    pub original_power: f64,
    /// Simulated energy of the power-managed design.
    pub managed_power: f64,
    /// `100 * (original - managed) / original` — the "Power %" column.
    pub power_reduction_percent: f64,
    /// Number of samples simulated.
    pub samples: usize,
}

impl fmt::Display for GateLevelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: area {:.0} -> {:.0} (x{:.2}), power {:.1} -> {:.1} ({:.1}% reduction)",
            self.name,
            self.original_area,
            self.managed_area,
            self.area_ratio,
            self.original_power,
            self.managed_power,
            self.power_reduction_percent
        )
    }
}

/// Runs the full Table III flow on one design: power-managed and baseline
/// schedules, controller generation, gate-level area, and switching-activity
/// simulation of both designs over the same random vectors.
///
/// # Errors
///
/// Returns an [`EstimateError`] if scheduling, binding or simulation fails.
/// A functional mismatch between the power-managed RTL and the reference
/// semantics is reported as a simulation error.
pub fn gate_level_comparison(
    cdfg: &Cdfg,
    options: &GateLevelOptions,
) -> Result<GateLevelReport, EstimateError> {
    let pm_options =
        PowerManagementOptions::with_resources(options.latency, options.resources.clone());
    let result = power_manage(cdfg, &pm_options)?;
    gate_level_with_result(cdfg, &result, options)
}

/// Same flow as [`gate_level_comparison`], but reusing an already computed
/// power-management result (whose latency must match `options.latency`) so
/// callers that cache the scheduling prefix do not pay for it twice.
///
/// # Errors
///
/// Returns an [`EstimateError`] if binding or simulation fails, or
/// [`EstimateError::DegenerateBaseline`] when `options.samples` is zero or
/// the baseline design simulates to zero power — both would otherwise turn
/// the reduction and area ratios into NaN/∞ or a silent fake 0%.
pub fn gate_level_with_result(
    cdfg: &Cdfg,
    result: &PowerManagementResult,
    options: &GateLevelOptions,
) -> Result<GateLevelReport, EstimateError> {
    if options.samples == 0 {
        return Err(EstimateError::degenerate(
            "zero samples requested: no activity to compare against",
        ));
    }
    // Managed design.
    let managed_controller = Controller::generate(result);
    let managed_datapath = Datapath::build(result.cdfg(), result.schedule())?;
    // Original (baseline) design: same constraints, traditional schedule,
    // ungated controller.  Note the baseline uses the original CDFG without
    // the control edges.
    let baseline_controller = Controller::ungated(cdfg, result.baseline_schedule());
    let baseline_datapath = Datapath::build(cdfg, result.baseline_schedule())?;

    let gate_model = GateModel::new();
    let managed_gates = gate_model.expand(&managed_datapath, &managed_controller);
    let baseline_gates = gate_model.expand(&baseline_datapath, &baseline_controller);

    // Simulate both designs on identical random vectors.
    let vectors = RandomVectors::new(cdfg, options.seed).samples(options.samples);
    let mut managed_sim = Simulator::new(result.cdfg(), result.schedule(), &managed_controller)?;
    let mut baseline_sim = Simulator::new(cdfg, result.baseline_schedule(), &baseline_controller)?;
    for sample in &vectors {
        managed_sim.run_sample(sample)?;
        baseline_sim.run_sample(sample)?;
    }

    let weights = OpWeights::paper_power();
    let managed_power = simulated_energy(&managed_sim, &weights, cdfg.default_bitwidth())
        + controller_energy(&managed_controller, options.samples);
    let original_power = simulated_energy(&baseline_sim, &weights, cdfg.default_bitwidth())
        + controller_energy(&baseline_controller, options.samples);

    // The explicit NaN checks matter: a plain `x <= 0` would wave NaN through
    // into every downstream ratio.
    if !original_power.is_finite() || original_power <= 0.0 {
        return Err(EstimateError::degenerate(format!(
            "baseline simulates to non-positive power ({original_power}); \
             a zero-activity design has no savings ratio"
        )));
    }
    let original_area = baseline_gates.total();
    let managed_area = managed_gates.total();
    if !original_area.is_finite() || original_area <= 0.0 {
        return Err(EstimateError::degenerate(format!(
            "baseline expands to non-positive gate area ({original_area})"
        )));
    }

    Ok(GateLevelReport {
        name: cdfg.name().to_owned(),
        latency: options.latency,
        original_area,
        managed_area,
        area_ratio: managed_area / original_area,
        original_power,
        managed_power,
        power_reduction_percent: 100.0 * (original_power - managed_power) / original_power,
        samples: options.samples,
    })
}

/// Converts the simulator's per-unit activity into energy.
///
/// Each active cycle of a unit costs half its nominal class weight (clocking
/// and internal-node activity) plus a data-dependent part proportional to
/// the fraction of interface bits that toggled.  An idle (gated) cycle costs
/// nothing — its inputs are held, which is the entire point of the paper's
/// shut-down technique.
fn simulated_energy(sim: &Simulator, weights: &OpWeights, bitwidth: u32) -> f64 {
    let mut per_class: BTreeMap<OpClass, (u64, u64)> = BTreeMap::new();
    for (unit, activity) in sim.activity() {
        if let Some(fu) = sim.datapath().fu_binding().unit(*unit) {
            let entry = per_class.entry(fu.class).or_insert((0, 0));
            entry.0 += activity.active_cycles;
            entry.1 += activity.toggled_bits;
        }
    }
    per_class
        .into_iter()
        .map(|(class, (active, toggles))| {
            let data_part = toggles as f64 / f64::from(bitwidth.max(1));
            weights.weight(class) * (0.5 * active as f64 + 0.5 * data_part)
        })
        .sum()
}

/// Energy of the controller itself: the state register toggles every cycle
/// and each gated enable adds decode activity.  This is what makes Table III
/// savings slightly lower than the datapath-only Table II savings.
fn controller_energy(controller: &Controller, samples: usize) -> f64 {
    let per_sample = 0.05 * f64::from(controller.num_steps())
        + 0.1 * controller.gated_enable_count() as f64
        + 0.05 * controller.condition_signals().len() as f64;
    per_sample * samples as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::Op;

    fn abs_diff() -> Cdfg {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        g
    }

    #[test]
    fn managed_design_saves_simulated_power() {
        let g = abs_diff();
        let report = gate_level_comparison(&g, &GateLevelOptions::new(3).samples(300)).unwrap();
        assert!(report.power_reduction_percent > 5.0, "{report}");
        assert!(report.power_reduction_percent < 80.0);
        assert!(report.managed_power < report.original_power);
        assert_eq!(report.samples, 300);
    }

    #[test]
    fn gate_level_savings_below_datapath_only_savings() {
        // The paper: "the savings in Table III are slightly lower [than]
        // Table II as expected" because the controller is more complex.
        let g = abs_diff();
        let pm = power_manage(&g, &PowerManagementOptions::with_latency(3)).unwrap();
        let datapath_only =
            datapath_estimate(&pm, &SelectProbabilities::fair(), &OpWeights::paper_power());
        let gate_level = gate_level_comparison(&g, &GateLevelOptions::new(3).samples(300)).unwrap();
        assert!(gate_level.power_reduction_percent < datapath_only.reduction_percent + 5.0);
    }

    #[test]
    fn unmanaged_latency_yields_no_savings() {
        let g = abs_diff();
        let report = gate_level_comparison(&g, &GateLevelOptions::new(2).samples(200)).unwrap();
        assert!(report.power_reduction_percent.abs() < 5.0, "{report}");
        assert!((report.area_ratio - 1.0).abs() < 0.2);
    }

    #[test]
    fn options_builders_chain() {
        let opts =
            GateLevelOptions::new(4).samples(10).seed(1).resources(ResourceConstraint::Unlimited);
        assert_eq!(opts.latency, 4);
        assert_eq!(opts.samples, 10);
        assert_eq!(opts.seed, 1);
    }

    #[test]
    fn zero_samples_is_a_typed_degenerate_baseline_error() {
        // Before PR 5 a zero-sample run divided 0/0 into the reduction
        // ratio (or silently reported 0%); it must be a typed error now.
        let g = abs_diff();
        let err = gate_level_comparison(&g, &GateLevelOptions::new(3).samples(0)).unwrap_err();
        assert!(matches!(err, EstimateError::DegenerateBaseline { .. }), "{err}");
        assert!(err.to_string().contains("degenerate baseline"), "{err}");
        assert!(err.to_string().contains("zero samples"), "{err}");
    }

    #[test]
    fn one_sample_is_still_a_valid_baseline() {
        // The boundary right above the degenerate case: a single sample
        // simulates fine (the controller energy alone keeps the baseline
        // positive) and all ratios are finite.
        let g = abs_diff();
        let report = gate_level_comparison(&g, &GateLevelOptions::new(3).samples(1)).unwrap();
        assert_eq!(report.samples, 1);
        assert!(report.original_power > 0.0);
        assert!(report.power_reduction_percent.is_finite());
        assert!(report.area_ratio.is_finite() && report.area_ratio > 0.0);
    }

    #[test]
    fn estimate_error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<EstimateError>();
    }

    #[test]
    fn same_seed_gives_identical_reports() {
        let g = abs_diff();
        let a = gate_level_comparison(&g, &GateLevelOptions::new(3).samples(100).seed(9)).unwrap();
        let b = gate_level_comparison(&g, &GateLevelOptions::new(3).samples(100).seed(9)).unwrap();
        assert_eq!(a, b);
    }
}
