//! Random input-vector generation for timing/power simulation.
//!
//! The paper obtains its relative power weights and its DesignPower numbers
//! from "timing simulation with random input vectors"; this module produces
//! those vectors reproducibly (seeded) so every experiment run prints the
//! same table.

use std::collections::BTreeMap;

use cdfg::Cdfg;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reproducible random input-vector generator for one design.
#[derive(Debug, Clone)]
pub struct RandomVectors {
    input_names: Vec<String>,
    bitwidth: u32,
    rng: StdRng,
}

impl RandomVectors {
    /// Creates a generator for the primary inputs of `cdfg`, producing
    /// values uniform in `[0, 2^bitwidth)`.
    pub fn new(cdfg: &Cdfg, seed: u64) -> Self {
        let input_names =
            cdfg.inputs().iter().filter_map(|&n| cdfg.node(n).map(|d| d.name.clone())).collect();
        RandomVectors {
            input_names,
            bitwidth: cdfg.default_bitwidth(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Generates one input sample.
    pub fn sample(&mut self) -> BTreeMap<String, i64> {
        let max = 1i64 << self.bitwidth.min(62);
        self.input_names.iter().map(|name| (name.clone(), self.rng.gen_range(0..max))).collect()
    }

    /// Generates `n` input samples.
    pub fn samples(&mut self, n: usize) -> Vec<BTreeMap<String, i64>> {
        (0..n).map(|_| self.sample()).collect()
    }

    /// The names of the inputs being driven.
    pub fn input_names(&self) -> &[String] {
        &self.input_names
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::Op;

    fn design() -> Cdfg {
        let mut g = Cdfg::new("d");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let s = g.add_op(Op::Add, &[a, b]).unwrap();
        g.add_output("s", s).unwrap();
        g
    }

    #[test]
    fn samples_cover_all_inputs_within_range() {
        let g = design();
        let mut v = RandomVectors::new(&g, 7);
        for sample in v.samples(100) {
            assert_eq!(sample.len(), 2);
            for value in sample.values() {
                assert!((0..256).contains(value), "8-bit range");
            }
        }
        assert_eq!(v.input_names(), &["a".to_owned(), "b".to_owned()]);
    }

    #[test]
    fn same_seed_reproduces_same_vectors() {
        let g = design();
        let mut v1 = RandomVectors::new(&g, 42);
        let mut v2 = RandomVectors::new(&g, 42);
        assert_eq!(v1.samples(20), v2.samples(20));
        let mut v3 = RandomVectors::new(&g, 43);
        assert_ne!(v1.samples(20), v3.samples(20));
    }
}
