//! Power and area estimation for the power-management synthesis flow.
//!
//! Two estimation paths mirror the paper's evaluation:
//!
//! * the *probabilistic* datapath estimate of Table II — expected operation
//!   executions under fair branch probabilities weighted by the relative op
//!   power weights (provided by [`pmsched::SavingsReport`] and re-exported
//!   here through [`estimate::datapath_estimate`]),
//! * the *simulation-based* estimate of Table III — the generated RTL is
//!   executed on random input vectors with the cycle-accurate simulator of
//!   the `rtl` crate, switching activity is converted to energy, and the
//!   gate-level area is reported for both the original and the
//!   power-managed design ([`estimate::gate_level_comparison`]),
//! * the *scaled-delay* (DVS-style) estimate — per-operation schedule slack
//!   converted into an energy factor that composes with the shut-down
//!   savings ([`dvs::scaled_delay_estimate`]), the model behind the
//!   latency–power Pareto explorer,
//! * the *per-operation voltage* model ([`voltage`]) — discrete
//!   [`voltage::VoltageLevel`] tables assigned per op through a
//!   [`voltage::VoltageAssignment`]; the global scaled-delay curves are its
//!   degenerate one-curve case and [`voltage::VoltagePolicy`] exposes both
//!   as one explore axis.
//!
//! # Example
//!
//! ```
//! use cdfg::{Cdfg, Op};
//! use power::estimate::{gate_level_comparison, GateLevelOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = Cdfg::new("abs_diff");
//! let a = g.add_input("a");
//! let b = g.add_input("b");
//! let gt = g.add_op(Op::Gt, &[a, b])?;
//! let amb = g.add_op(Op::Sub, &[a, b])?;
//! let bma = g.add_op(Op::Sub, &[b, a])?;
//! let m = g.add_mux(gt, bma, amb)?;
//! g.add_output("abs", m)?;
//!
//! let report = gate_level_comparison(&g, &GateLevelOptions::new(3).samples(200))?;
//! assert!(report.power_reduction_percent > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dvs;
pub mod estimate;
pub mod vectors;
pub mod voltage;

pub use crate::dvs::{
    allotted_delays, allotted_delays_into, scaled_delay_estimate, scaled_delay_estimate_into,
    DelayScaling, ScaledDelayReport,
};
/// Alias for the crate's error type under the name downstream code (and the
/// issue tracker) uses for it.
pub use crate::estimate::EstimateError as PowerError;
pub use crate::estimate::{
    gate_level_comparison, gate_level_with_result, EstimateError, GateLevelOptions, GateLevelReport,
};
pub use crate::vectors::RandomVectors;
pub use crate::voltage::{
    voltage_scaled_estimate, VoltageAssignment, VoltageEstimate, VoltageLevel, VoltagePolicy,
    VoltagePreset, VoltageTable,
};
