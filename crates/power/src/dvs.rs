//! DVS-style scaled-delay energy model: attributing per-step schedule slack
//! to per-operation energy.
//!
//! The paper's savings come from *shutting down* operations whose result is
//! known to be discarded.  The multi-objective DVS literature (fine-grained
//! voltage scaling per operator) exploits the *other* thing a stretched
//! control-step budget buys: operations whose result is not consumed for
//! several steps can run slower at a lower voltage.  This module models
//! that second mechanism and composes it with the first:
//!
//! * every functional operation gets an **allotted delay** — the number of
//!   control steps between its own step and the first step any functional
//!   successor executes (operations feeding only primary outputs may
//!   stretch to the sample boundary),
//! * a [`DelayScaling`] law converts allotted delay into an energy factor
//!   (`1/d` for an idealised linear law, `1/d²` for the classic
//!   voltage-scaling square law),
//! * the expected energy of the design is then
//!   `Σ P(op executes) · weight(op) · scale(delay(op))` — the shut-down
//!   probability and the slowdown factor are independent per-op factors, so
//!   the two relative reductions compose multiplicatively
//!   ([`pmsched::compose_reductions`]; the report pins this identity).
//!
//! The model is deliberately behavioural: each operator is assumed to have
//! its own supply (fine-grained DVS), so slowing one op never blocks a
//! shared unit.  That makes the estimate an upper bound on what a real
//! multi-voltage binding could achieve, mirroring how Table II's datapath
//! estimate upper-bounds the gate-level Table III numbers.

use std::fmt;

use cdfg::Cdfg;
use pmsched::{OpWeights, PowerManagementResult, SelectProbabilities};
use sched::Schedule;

use crate::estimate::EstimateError;
use crate::voltage::{voltage_scaled_estimate, VoltageAssignment, VoltageTable};

/// How an operation's energy scales with the delay allotted to it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DelayScaling {
    /// No scaling: every execution costs its nominal energy regardless of
    /// slack (the paper's model).
    #[default]
    None,
    /// Energy inversely proportional to allotted delay (`1/d`) — an
    /// idealised linear energy–delay trade-off.
    Linear,
    /// Energy inversely proportional to the squared delay (`1/d²`) — the
    /// classic `E ∝ V²`, `delay ∝ 1/V` voltage-scaling law.
    Quadratic,
}

impl DelayScaling {
    /// Every scaling law, in increasing aggressiveness.
    pub const ALL: [DelayScaling; 3] =
        [DelayScaling::None, DelayScaling::Linear, DelayScaling::Quadratic];

    /// Energy factor for an operation allotted `steps` control steps
    /// (1 = nominal, no slack).  `steps` is floored at one — a valid
    /// schedule never allots less.
    pub fn factor(self, steps: u32) -> f64 {
        let d = f64::from(steps.max(1));
        match self {
            DelayScaling::None => 1.0,
            DelayScaling::Linear => 1.0 / d,
            DelayScaling::Quadratic => 1.0 / (d * d),
        }
    }

    /// Short stable label used in reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            DelayScaling::None => "none",
            DelayScaling::Linear => "linear",
            DelayScaling::Quadratic => "quadratic",
        }
    }

    /// Parses a label produced by [`DelayScaling::label`],
    /// case-insensitively.  The emitted labels stay canonical lowercase,
    /// so every `spec_string` embedding them remains lossless.
    pub fn parse(text: &str) -> Option<Self> {
        DelayScaling::ALL.into_iter().find(|s| s.label().eq_ignore_ascii_case(text))
    }
}

impl fmt::Display for DelayScaling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The allotted delay of every functional node of `cdfg` under `schedule`,
/// in ascending node-id order: the gap (in control steps) between the
/// node's step and the first step a functional successor — data or control
/// — executes.  Nodes feeding only primary outputs may stretch to the
/// sample boundary (`latency + 1`).
pub fn allotted_delays(cdfg: &Cdfg, schedule: &Schedule, latency: u32) -> Vec<(cdfg::NodeId, u32)> {
    let mut out = Vec::new();
    allotted_delays_into(cdfg, schedule, latency, &mut out);
    out
}

/// Buffer-reusing variant of [`allotted_delays`]: clears `out` and fills it
/// with the same pairs in the same order, without allocating when the
/// buffer's capacity already covers the graph.  The warm-workspace paths
/// (the Pareto explorer's per-budget walk, the online session's metric
/// recomputation) call this with a long-lived buffer.
pub fn allotted_delays_into(
    cdfg: &Cdfg,
    schedule: &Schedule,
    latency: u32,
    out: &mut Vec<(cdfg::NodeId, u32)>,
) {
    let slices = cdfg.slices();
    out.clear();
    for &node in slices.functional() {
        let Some(step) = schedule.step_of(node) else { continue };
        let mut first_use = latency + 1;
        for &s in slices.succs(node) {
            if slices.is_functional(s) {
                if let Some(succ_step) = schedule.step_of(s) {
                    first_use = first_use.min(succ_step);
                }
            }
        }
        // A validated schedule always leaves at least one step of gap.
        out.push((node, first_use.saturating_sub(step).max(1)));
    }
}

/// Expected-energy summary under a scaled-delay model: the shut-down and
/// slowdown mechanisms separately and composed.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaledDelayReport {
    /// The scaling law the estimate was computed under.
    pub scaling: DelayScaling,
    /// Weighted energy with every operation executing at nominal speed.
    pub baseline_weighted: f64,
    /// Weighted energy with shut-down only (expected executions, nominal
    /// speed) — Table II's managed number.
    pub shutdown_weighted: f64,
    /// Weighted energy with shut-down *and* delay scaling.
    pub scaled_weighted: f64,
    /// Reduction from shutting operations down, in percent.
    pub shutdown_reduction_percent: f64,
    /// Additional reduction from slowing the surviving executions, relative
    /// to the shut-down-only energy, in percent.
    pub slowdown_reduction_percent: f64,
    /// Combined reduction relative to the baseline, in percent.  Equals
    /// `compose_reductions(shutdown, slowdown)` by construction.
    pub combined_reduction_percent: f64,
}

impl fmt::Display for ScaledDelayReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scaled-delay ({}): {:.2} -> {:.2} ({:.2}% shutdown + {:.2}% slowdown = {:.2}%)",
            self.scaling,
            self.baseline_weighted,
            self.scaled_weighted,
            self.shutdown_reduction_percent,
            self.slowdown_reduction_percent,
            self.combined_reduction_percent
        )
    }
}

/// Computes the scaled-delay energy estimate for a power-management result:
/// per-op execution probabilities from the activation analysis, per-op
/// allotted delays from the final schedule, energies from `weights` scaled
/// by `scaling`.
///
/// # Errors
///
/// Returns [`EstimateError::DegenerateBaseline`] when the design's weighted
/// baseline energy is not strictly positive (no operation carries weight),
/// which would make every reduction ratio divide by zero.
pub fn scaled_delay_estimate(
    result: &PowerManagementResult,
    probs: &SelectProbabilities,
    weights: &OpWeights,
    scaling: DelayScaling,
) -> Result<ScaledDelayReport, EstimateError> {
    let mut delays = Vec::new();
    scaled_delay_estimate_into(result, probs, weights, scaling, &mut delays)
}

/// Buffer-reusing variant of [`scaled_delay_estimate`] for warm-workspace
/// paths: `delays` is a long-lived allotted-delay buffer refilled via
/// [`allotted_delays_into`] on every call.
///
/// Since the per-operation voltage refactor this *is* the single-curve
/// path: the curve is re-expressed as a degenerate
/// [`VoltageTable`] (one level per allotted
/// delay, each priced by [`DelayScaling::factor`]) and the estimate runs
/// through [`crate::voltage::voltage_scaled_estimate`] with the
/// delay-induced [`VoltageAssignment`].
/// The factors and the summation order are unchanged, so reports are
/// byte-identical to the pre-refactor ones (pinned in
/// `crate::voltage::tests`).
///
/// # Errors
///
/// Returns [`EstimateError::DegenerateBaseline`] when the design's weighted
/// baseline energy is not strictly positive.
pub fn scaled_delay_estimate_into(
    result: &PowerManagementResult,
    probs: &SelectProbabilities,
    weights: &OpWeights,
    scaling: DelayScaling,
    delays: &mut Vec<(cdfg::NodeId, u32)>,
) -> Result<ScaledDelayReport, EstimateError> {
    allotted_delays_into(result.cdfg(), result.schedule(), result.latency(), delays);
    let table = VoltageTable::from_scaling(scaling, result.latency().max(1));
    let assignment =
        VoltageAssignment::from_delays(&table, delays, result.cdfg().slices().slot_count());
    let estimate = voltage_scaled_estimate(result, probs, weights, &table, &assignment)?;
    Ok(ScaledDelayReport {
        scaling,
        baseline_weighted: estimate.baseline_weighted,
        shutdown_weighted: estimate.shutdown_weighted,
        scaled_weighted: estimate.scaled_weighted,
        shutdown_reduction_percent: estimate.shutdown_reduction_percent,
        slowdown_reduction_percent: estimate.slowdown_reduction_percent,
        combined_reduction_percent: estimate.combined_reduction_percent,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::Op;
    use pmsched::{compose_reductions, power_manage, PowerManagementOptions};

    fn abs_diff() -> Cdfg {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        g
    }

    #[test]
    fn scaling_factors_follow_their_laws() {
        assert_eq!(DelayScaling::None.factor(7), 1.0);
        assert_eq!(DelayScaling::Linear.factor(2), 0.5);
        assert_eq!(DelayScaling::Quadratic.factor(2), 0.25);
        // Zero steps is floored to nominal, never ∞.
        assert_eq!(DelayScaling::Linear.factor(0), 1.0);
        for scaling in DelayScaling::ALL {
            assert_eq!(DelayScaling::parse(scaling.label()), Some(scaling));
        }
        assert_eq!(DelayScaling::parse("cubic"), None);
    }

    #[test]
    fn allotted_delays_measure_the_gap_to_the_first_use() {
        // A two-op chain with a slack step: x -> neg -> neg -> out at
        // latency 4.  The first negation's consumer is pinned by force
        // scheduling; the last one may stretch to the sample boundary.
        let mut g = Cdfg::new("chain");
        let x = g.add_input("x");
        let a = g.add_op(Op::Neg, &[x]).unwrap();
        let b = g.add_op(Op::Neg, &[a]).unwrap();
        g.add_output("o", b).unwrap();
        let result = power_manage(&g, &PowerManagementOptions::with_latency(4)).unwrap();
        let delays: std::collections::BTreeMap<_, _> =
            allotted_delays(result.cdfg(), result.schedule(), 4).into_iter().collect();
        let step_a = result.schedule().step_of(a).unwrap();
        let step_b = result.schedule().step_of(b).unwrap();
        assert_eq!(delays[&a], step_b - step_a, "gap to the consuming negation");
        assert_eq!(delays[&b], 4 + 1 - step_b, "stretches to the sample boundary");
        assert!(delays.values().all(|&d| d >= 1));
    }

    #[test]
    fn combined_reduction_is_the_composition_of_the_two_mechanisms() {
        let g = abs_diff();
        for latency in 3..7 {
            let result = power_manage(&g, &PowerManagementOptions::with_latency(latency)).unwrap();
            let report = scaled_delay_estimate(
                &result,
                &SelectProbabilities::fair(),
                &OpWeights::paper_power(),
                DelayScaling::Quadratic,
            )
            .unwrap();
            assert!(
                (report.combined_reduction_percent
                    - compose_reductions(
                        report.shutdown_reduction_percent,
                        report.slowdown_reduction_percent
                    ))
                .abs()
                    < 1e-9,
                "composition identity at latency {latency}: {report}"
            );
            // Shutdown part agrees with the Table II estimate.
            assert!(
                (report.shutdown_reduction_percent - result.savings().reduction_percent).abs()
                    < 1e-9,
                "latency {latency}"
            );
        }
    }

    #[test]
    fn more_aggressive_scaling_never_saves_less() {
        let g = abs_diff();
        let result = power_manage(&g, &PowerManagementOptions::with_latency(5)).unwrap();
        let get = |scaling| {
            scaled_delay_estimate(
                &result,
                &SelectProbabilities::fair(),
                &OpWeights::paper_power(),
                scaling,
            )
            .unwrap()
            .combined_reduction_percent
        };
        let none = get(DelayScaling::None);
        let linear = get(DelayScaling::Linear);
        let quadratic = get(DelayScaling::Quadratic);
        assert!(none <= linear && linear <= quadratic, "{none} <= {linear} <= {quadratic}");
        // With slack in the schedule, the scaled laws actually bite.
        assert!(linear > none, "latency 5 leaves real slack to attribute");
    }

    #[test]
    fn slack_grows_combined_savings_with_the_budget() {
        // The tentpole claim: stretching the budget buys both more shutdown
        // and more slowdown, so the combined estimate is monotone here.
        let g = abs_diff();
        let mut last = -1.0;
        for latency in 2..7 {
            let result = power_manage(&g, &PowerManagementOptions::with_latency(latency)).unwrap();
            let report = scaled_delay_estimate(
                &result,
                &SelectProbabilities::fair(),
                &OpWeights::paper_power(),
                DelayScaling::Quadratic,
            )
            .unwrap();
            assert!(
                report.combined_reduction_percent >= last - 1e-9,
                "latency {latency}: {} < {last}",
                report.combined_reduction_percent
            );
            last = report.combined_reduction_percent;
        }
    }

    #[test]
    fn weightless_designs_are_a_typed_degenerate_baseline() {
        let g = abs_diff();
        let result = power_manage(&g, &PowerManagementOptions::with_latency(3)).unwrap();
        let err = scaled_delay_estimate(
            &result,
            &SelectProbabilities::fair(),
            &OpWeights::from_pairs([]),
            DelayScaling::Linear,
        )
        .unwrap_err();
        assert!(matches!(err, EstimateError::DegenerateBaseline { .. }), "{err}");
    }
}
