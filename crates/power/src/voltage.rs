//! Discrete per-operation voltage model: level tables, per-op assignments
//! and the voltage-aware energy estimate.
//!
//! The scaled-delay model of [`crate::dvs`] prices slack through one global
//! [`DelayScaling`] curve.  This module generalises it the way the
//! fine-grained DVS literature does: a design picks its supplies from a
//! small discrete [`VoltageTable`] — each [`VoltageLevel`] trades a delay
//! multiplier for an energy factor — and every operation gets its *own*
//! level through a [`VoltageAssignment`].  The global curves are the
//! degenerate case: [`VoltageTable::from_scaling`] re-expresses a
//! [`DelayScaling`] law as a table with one level per allotted delay, and
//! the estimate over that table reproduces the single-curve
//! [`crate::dvs::scaled_delay_estimate`] byte-identically (pinned in the
//! tests here).
//!
//! The preset tables ([`VoltagePreset`]) use the classic square-law numbers
//! for a 5 V nominal process with `Vt = 0.8 V`: energy scales as
//! `(V/5)²` and delay as `V/(V−Vt)²` normalised to the nominal supply,
//! rounded up to whole control steps.
//!
//! [`VoltagePolicy`] is the explore/sweep axis built from all of this: a
//! policy is either one global curve or a per-op preset, so the Pareto
//! explorer, the sweep daemon and the CLIs can treat "how is voltage
//! assigned" as one more deterministic dimension.

use std::fmt;

use pmsched::{compose_reductions, OpWeights, PowerManagementResult, SelectProbabilities};
use sched::dvs::SlackLevel;

use crate::dvs::DelayScaling;
use crate::estimate::EstimateError;

/// One discrete supply level: the delay multiplier an operation pays for
/// running at this voltage and the energy factor it gains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltageLevel {
    /// Control steps an operation at this level occupies (level 0 is the
    /// nominal single step).
    pub delay_steps: u32,
    /// Energy per execution relative to nominal (level 0 is 1.0).
    pub energy_factor: f64,
}

/// A discrete, ordered table of supply levels: strictly slower and never
/// more expensive as the index grows, with the nominal single-step level
/// first.
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageTable {
    levels: Vec<VoltageLevel>,
}

impl VoltageTable {
    /// Builds a table from explicit levels.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty, does not start with a single-step
    /// level, has non-increasing delays or increasing energy factors —
    /// these are programming errors in a table definition, not runtime
    /// conditions.
    pub fn new(levels: Vec<VoltageLevel>) -> Self {
        assert!(!levels.is_empty(), "voltage table must not be empty");
        assert_eq!(levels[0].delay_steps, 1, "level 0 must be the nominal single-step level");
        for pair in levels.windows(2) {
            assert!(
                pair[0].delay_steps < pair[1].delay_steps,
                "level delays must be strictly increasing"
            );
            assert!(
                pair[1].energy_factor.total_cmp(&pair[0].energy_factor).is_le(),
                "level energy factors must be non-increasing"
            );
        }
        VoltageTable { levels }
    }

    /// The degenerate one-level table: everything runs at nominal voltage.
    /// Estimating under it reproduces [`DelayScaling::None`] reports
    /// byte-identically.
    pub fn nominal() -> Self {
        VoltageTable::new(vec![VoltageLevel { delay_steps: 1, energy_factor: 1.0 }])
    }

    /// Re-expresses a global [`DelayScaling`] curve as a voltage table with
    /// one level per allotted delay `1..=max_delay`, each priced by
    /// [`DelayScaling::factor`].  Because the factors come from the same
    /// function, an estimate over this table equals the single-curve
    /// estimate bit for bit.
    pub fn from_scaling(scaling: DelayScaling, max_delay: u32) -> Self {
        let levels = (1..=max_delay.max(1))
            .map(|d| VoltageLevel { delay_steps: d, energy_factor: scaling.factor(d) })
            .collect();
        VoltageTable::new(levels)
    }

    /// The levels, ascending by delay.
    pub fn levels(&self) -> &[VoltageLevel] {
        &self.levels
    }

    /// The level at `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn level(&self, index: u32) -> VoltageLevel {
        self.levels[index as usize]
    }

    /// The deepest level whose delay fits within `delay` allotted steps
    /// (floored at one step, like [`DelayScaling::factor`]).  Level 0
    /// always fits, so this never fails.
    pub fn level_for_delay(&self, delay: u32) -> u32 {
        let delay = delay.max(1);
        let mut best = 0;
        for (i, level) in self.levels.iter().enumerate() {
            if level.delay_steps <= delay {
                best = i as u32;
            }
        }
        best
    }

    /// The table as [`sched::dvs`] slack levels, for the slack-distribution
    /// kernel.
    pub fn slack_levels(&self) -> Vec<SlackLevel> {
        self.levels
            .iter()
            .map(|l| SlackLevel { delay_steps: l.delay_steps, energy_factor: l.energy_factor })
            .collect()
    }
}

/// A per-operation voltage-level choice: a dense level index per CDFG slot
/// (structural slots stay at level 0, they never execute).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VoltageAssignment {
    level: Vec<u32>,
}

impl VoltageAssignment {
    /// Wraps dense per-slot level indices (e.g. the output of
    /// [`sched::dvs::distribute_slack`]).
    pub fn from_levels(level: Vec<u32>) -> Self {
        VoltageAssignment { level }
    }

    /// Derives the assignment a global curve induces: every operation takes
    /// the deepest level of `table` that fits its allotted delay.
    /// `slot_count` sizes the dense index (unlisted slots stay nominal).
    pub fn from_delays(
        table: &VoltageTable,
        delays: &[(cdfg::NodeId, u32)],
        slot_count: usize,
    ) -> Self {
        let mut level = vec![0u32; slot_count];
        for &(node, delay) in delays {
            level[node.index()] = table.level_for_delay(delay);
        }
        VoltageAssignment { level }
    }

    /// The level index assigned to `node` (0 for slots beyond the dense
    /// range — an unknown op runs at nominal).
    pub fn level_of(&self, node: cdfg::NodeId) -> u32 {
        self.level.get(node.index()).copied().unwrap_or(0)
    }

    /// The dense per-slot level indices.
    pub fn levels(&self) -> &[u32] {
        &self.level
    }
}

/// Expected-energy summary under a per-operation voltage assignment —
/// the same quantities as [`crate::dvs::ScaledDelayReport`], without being
/// tied to one global curve.
#[derive(Debug, Clone, PartialEq)]
pub struct VoltageEstimate {
    /// Weighted energy with every operation executing at nominal voltage.
    pub baseline_weighted: f64,
    /// Weighted energy with shut-down only (expected executions, nominal
    /// voltage).
    pub shutdown_weighted: f64,
    /// Weighted energy with shut-down *and* per-op voltage scaling.
    pub scaled_weighted: f64,
    /// Reduction from shutting operations down, in percent.
    pub shutdown_reduction_percent: f64,
    /// Additional reduction from the voltage assignment, relative to the
    /// shut-down-only energy, in percent.
    pub slowdown_reduction_percent: f64,
    /// Combined reduction relative to the baseline, in percent
    /// ([`pmsched::compose_reductions`] of the other two by construction).
    pub combined_reduction_percent: f64,
}

/// Computes the voltage-aware energy estimate for a power-management
/// result: per-op execution probabilities from the activation analysis,
/// per-op energy factors from `table` through `assignment`.
///
/// Sums run over scheduled functional nodes in ascending node-id order —
/// the same order as [`crate::dvs::allotted_delays`] — so global-curve
/// assignments reproduce [`crate::dvs::scaled_delay_estimate`] bit for
/// bit.
///
/// # Errors
///
/// Returns [`EstimateError::DegenerateBaseline`] when the design's
/// weighted baseline energy is not strictly positive.
pub fn voltage_scaled_estimate(
    result: &PowerManagementResult,
    probs: &SelectProbabilities,
    weights: &OpWeights,
    table: &VoltageTable,
    assignment: &VoltageAssignment,
) -> Result<VoltageEstimate, EstimateError> {
    let cdfg = result.cdfg();
    let schedule = result.schedule();
    let activation = result.activation(probs);
    let slices = cdfg.slices();

    let mut baseline = 0.0;
    let mut shutdown = 0.0;
    let mut scaled = 0.0;
    for &node in slices.functional() {
        if schedule.step_of(node).is_none() {
            continue;
        }
        let class = cdfg.node(node).expect("live node").op.class();
        let weight = weights.weight(class);
        let p = activation.probability(node);
        baseline += weight;
        shutdown += weight * p;
        scaled += weight * p * table.level(assignment.level_of(node)).energy_factor;
    }

    if !baseline.is_finite() || baseline <= 0.0 {
        return Err(EstimateError::degenerate(format!(
            "design has non-positive weighted baseline energy ({baseline})"
        )));
    }
    let shutdown_reduction_percent = 100.0 * (baseline - shutdown) / baseline;
    let slowdown_reduction_percent =
        if shutdown > 0.0 { 100.0 * (shutdown - scaled) / shutdown } else { 0.0 };
    Ok(VoltageEstimate {
        baseline_weighted: baseline,
        shutdown_weighted: shutdown,
        scaled_weighted: scaled,
        shutdown_reduction_percent,
        slowdown_reduction_percent,
        combined_reduction_percent: compose_reductions(
            shutdown_reduction_percent,
            slowdown_reduction_percent,
        ),
    })
}

/// The built-in discrete voltage sets: classic square-law tables for a 5 V
/// nominal process with `Vt = 0.8 V` (energies `(V/5)²`, delays
/// `V/(V−Vt)²` normalised and rounded up to whole steps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VoltagePreset {
    /// 5 V / 3.3 V — the common dual-supply setup.
    TwoLevel,
    /// 5 V / 3.3 V / 2.4 V.
    ThreeLevel,
    /// 5 V / 3.3 V / 2.4 V / 2.0 V / 1.5 V — deep scaling.
    FiveLevel,
}

impl VoltagePreset {
    /// Every preset, in increasing depth.
    pub const ALL: [VoltagePreset; 3] =
        [VoltagePreset::TwoLevel, VoltagePreset::ThreeLevel, VoltagePreset::FiveLevel];

    /// The preset's voltage table.
    pub fn table(self) -> VoltageTable {
        let five = [
            VoltageLevel { delay_steps: 1, energy_factor: 1.0 }, // 5.0 V
            VoltageLevel { delay_steps: 2, energy_factor: 0.4356 }, // 3.3 V
            VoltageLevel { delay_steps: 4, energy_factor: 0.2304 }, // 2.4 V
            VoltageLevel { delay_steps: 5, energy_factor: 0.16 }, // 2.0 V
            VoltageLevel { delay_steps: 11, energy_factor: 0.09 }, // 1.5 V
        ];
        let count = match self {
            VoltagePreset::TwoLevel => 2,
            VoltagePreset::ThreeLevel => 3,
            VoltagePreset::FiveLevel => 5,
        };
        VoltageTable::new(five[..count].to_vec())
    }

    /// Number of levels in the preset's table.
    pub fn level_count(self) -> usize {
        match self {
            VoltagePreset::TwoLevel => 2,
            VoltagePreset::ThreeLevel => 3,
            VoltagePreset::FiveLevel => 5,
        }
    }
}

/// How the explorer assigns voltage: one global delay-scaling curve, or a
/// per-operation discrete assignment from a preset table picked by the
/// slack-distribution kernel.  This is the sweep/explore plan axis — it
/// carries no floats, so it derives `Eq`/`Hash`/`Ord` and can key plans
/// and caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VoltagePolicy {
    /// One global curve applied to every operation's allotted delay (the
    /// pre-existing scaled-delay model; `Global(DelayScaling::None)` is
    /// the paper's shut-down-only model).
    Global(DelayScaling),
    /// Per-operation discrete levels from a preset table, assigned by
    /// [`sched::dvs::distribute_slack`] under the latency budget.
    PerOp(VoltagePreset),
}

impl VoltagePolicy {
    /// Every policy, global curves first.
    pub const ALL: [VoltagePolicy; 6] = [
        VoltagePolicy::Global(DelayScaling::None),
        VoltagePolicy::Global(DelayScaling::Linear),
        VoltagePolicy::Global(DelayScaling::Quadratic),
        VoltagePolicy::PerOp(VoltagePreset::TwoLevel),
        VoltagePolicy::PerOp(VoltagePreset::ThreeLevel),
        VoltagePolicy::PerOp(VoltagePreset::FiveLevel),
    ];

    /// Short stable label used in reports and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            VoltagePolicy::Global(DelayScaling::None) => "global-none",
            VoltagePolicy::Global(DelayScaling::Linear) => "global-linear",
            VoltagePolicy::Global(DelayScaling::Quadratic) => "global-quadratic",
            VoltagePolicy::PerOp(VoltagePreset::TwoLevel) => "per-op-2",
            VoltagePolicy::PerOp(VoltagePreset::ThreeLevel) => "per-op-3",
            VoltagePolicy::PerOp(VoltagePreset::FiveLevel) => "per-op-5",
        }
    }

    /// Parses a label produced by [`VoltagePolicy::label`],
    /// case-insensitively.  Bare [`DelayScaling`] labels (`none`,
    /// `linear`, `quadratic`) are accepted as shorthand for the matching
    /// global policy, so pre-existing `--scaling`-style spellings keep
    /// working.
    pub fn parse(text: &str) -> Option<Self> {
        VoltagePolicy::ALL
            .into_iter()
            .find(|p| p.label().eq_ignore_ascii_case(text))
            .or_else(|| DelayScaling::parse(text).map(VoltagePolicy::Global))
    }
}

impl Default for VoltagePolicy {
    /// The paper's model: one global curve, no scaling.
    fn default() -> Self {
        VoltagePolicy::Global(DelayScaling::None)
    }
}

impl fmt::Display for VoltagePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvs::{allotted_delays, scaled_delay_estimate};
    use cdfg::{Cdfg, Op};
    use pmsched::{power_manage, PowerManagementOptions};

    fn abs_diff() -> Cdfg {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        g
    }

    /// The pre-refactor single-curve loop, kept verbatim as the reference
    /// the byte-identity pin compares against: one global
    /// [`DelayScaling::factor`] applied to every allotted delay, summed in
    /// ascending node-id order.
    fn pre_refactor_estimate(
        result: &PowerManagementResult,
        probs: &SelectProbabilities,
        weights: &OpWeights,
        scaling: DelayScaling,
    ) -> (f64, f64, f64, f64, f64, f64) {
        let cdfg = result.cdfg();
        let activation = result.activation(probs);
        let mut baseline = 0.0;
        let mut shutdown = 0.0;
        let mut scaled = 0.0;
        for (node, delay) in allotted_delays(cdfg, result.schedule(), result.latency()) {
            let class = cdfg.node(node).expect("live node").op.class();
            let weight = weights.weight(class);
            let p = activation.probability(node);
            baseline += weight;
            shutdown += weight * p;
            scaled += weight * p * scaling.factor(delay);
        }
        let shutdown_pct = 100.0 * (baseline - shutdown) / baseline;
        let slowdown_pct =
            if shutdown > 0.0 { 100.0 * (shutdown - scaled) / shutdown } else { 0.0 };
        let combined_pct = pmsched::compose_reductions(shutdown_pct, slowdown_pct);
        (baseline, shutdown, scaled, shutdown_pct, slowdown_pct, combined_pct)
    }

    /// The pinned tentpole identity: the refactored voltage path — a
    /// [`VoltageTable::from_scaling`] table with the curve-induced
    /// assignment, which is exactly what [`scaled_delay_estimate`] now
    /// routes through — reproduces the pre-refactor single-curve report
    /// **byte-identically** (exact f64 bits on every field), for every
    /// scaling law and a range of budgets.  The nominal one-level table is
    /// the `DelayScaling::None` case.
    #[test]
    fn global_curves_as_degenerate_tables_are_byte_identical() {
        let g = abs_diff();
        let probs = SelectProbabilities::fair();
        let weights = OpWeights::paper_power();
        for latency in 2..8 {
            let result = power_manage(&g, &PowerManagementOptions::with_latency(latency)).unwrap();
            let delays = allotted_delays(result.cdfg(), result.schedule(), latency);
            let slots = result.cdfg().slices().slot_count();
            for scaling in DelayScaling::ALL {
                let (baseline, shutdown, scaled, shutdown_pct, slowdown_pct, combined_pct) =
                    pre_refactor_estimate(&result, &probs, &weights, scaling);
                let table = if scaling == DelayScaling::None {
                    VoltageTable::nominal()
                } else {
                    VoltageTable::from_scaling(scaling, latency)
                };
                let assignment = VoltageAssignment::from_delays(&table, &delays, slots);
                let voltage =
                    voltage_scaled_estimate(&result, &probs, &weights, &table, &assignment)
                        .unwrap();
                let report = scaled_delay_estimate(&result, &probs, &weights, scaling).unwrap();
                for (estimate, reference) in [
                    (voltage.baseline_weighted, baseline),
                    (voltage.shutdown_weighted, shutdown),
                    (voltage.scaled_weighted, scaled),
                    (voltage.shutdown_reduction_percent, shutdown_pct),
                    (voltage.slowdown_reduction_percent, slowdown_pct),
                    (voltage.combined_reduction_percent, combined_pct),
                    (report.baseline_weighted, baseline),
                    (report.shutdown_weighted, shutdown),
                    (report.scaled_weighted, scaled),
                    (report.shutdown_reduction_percent, shutdown_pct),
                    (report.slowdown_reduction_percent, slowdown_pct),
                    (report.combined_reduction_percent, combined_pct),
                ] {
                    assert_eq!(
                        estimate.to_bits(),
                        reference.to_bits(),
                        "{scaling} @ {latency}: {estimate} vs {reference}"
                    );
                }
            }
        }
    }

    #[test]
    fn level_for_delay_picks_the_deepest_fitting_level() {
        let table = VoltagePreset::FiveLevel.table();
        assert_eq!(table.level_for_delay(0), 0, "floored at one step");
        assert_eq!(table.level_for_delay(1), 0);
        assert_eq!(table.level_for_delay(2), 1);
        assert_eq!(table.level_for_delay(3), 1);
        assert_eq!(table.level_for_delay(4), 2);
        assert_eq!(table.level_for_delay(5), 3);
        assert_eq!(table.level_for_delay(10), 3);
        assert_eq!(table.level_for_delay(11), 4);
        assert_eq!(table.level_for_delay(1000), 4);
    }

    #[test]
    fn preset_tables_follow_the_square_law() {
        for preset in VoltagePreset::ALL {
            let table = preset.table();
            assert_eq!(table.levels().len(), preset.level_count());
            assert_eq!(table.levels()[0].delay_steps, 1);
            assert_eq!(table.levels()[0].energy_factor, 1.0);
            for pair in table.levels().windows(2) {
                assert!(pair[0].delay_steps < pair[1].delay_steps);
                assert!(pair[1].energy_factor < pair[0].energy_factor);
            }
        }
        // 3.3 V on a 5 V process: (3.3/5)² exactly.
        let two = VoltagePreset::TwoLevel.table();
        assert_eq!(two.level(1).energy_factor, 0.4356);
        assert_eq!(two.level(1).delay_steps, 2);
    }

    #[test]
    fn policy_labels_roundtrip_case_insensitively() {
        for policy in VoltagePolicy::ALL {
            assert_eq!(VoltagePolicy::parse(policy.label()), Some(policy));
            assert_eq!(VoltagePolicy::parse(&policy.label().to_uppercase()), Some(policy));
        }
        // Bare scaling labels are accepted as global shorthand.
        assert_eq!(
            VoltagePolicy::parse("quadratic"),
            Some(VoltagePolicy::Global(DelayScaling::Quadratic))
        );
        assert_eq!(VoltagePolicy::parse("per-op-7"), None);
        assert_eq!(VoltagePolicy::default(), VoltagePolicy::Global(DelayScaling::None));
    }

    #[test]
    fn slack_levels_mirror_the_table() {
        let table = VoltagePreset::ThreeLevel.table();
        let slack = table.slack_levels();
        assert_eq!(slack.len(), 3);
        for (s, v) in slack.iter().zip(table.levels()) {
            assert_eq!(s.delay_steps, v.delay_steps);
            assert_eq!(s.energy_factor, v.energy_factor);
        }
    }

    #[test]
    #[should_panic(expected = "level delays must be strictly increasing")]
    fn invalid_tables_are_rejected() {
        let _ = VoltageTable::new(vec![
            VoltageLevel { delay_steps: 1, energy_factor: 1.0 },
            VoltageLevel { delay_steps: 1, energy_factor: 0.5 },
        ]);
    }
}
