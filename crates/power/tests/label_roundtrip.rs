//! Parse/label roundtrip properties for the scaling and voltage-policy
//! vocabularies: labels stay lossless under parsing, and parsing is
//! case-insensitive — the satellite contract for `DelayScaling::parse`.

use power::{DelayScaling, VoltagePolicy};
use proptest::prelude::*;

/// Applies a per-character case mask to a label, exercising arbitrary
/// mixed-case spellings.
fn mangle_case(label: &str, mask: u32) -> String {
    label
        .chars()
        .enumerate()
        .map(|(i, c)| {
            if mask >> (i % 32) & 1 == 1 {
                c.to_ascii_uppercase()
            } else {
                c.to_ascii_lowercase()
            }
        })
        .collect()
}

proptest! {
    /// Every scaling label parses back to its value under any casing, and
    /// the canonical label survives a parse → label round trip unchanged
    /// (losslessness for the spec strings that embed it).
    #[test]
    fn delay_scaling_labels_roundtrip_case_insensitively(
        index in 0usize..DelayScaling::ALL.len(),
        mask in 0u32..u32::MAX,
    ) {
        let scaling = DelayScaling::ALL[index];
        let mangled = mangle_case(scaling.label(), mask);
        prop_assert_eq!(DelayScaling::parse(&mangled), Some(scaling));
        let reparsed = DelayScaling::parse(scaling.label()).unwrap();
        prop_assert_eq!(reparsed.label(), scaling.label());
    }

    /// The voltage-policy labels obey the same contract, and the bare
    /// scaling labels keep parsing as global-policy shorthand.
    #[test]
    fn voltage_policy_labels_roundtrip_case_insensitively(
        index in 0usize..VoltagePolicy::ALL.len(),
        mask in 0u32..u32::MAX,
    ) {
        let policy = VoltagePolicy::ALL[index];
        let mangled = mangle_case(policy.label(), mask);
        prop_assert_eq!(VoltagePolicy::parse(&mangled), Some(policy));
        let reparsed = VoltagePolicy::parse(policy.label()).unwrap();
        prop_assert_eq!(reparsed.label(), policy.label());
    }

    /// Parsing never invents values: an input that parses must equal one
    /// of the canonical labels case-insensitively.
    #[test]
    fn parse_rejects_everything_but_labels(
        chars in prop::collection::vec(0u8..53, 0..16),
    ) {
        // Alphabet [a-zA-Z-]: enough to cover labels, prefixes and junk.
        let text: String = chars
            .iter()
            .map(|&c| match c {
                0..=25 => (b'a' + c) as char,
                26..=51 => (b'A' + (c - 26)) as char,
                _ => '-',
            })
            .collect();
        if let Some(scaling) = DelayScaling::parse(&text) {
            prop_assert!(scaling.label().eq_ignore_ascii_case(&text));
        }
        if let Some(policy) = VoltagePolicy::parse(&text) {
            let canonical = policy.label().eq_ignore_ascii_case(&text);
            let shorthand = matches!(policy, VoltagePolicy::Global(s)
                if s.label().eq_ignore_ascii_case(&text));
            prop_assert!(canonical || shorthand);
        }
    }
}
