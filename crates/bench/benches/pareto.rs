//! Pareto-explorer microbench: warm-started full-range budget walks
//! against cold per-budget runs, plus the parallel explorer end to end.
//!
//! The warm walk is the explorer's inner loop: one `sched::force::Workspace`
//! carried across every budget of a circuit, so timing analysis and kernel
//! buffers are reused instead of reallocated.  Before timing, every case
//! asserts the warm and cold flows produce equal schedules, so the bench
//! cannot quietly measure two different algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cdfg::Cdfg;
use engine::{BudgetCeiling, BudgetPolicy, Engine, ExploreOptions, ExploreRequest};
use gen::{Family, GenSpec};
use pmsched::{power_manage, power_manage_with_workspace, PowerManagementOptions};
use power::DelayScaling;
use sched::force::Workspace;

/// Named circuits with their full budget range (critical path ..= cp + 6).
fn cases() -> Vec<(String, Cdfg, std::ops::RangeInclusive<u32>)> {
    let mut cases = Vec::new();
    for bench in circuits::all_benchmarks() {
        if bench.name == "cordic" {
            continue; // 48-step budgets dominate the group's wall time
        }
        let cp = bench.cdfg.critical_path_length();
        cases.push((bench.name.clone(), bench.cdfg, cp..=cp + 6));
    }
    let mut spec = GenSpec::new(Family::RandomDag, 11, 1);
    spec.width = 8;
    spec.depth = 12;
    let bench = gen::generate_one(&spec, 0).expect("valid spec");
    let cp = bench.cdfg.critical_path_length();
    cases.push((bench.name, bench.cdfg, cp..=cp + 6));
    cases
}

fn bench_budget_walks(c: &mut Criterion) {
    let mut group = c.benchmark_group("pareto_walk");
    group.sample_size(10);
    for (name, cdfg, budgets) in cases() {
        // Identity guard: the warm walk must reproduce the cold results.
        let mut ws = Workspace::new();
        for budget in budgets.clone() {
            let options = PowerManagementOptions::with_latency(budget);
            let warm = power_manage_with_workspace(&cdfg, &options, &mut ws).expect("feasible");
            let cold = power_manage(&cdfg, &options).expect("feasible");
            assert_eq!(warm.schedule(), cold.schedule(), "{name} diverged at {budget}");
        }

        let label = format!("{name}/{}n", cdfg.node_count());
        group.bench_with_input(BenchmarkId::new("cold", &label), &cdfg, |b, g| {
            b.iter(|| {
                for budget in budgets.clone() {
                    let options = PowerManagementOptions::with_latency(budget);
                    black_box(power_manage(g, &options).expect("feasible"));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("warm", &label), &cdfg, |b, g| {
            let mut ws = Workspace::new();
            b.iter(|| {
                for budget in budgets.clone() {
                    let options = PowerManagementOptions::with_latency(budget);
                    black_box(power_manage_with_workspace(g, &options, &mut ws).expect("feasible"));
                }
            })
        });
    }
    group.finish();
}

fn bench_explorer(c: &mut Criterion) {
    let engine = Engine::new();
    let requests: Vec<ExploreRequest> =
        ["dealer", "gcd", "vender", "abs_diff"].map(ExploreRequest::new).to_vec();
    let options = ExploreOptions::new()
        .policy(BudgetPolicy::Pareto)
        .ceiling(BudgetCeiling::CriticalPathPlus(6))
        .scaling(DelayScaling::Quadratic);
    let baseline = engine.explore(&requests, &options, 1);
    let mut group = c.benchmark_group("pareto_explore");
    group.sample_size(10);
    for threads in [1usize, 4] {
        assert_eq!(
            engine.explore(&requests, &options, threads).to_json(),
            baseline.to_json(),
            "explorer must be thread-count independent"
        );
        group.bench_with_input(
            BenchmarkId::new("paper", format!("{threads}t")),
            &threads,
            |b, &t| b.iter(|| black_box(engine.explore(&requests, &options, t))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_budget_walks, bench_explorer);
criterion_main!(benches);
