//! Ablation benches: the Section IV extensions and the design choices called
//! out in DESIGN.md.
//!
//! * multiplexor processing order (Section IV-A),
//! * pipelining depth (Section IV-B),
//! * scheduler behind the control edges (force-directed vs list),
//! * resource budget (minimum vs baseline allocation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use circuits::{dealer, gcd, vender};
use experiments::ablation;
use pmsched::algorithm::power_manage_reordered;
use pmsched::pipeline::power_manage_pipelined;
use pmsched::{power_manage, MuxOrder, PowerManagementOptions};
use sched::hyper::{self, HyperOptions};
use sched::{force, list, ResourceConstraint};

fn bench_reorder(c: &mut Criterion) {
    println!(
        "{}",
        ablation::render_reorder(&ablation::reorder_ablation().expect("reorder ablation"))
    );
    let cdfg = vender();
    let mut group = c.benchmark_group("ablation_mux_order");
    for (label, order) in [
        ("outputs_first", MuxOrder::OutputsFirst),
        ("inputs_first", MuxOrder::InputsFirst),
        ("by_savings", MuxOrder::BySavings),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| {
                power_manage(
                    black_box(&cdfg),
                    &PowerManagementOptions::with_latency(6).mux_order(order.clone()),
                )
                .unwrap()
            })
        });
    }
    group.bench_function("reordered_search", |b| {
        b.iter(|| {
            power_manage_reordered(black_box(&cdfg), &PowerManagementOptions::with_latency(6), 4)
                .unwrap()
        })
    });
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    println!(
        "{}",
        ablation::render_pipeline(&ablation::pipeline_ablation().expect("pipeline ablation"))
    );
    let cdfg = dealer();
    let mut group = c.benchmark_group("ablation_pipeline_depth");
    for stages in 1..=3u32 {
        group.bench_with_input(BenchmarkId::from_parameter(stages), &stages, |b, &stages| {
            b.iter(|| {
                power_manage_pipelined(
                    black_box(&cdfg),
                    &PowerManagementOptions::with_latency(4),
                    stages,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

fn bench_scheduler_choice(c: &mut Criterion) {
    let cdfg = gcd();
    let latency = 7;
    let allocation = hyper::minimum_resources(&cdfg, latency).expect("allocation");
    let mut group = c.benchmark_group("ablation_scheduler");
    group.bench_function("force_directed", |b| {
        b.iter(|| force::schedule(black_box(&cdfg), latency).unwrap())
    });
    group.bench_function("list_constrained", |b| {
        b.iter(|| {
            list::schedule(
                black_box(&cdfg),
                &ResourceConstraint::Limited(allocation.clone()),
                latency,
            )
            .unwrap()
        })
    });
    group.bench_function("hyper_min_resources", |b| {
        b.iter(|| hyper::schedule(black_box(&cdfg), &HyperOptions::with_latency(latency)).unwrap())
    });
    group.finish();
}

fn bench_resource_budget(c: &mut Criterion) {
    let cdfg = vender();
    let unconstrained =
        power_manage(&cdfg, &PowerManagementOptions::with_latency(6)).expect("unconstrained run");
    let baseline_units = unconstrained.baseline_resource_usage();
    let mut group = c.benchmark_group("ablation_resource_budget");
    group.bench_function("unlimited_units", |b| {
        b.iter(|| power_manage(black_box(&cdfg), &PowerManagementOptions::with_latency(6)).unwrap())
    });
    group.bench_function("baseline_units", |b| {
        b.iter(|| {
            power_manage(
                black_box(&cdfg),
                &PowerManagementOptions::with_resources(
                    6,
                    ResourceConstraint::Limited(baseline_units.clone()),
                ),
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_reorder,
    bench_pipeline,
    bench_scheduler_choice,
    bench_resource_budget
);
criterion_main!(benches);
