//! Engine throughput (scenarios per second) on *generated* workloads, at 1
//! vs N worker threads.
//!
//! The sweep bench (`benches/sweep.rs`) times the paper's 32-scenario smoke
//! matrix; this one feeds the engine a synthetic batch from `crates/gen` —
//! the workload shape `sweep --gen` runs at count=thousands — and reports
//! scenarios/sec so the parallel-speedup number is comparable across
//! workload sizes.  Cold runs use a fresh engine (every scheduling prefix
//! computed); the warm run measures pure cache-hit dispatch.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use circuits::Benchmark;
use engine::{Engine, SweepPlan};
use experiments::genweep::batch_plan;
use gen::{Family, GenSpec};

/// A mixed batch: mostly random DAGs plus a slice of mux trees, sized to
/// keep the bench under a few seconds while still dominating fixed costs.
fn bench_specs() -> Vec<GenSpec> {
    vec![GenSpec::new(Family::RandomDag, 42, 48), GenSpec::new(Family::MuxTree, 42, 16)]
}

/// A fresh engine with the generated batch registered — the cold-start
/// state every timed iteration begins from.
fn cold_engine(batch: &[Benchmark]) -> Engine {
    let mut engine = Engine::new();
    engine.register_benchmarks(batch.to_vec());
    engine
}

fn scenarios_per_second(batch: &[Benchmark], plan: &SweepPlan, threads: usize) -> f64 {
    let engine = cold_engine(batch);
    let start = Instant::now();
    let report = engine.run(plan, threads);
    let elapsed = start.elapsed().as_secs_f64();
    report.records.len() as f64 / elapsed.max(1e-9)
}

fn bench_gen_throughput(c: &mut Criterion) {
    let specs = bench_specs();
    // One generation for the whole bench; every timed iteration reuses it.
    let batch: Vec<Benchmark> =
        specs.iter().flat_map(|s| gen::generate(s).expect("valid spec")).collect();
    let plan: SweepPlan = batch_plan(&batch).expect("bench batch is valid");
    // The headline scenarios/sec number CI tracks, one cold run per thread
    // count (the criterion samples below re-measure the same work).
    println!(
        "generated plan: {} scenarios over {} circuits; throughput at 1 thread: \
         {:.0} scen/s, at 4 threads: {:.0} scen/s",
        plan.len(),
        batch.len(),
        scenarios_per_second(&batch, &plan, 1),
        scenarios_per_second(&batch, &plan, 4),
    );

    let mut group = c.benchmark_group("gen_throughput");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("cold", threads), &threads, |b, &threads| {
            b.iter(|| {
                let engine = cold_engine(&batch);
                let report = engine.run(black_box(&plan), threads);
                black_box(report.records.len())
            })
        });
    }

    let warm = cold_engine(&batch);
    warm.run(&plan, 2);
    group.bench_function("warm/2", |b| {
        b.iter(|| {
            let report = warm.run(black_box(&plan), 2);
            black_box(report.records.len())
        })
    });

    // Generation itself should stay a rounding error next to scheduling.
    group.bench_function("generate_only", |b| {
        b.iter(|| {
            for spec in &specs {
                black_box(gen::generate(spec).expect("valid spec"));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_gen_throughput);
criterion_main!(benches);
