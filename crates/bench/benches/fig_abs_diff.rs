//! Figures 1 and 2: the |a - b| walkthrough.
//!
//! Prints both figure reproductions once, then measures the cost of the
//! power-management scheduling pass at 2 and 3 control steps.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use circuits::abs_diff;
use experiments::figures;
use pmsched::{power_manage, PowerManagementOptions};

fn bench_figures(c: &mut Criterion) {
    let fig1 = figures::figure1().expect("figure 1 flow");
    println!("{}", figures::render_figure1(&fig1));
    let fig2 = figures::figure2().expect("figure 2 flow");
    println!("{}", figures::render_figure2(&fig2));

    let cdfg = abs_diff();
    let mut group = c.benchmark_group("figures_abs_diff");
    group.bench_function("figure1_two_steps", |b| {
        b.iter(|| power_manage(black_box(&cdfg), &PowerManagementOptions::with_latency(2)).unwrap())
    });
    group.bench_function("figure2_three_steps", |b| {
        b.iter(|| power_manage(black_box(&cdfg), &PowerManagementOptions::with_latency(3)).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
