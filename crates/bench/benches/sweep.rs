//! Scenario-sweep engine: 1-thread vs N-thread wall time, plus the value
//! of the prefix memo cache.
//!
//! Prints the small-matrix sweep summary once, then measures the same plan
//! cold (fresh engine, so every prefix is computed) at several thread
//! counts, and finally warm (one shared engine, so every prefix is a cache
//! hit).  The 1-vs-N ratio is the number CI tracks for the parallel
//! speedup; on a single-core runner it hovers around 1.0 and the cached
//! run is the one that collapses.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use engine::{Engine, SweepPlan};
use experiments::sweep::full_matrix_plan;

fn bench_sweep(c: &mut Criterion) {
    let plan: SweepPlan = full_matrix_plan(true).expect("small matrix builds");
    {
        let engine = Engine::new();
        let report = engine.run(&plan, 0);
        println!("{}", report.render());
    }

    let mut group = c.benchmark_group("sweep_small_matrix");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("cold", threads), &threads, |b, &threads| {
            b.iter(|| {
                // A fresh engine per run: every scheduling prefix is
                // recomputed, so this measures real sweep work.
                let engine = Engine::new();
                let report = engine.run(black_box(&plan), threads);
                black_box(report.records.len())
            })
        });
    }

    let warm = Engine::new();
    warm.run(&plan, 2); // populate the cache once
    group.bench_function("warm/2", |b| {
        b.iter(|| {
            let report = warm.run(black_box(&plan), 2);
            black_box(report.records.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
