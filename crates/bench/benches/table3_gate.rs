//! Table III: gate-level area and simulated power (the Synopsys substitute).
//!
//! Prints the regenerated table once, then measures the full gate-level
//! comparison flow (schedule + bind + controller + RTL simulation over
//! random vectors) for the three circuits the paper synthesised.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use circuits::{dealer, gcd, vender};
use experiments::table3;
use power::estimate::{gate_level_comparison, GateLevelOptions};

fn bench_table3(c: &mut Criterion) {
    let rows = table3::table3().expect("table 3 flow");
    println!("{}", table3::render(&rows));

    let cases = [("dealer", dealer(), 6u32), ("gcd", gcd(), 7), ("vender", vender(), 6)];
    let mut group = c.benchmark_group("table3_gate_level");
    group.sample_size(10);
    for (name, cdfg, steps) in cases {
        group.bench_with_input(
            BenchmarkId::new(name, steps),
            &(cdfg, steps),
            |b, (cdfg, steps)| {
                b.iter(|| {
                    let report = gate_level_comparison(
                        black_box(cdfg),
                        &GateLevelOptions::new(*steps).samples(200),
                    )
                    .unwrap();
                    black_box(report.power_reduction_percent)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
