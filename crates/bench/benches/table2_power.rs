//! Table II: power-management scheduling and the datapath power estimate.
//!
//! Prints the regenerated table once, then measures the scheduling pass for
//! every (circuit, control-step) pair the paper evaluates.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use experiments::table2;
use pmsched::{power_manage, PowerManagementOptions};

fn bench_table2(c: &mut Criterion) {
    let rows = table2::table2().expect("table 2 flow");
    println!("{}", table2::render(&rows));

    let mut group = c.benchmark_group("table2_power_management");
    for (name, cdfg, steps) in bench::table2_cases() {
        // Keep the heavyweight cordic runs to a small sample count so the
        // full suite finishes in reasonable time.
        if name == "cordic" {
            group.sample_size(10);
        } else {
            group.sample_size(30);
        }
        group.bench_with_input(
            BenchmarkId::new(name.clone(), steps),
            &(cdfg, steps),
            |b, (cdfg, steps)| {
                b.iter(|| {
                    let result = power_manage(
                        black_box(cdfg),
                        &PowerManagementOptions::with_latency(*steps),
                    )
                    .unwrap();
                    black_box(result.savings().reduction_percent)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_table2);
criterion_main!(benches);
