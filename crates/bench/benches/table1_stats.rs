//! Table I: circuit statistics.
//!
//! Prints the table once, then measures the cost of building each benchmark
//! CDFG and computing its statistics (the "parse + analyse" part of the
//! flow).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use circuits::{cordic, dealer, gcd, vender, CircuitStats};
use experiments::table1;

fn bench_table1(c: &mut Criterion) {
    println!("{}", table1::render(&table1::table1()));

    let mut group = c.benchmark_group("table1_stats");
    group.bench_function("dealer_build_and_stats", |b| {
        b.iter(|| CircuitStats::of(black_box(&dealer())))
    });
    group.bench_function("gcd_build_and_stats", |b| b.iter(|| CircuitStats::of(black_box(&gcd()))));
    group.bench_function("vender_build_and_stats", |b| {
        b.iter(|| CircuitStats::of(black_box(&vender())))
    });
    group.bench_function("cordic_build_and_stats", |b| {
        b.iter(|| CircuitStats::of(black_box(&cordic())))
    });
    group.bench_function("abs_diff_from_silage", |b| {
        b.iter(|| silage::compile(black_box(circuits::abs_diff_silage_source())).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
