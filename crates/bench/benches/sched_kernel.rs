//! Scheduling-kernel microbench: the incremental force-directed scheduler
//! against the retained naive reference (and list scheduling for context)
//! across circuit sizes.
//!
//! This is the bench behind `BENCH_sched.json` (see the `bench_sched`
//! binary): the acceptance bar for the incremental rewrite is a ≥ 5×
//! single-thread speedup of `sched::force` over `sched::naive` on the
//! largest generated family.  Before timing, every case asserts the two
//! kernels still produce equal schedules, so the bench cannot quietly
//! measure two different algorithms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use cdfg::Cdfg;
use gen::{Family, GenSpec};
use sched::{force, list, naive, ResourceConstraint};

/// Named circuits with their scheduling latency, small to large.
fn cases() -> Vec<(String, Cdfg, u32)> {
    let mut cases: Vec<(String, Cdfg, u32)> = Vec::new();
    // The four paper circuits at their relaxed Table II budget.
    for bench in circuits::all_benchmarks() {
        let latency = *bench.control_steps.last().expect("budgets");
        cases.push((bench.name.clone(), bench.cdfg, latency));
    }
    // Generated families at increasing size; the random-dag cases are the
    // ones the sweep engine runs by the hundreds.
    let mut specs =
        vec![GenSpec::new(Family::MuxTree, 11, 1), GenSpec::new(Family::DspChain, 11, 1)];
    for (width, depth) in [(6, 8), (12, 16), (16, 24)] {
        let mut spec = GenSpec::new(Family::RandomDag, 11, 1);
        spec.width = width;
        spec.depth = depth;
        specs.push(spec);
    }
    for spec in specs {
        let bench = gen::generate_one(&spec, 0).expect("valid spec");
        let latency = *bench.control_steps.last().expect("budgets");
        cases.push((bench.name.clone(), bench.cdfg, latency));
    }
    cases
}

fn bench_sched_kernel(c: &mut Criterion) {
    let cases = cases();
    let mut group = c.benchmark_group("sched_kernel");
    group.sample_size(10);
    for (name, cdfg, latency) in &cases {
        let label = format!("{name}/{}n/L{latency}", cdfg.node_count());
        // Identity guard: never benchmark diverging kernels.
        assert_eq!(
            force::schedule(cdfg, *latency).expect("feasible"),
            naive::schedule(cdfg, *latency).expect("feasible"),
            "kernels diverged on {name}"
        );
        group.bench_with_input(BenchmarkId::new("force", &label), cdfg, |b, g| {
            b.iter(|| black_box(force::schedule(g, *latency).expect("feasible")))
        });
        group.bench_with_input(BenchmarkId::new("naive", &label), cdfg, |b, g| {
            b.iter(|| black_box(naive::schedule(g, *latency).expect("feasible")))
        });
        group.bench_with_input(BenchmarkId::new("list", &label), cdfg, |b, g| {
            b.iter(|| {
                black_box(
                    list::schedule(g, &ResourceConstraint::Unlimited, *latency)
                        .expect("unlimited list scheduling always completes"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sched_kernel);
criterion_main!(benches);
