//! Benchmark harness crate.
//!
//! The Criterion benches under `benches/` regenerate every table and figure
//! of the paper and measure the cost of the synthesis passes themselves:
//!
//! * `fig_abs_diff` — Figures 1 and 2 (the |a − b| walkthrough),
//! * `table1_stats` — Table I (circuit statistics),
//! * `table2_power` — Table II (power-management scheduling and the
//!   datapath power estimate for every circuit/budget pair),
//! * `table3_gate` — Table III (gate-level area and simulated power),
//! * `ablations` — the Section IV extensions (multiplexor reordering and
//!   pipelining) plus scheduler-cost ablations,
//! * `sweep` — the scenario-sweep engine at 1, 2 and 4 worker threads
//!   (cold cache) and with a warm prefix cache, tracking the parallel
//!   speedup and the cache's value.
//!
//! Run them all with `cargo bench --workspace`; each bench prints the table
//! it regenerates once before measuring.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Returns the benchmark circuits paired with the control-step budgets used
/// throughout the benches (re-exported so the individual bench binaries stay
/// tiny).
pub fn table2_cases() -> Vec<(String, cdfg::Cdfg, u32)> {
    circuits::all_benchmarks()
        .into_iter()
        .flat_map(|b| {
            let name = b.name.to_owned();
            let cdfg = b.cdfg;
            b.control_steps
                .into_iter()
                .map(move |steps| (name.clone(), cdfg.clone(), steps))
                .collect::<Vec<_>>()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cases_cover_all_ten_table2_rows() {
        assert_eq!(table2_cases().len(), 10);
    }
}
