//! Emits `BENCH_core.json`: size-vs-time for the mux-analysis hot path.
//!
//! Two measurements per run:
//!
//! * **Budget walks** — the incremental selection loop (dense-bitset cones,
//!   one-pass reachability, `Timing::tighten` feasibility) against the
//!   retained `pmsched::naive` reference (per-mux `BTreeSet` analysis with a
//!   per-node dead-end scan, physical edge insertion and a full ASAP/ALAP
//!   recomputation per candidate), walking each circuit across a 9-budget
//!   latency range.  Before timing, every case asserts that both paths reach
//!   identical schedules and decisions, so a measured difference can never
//!   come from a behavioural divergence.
//! * **Analysis scaling** — `MuxCones::analyze_all` on generated circuits
//!   from ~500 to ~50k nodes.  The naive analysis is quadratic per mux, so
//!   it is sampled on a few multiplexors (and skipped entirely at the sizes
//!   where even one mux takes seconds); the bitset path is timed in full.
//!
//! ```text
//! cargo run --release -p bench --bin bench_core [-- --quick] [--out PATH]
//! ```
//!
//! * `--quick` — fewer repetitions and no huge circuits (CI smoke mode),
//! * `--out PATH` — write the JSON to a file instead of stdout.

use std::fmt::Write as _;
use std::process::exit;
use std::time::Instant;

use cdfg::Cdfg;
use gen::{Family, GenSpec};
use pmsched::{naive, power_manage, ConeWorkspace, MuxCones, PowerManagementOptions};

struct WalkCase {
    name: String,
    kind: &'static str,
    cdfg: Cdfg,
    span: u32,
}

fn walk_cases() -> Vec<WalkCase> {
    let mut cases = Vec::new();
    for bench in circuits::all_benchmarks() {
        if bench.name == "cordic" {
            continue; // 48-step budgets would dominate the whole emitter
        }
        cases.push(WalkCase { name: bench.name.clone(), kind: "paper", cdfg: bench.cdfg, span: 8 });
    }
    let mut specs =
        vec![GenSpec::new(Family::MuxTree, 11, 1), GenSpec::new(Family::DspChain, 11, 1)];
    for (width, depth) in [(6, 8), (12, 16), (16, 24)] {
        let mut spec = GenSpec::new(Family::RandomDag, 11, 1);
        spec.width = width;
        spec.depth = depth;
        specs.push(spec);
    }
    for spec in specs {
        let bench = gen::generate_one(&spec, 0).expect("valid spec");
        cases.push(WalkCase { name: bench.name, kind: "generated", cdfg: bench.cdfg, span: 8 });
    }
    cases
}

/// Generated circuits for the analysis-scaling rows, smallest first.
fn analysis_cases(quick: bool) -> Vec<(String, Cdfg)> {
    let mut dims = vec![(16, 24), (24, 56), (32, 120)];
    if !quick {
        dims.push((48, 300));
        dims.push((64, 600));
    }
    dims.into_iter()
        .map(|(width, depth)| {
            let mut spec = GenSpec::new(Family::RandomDag, 11, 1);
            spec.width = width;
            spec.depth = depth;
            let bench = gen::generate_one(&spec, 0).expect("valid spec");
            (bench.name, bench.cdfg)
        })
        .collect()
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

/// Asserts that the incremental loop and the naive reference reach the same
/// decisions on `cdfg` at `budget` (everything except control-edge ids).
fn assert_identity(cdfg: &Cdfg, budget: u32, name: &str) {
    let options = PowerManagementOptions::with_latency(budget);
    let fast = power_manage(cdfg, &options).expect("feasible");
    let slow = naive::power_manage(cdfg, &options).expect("feasible");
    assert_eq!(fast.schedule(), slow.schedule(), "schedules diverged on {name}@{budget}");
    assert_eq!(fast.managed_muxes().len(), slow.managed_muxes().len(), "{name}@{budget}");
    for (f, s) in fast.managed_muxes().iter().zip(slow.managed_muxes()) {
        assert_eq!(
            (f.mux, f.accepted, &f.shutdown_false, &f.shutdown_true),
            (s.mux, s.accepted, &s.shutdown_false, &s.shutdown_true),
            "decisions diverged on {name}@{budget}"
        );
    }
    assert_eq!(
        fast.savings().reduction_percent,
        slow.savings().reduction_percent,
        "savings diverged on {name}@{budget}"
    );
}

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument `{other}` (expected --quick / --out PATH)");
                exit(2);
            }
        }
    }
    let reps = if quick { 3 } else { 10 };

    // Budget walks: incremental loop vs the naive reference.
    let mut walk_rows = String::new();
    let mut headline: Option<(String, usize, f64)> = None;
    for case in walk_cases() {
        let WalkCase { name, kind, cdfg, span } = case;
        let cp = cdfg.critical_path_length();
        let budgets = cp..=cp + span;
        for budget in budgets.clone() {
            assert_identity(&cdfg, budget, &name);
        }

        let naive_s = time_best(reps, || {
            for budget in budgets.clone() {
                let options = PowerManagementOptions::with_latency(budget);
                let _ = naive::power_manage(&cdfg, &options).expect("feasible");
            }
        });
        // The fast configuration is the Pareto explorer's actual inner loop:
        // one scheduling workspace warm-started across the whole budget
        // range (bench_pareto pins warm == cold == naive identity).
        let fast_s = time_best(reps, || {
            let mut ws = sched::force::Workspace::new();
            for budget in budgets.clone() {
                let options = PowerManagementOptions::with_latency(budget);
                let _ = pmsched::power_manage_with_workspace(&cdfg, &options, &mut ws)
                    .expect("feasible");
            }
        });
        let speedup = naive_s / fast_s.max(1e-12);

        if !walk_rows.is_empty() {
            walk_rows.push_str(",\n");
        }
        write!(
            walk_rows,
            "    {{\"name\": \"{name}\", \"kind\": \"{kind}\", \"nodes\": {}, \
             \"muxes\": {}, \"budgets\": {}, \"naive_us\": {:.1}, \"fast_us\": {:.1}, \
             \"speedup\": {:.2}}}",
            cdfg.node_count(),
            cdfg.mux_nodes().len(),
            span + 1,
            naive_s * 1e6,
            fast_s * 1e6,
            speedup,
        )
        .expect("string write");
        // Generated cases grow monotonically; the last one is the headline
        // 500+-node random DAG.
        if kind == "generated" {
            headline = Some((name, cdfg.node_count(), speedup));
        }
    }

    // Analysis scaling: analyze_all on growing circuits, naive sampled where
    // it is still tractable.
    let mut analysis_rows = String::new();
    for (name, cdfg) in analysis_cases(quick) {
        let muxes = cdfg.mux_nodes();
        let fast_all_s = time_best(reps, || {
            let _ = MuxCones::analyze_all(&cdfg);
        });
        let fast_per_mux_us = fast_all_s * 1e6 / muxes.len().max(1) as f64;

        // One naive mux costs O(nodes^2); past ~6k nodes a single call takes
        // seconds, so the reference is sampled only below that.
        let (naive_json, speedup_json) = if cdfg.node_count() <= 6_000 {
            let sample: Vec<_> = muxes.iter().copied().take(3).collect();
            let mut ws = ConeWorkspace::new();
            ws.prepare(&cdfg);
            for &m in &sample {
                assert_eq!(
                    MuxCones::analyze_with(&cdfg, m, &mut ws),
                    naive::analyze(&cdfg, m),
                    "analysis diverged on {name} mux {m}"
                );
            }
            let naive_s = time_best(reps.min(3), || {
                for &m in &sample {
                    let _ = naive::analyze(&cdfg, m);
                }
            });
            let naive_per_mux_us = naive_s * 1e6 / sample.len().max(1) as f64;
            (
                format!("{naive_per_mux_us:.1}"),
                format!("{:.1}", naive_per_mux_us / fast_per_mux_us.max(1e-9)),
            )
        } else {
            ("null".to_string(), "null".to_string())
        };

        if !analysis_rows.is_empty() {
            analysis_rows.push_str(",\n");
        }
        write!(
            analysis_rows,
            "    {{\"name\": \"{name}\", \"nodes\": {}, \"muxes\": {}, \
             \"analyze_all_ms\": {:.2}, \"fast_per_mux_us\": {fast_per_mux_us:.1}, \
             \"naive_per_mux_us\": {naive_json}, \"per_mux_speedup\": {speedup_json}}}",
            cdfg.node_count(),
            muxes.len(),
            fast_all_s * 1e3,
        )
        .expect("string write");
    }

    let (headline_name, headline_nodes, headline_speedup) =
        headline.expect("generated walk cases exist");
    let json = format!(
        "{{\n  \"bench\": \"core_analysis\",\n  \"schema\": 1,\n  \"mode\": \"{}\",\n  \
         \"reps\": {reps},\n  \"walks\": [\n{walk_rows}\n  ],\n  \"headline_walk\": \
         {{\"name\": \"{headline_name}\", \"nodes\": {headline_nodes}, \
         \"speedup\": {headline_speedup:.2}}},\n  \"analysis\": [\n{analysis_rows}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
    );

    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            }
            eprintln!(
                "wrote {path}: {headline_name} ({headline_nodes} nodes) walk at \
                 {headline_speedup:.2}x over the naive reference"
            );
        }
        None => print!("{json}"),
    }
}
