//! Emits `BENCH_pareto.json`: the performance trajectory of the Pareto
//! explorer.
//!
//! Two measurements per run:
//!
//! * **Budget walks** — the warm-started full-range walk (one
//!   `sched::force::Workspace` carried across every budget, the
//!   `Engine::explore` inner loop) against cold per-budget `power_manage`
//!   calls, on the paper circuits and generated circuits of increasing
//!   size.  Before timing, every case asserts that the warm walk's
//!   schedules are identical to the cold ones *and* to the retained
//!   `sched::naive` reference, so a measured difference can never come
//!   from a behavioural divergence.  (The honest result: walks are
//!   dominated by the per-mux selection analysis, so workspace reuse buys
//!   only a few percent — the identity guarantee is the load-bearing
//!   property.)
//! * **Explorer parallelism** — `Engine::explore` over a batch of
//!   generated circuits at 1 vs. N threads, with a byte-identity assert on
//!   the JSON.  This is where full-range exploration actually scales, and
//!   it is the headline number.
//!
//! ```text
//! cargo run --release -p bench --bin bench_pareto [-- --quick] [--out PATH]
//! ```
//!
//! * `--quick` — fewer repetitions and a smaller batch (CI smoke mode),
//! * `--out PATH` — write the JSON to a file instead of stdout.

use std::fmt::Write as _;
use std::process::exit;
use std::time::Instant;

use cdfg::Cdfg;
use engine::{BudgetCeiling, BudgetPolicy, Engine, ExploreOptions, ExploreRequest};
use gen::{Family, GenSpec};
use pmsched::{power_manage, power_manage_with_workspace, PowerManagementOptions};
use power::DelayScaling;
use sched::{force, naive};

struct Case {
    name: String,
    kind: &'static str,
    cdfg: Cdfg,
    span: u32,
}

fn cases() -> Vec<Case> {
    let mut cases = Vec::new();
    for bench in circuits::all_benchmarks() {
        if bench.name == "cordic" {
            continue; // 48-step budgets would dominate the whole emitter
        }
        cases.push(Case { name: bench.name.clone(), kind: "paper", cdfg: bench.cdfg, span: 8 });
    }
    let mut specs =
        vec![GenSpec::new(Family::MuxTree, 11, 1), GenSpec::new(Family::DspChain, 11, 1)];
    for (width, depth) in [(6, 8), (12, 16), (16, 24)] {
        let mut spec = GenSpec::new(Family::RandomDag, 11, 1);
        spec.width = width;
        spec.depth = depth;
        specs.push(spec);
    }
    for spec in specs {
        let bench = gen::generate_one(&spec, 0).expect("valid spec");
        cases.push(Case { name: bench.name, kind: "generated", cdfg: bench.cdfg, span: 8 });
    }
    cases
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument `{other}` (expected --quick / --out PATH)");
                exit(2);
            }
        }
    }
    let reps = if quick { 3 } else { 15 };

    let mut rows = String::new();
    let mut largest: Option<(String, f64)> = None;
    for case in cases() {
        let Case { name, kind, cdfg, span } = case;
        let cp = cdfg.critical_path_length();
        let budgets = cp..=cp + span;

        // Identity guard across all three implementations at every budget.
        let mut ws = force::Workspace::new();
        for budget in budgets.clone() {
            let options = PowerManagementOptions::with_latency(budget);
            let warm = power_manage_with_workspace(&cdfg, &options, &mut ws).expect("feasible");
            let cold = power_manage(&cdfg, &options).expect("feasible");
            assert_eq!(warm.schedule(), cold.schedule(), "warm/cold diverged on {name}@{budget}");
            let reference = naive::schedule(warm.cdfg(), budget).expect("feasible");
            assert_eq!(
                warm.schedule(),
                &reference,
                "warm/naive diverged on {name}@{budget} (constrained CDFG)"
            );
        }

        let cold_s = time_best(reps, || {
            for budget in budgets.clone() {
                let options = PowerManagementOptions::with_latency(budget);
                let _ = power_manage(&cdfg, &options).expect("feasible");
            }
        });
        let warm_s = time_best(reps, || {
            let mut ws = force::Workspace::new();
            for budget in budgets.clone() {
                let options = PowerManagementOptions::with_latency(budget);
                let _ = power_manage_with_workspace(&cdfg, &options, &mut ws).expect("feasible");
            }
        });
        let speedup = cold_s / warm_s.max(1e-12);

        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        write!(
            rows,
            "    {{\"name\": \"{name}\", \"kind\": \"{kind}\", \"nodes\": {}, \
             \"budgets\": {}, \"cold_us\": {:.1}, \"warm_us\": {:.1}, \"speedup\": {:.2}}}",
            cdfg.node_count(),
            span + 1,
            cold_s * 1e6,
            warm_s * 1e6,
            speedup,
        )
        .expect("string write");
        // The headline case: every generated circuit is larger than the
        // previous one, so the last generated row is the largest family.
        if kind == "generated" {
            largest = Some((name, speedup));
        }
    }

    // Explorer parallelism: a batch of generated circuits, 1 vs N threads.
    let batch_size = if quick { 8 } else { 24 };
    let mut spec = GenSpec::new(Family::RandomDag, 11, batch_size);
    spec.width = 8;
    spec.depth = 10;
    let batch = gen::generate(&spec).expect("valid spec");
    let requests: Vec<ExploreRequest> =
        batch.iter().map(|b| ExploreRequest::new(b.name.as_str())).collect();
    let mut engine = Engine::new();
    engine.register_benchmarks(batch);
    let options = ExploreOptions::new()
        .policy(BudgetPolicy::Pareto)
        .ceiling(BudgetCeiling::CriticalPathPlus(8))
        .scaling(DelayScaling::Quadratic);
    let threads = std::thread::available_parallelism().map_or(4, usize::from).min(8);
    let baseline = engine.explore(&requests, &options, 1);
    assert_eq!(
        baseline.to_json(),
        engine.explore(&requests, &options, threads).to_json(),
        "explorer output must be thread-count independent"
    );
    let serial_s = time_best(reps.min(5), || {
        let _ = engine.explore(&requests, &options, 1);
    });
    let parallel_s = time_best(reps.min(5), || {
        let _ = engine.explore(&requests, &options, threads);
    });
    let parallel_speedup = serial_s / parallel_s.max(1e-12);

    let (largest_name, largest_speedup) = largest.expect("generated cases exist");
    let json = format!(
        "{{\n  \"bench\": \"pareto_walk\",\n  \"schema\": 1,\n  \"mode\": \"{}\",\n  \
         \"reps\": {reps},\n  \"cases\": [\n{rows}\n  ],\n  \"largest_generated\": \
         {{\"name\": \"{largest_name}\", \"speedup\": {largest_speedup:.2}}},\n  \
         \"explorer\": {{\"circuits\": {batch_size}, \"threads\": {threads}, \
         \"serial_ms\": {:.1}, \"parallel_ms\": {:.1}, \"speedup\": {parallel_speedup:.2}}}\n}}\n",
        if quick { "quick" } else { "full" },
        serial_s * 1e3,
        parallel_s * 1e3,
    );

    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            }
            eprintln!(
                "wrote {path}: explorer {parallel_speedup:.2}x on {threads} threads; \
                 largest walk case {largest_name} at {largest_speedup:.2}x warm"
            );
        }
        None => print!("{json}"),
    }
}
