//! Emits `BENCH_dvs.json`: the performance trajectory of the
//! fine-grained DVS path.
//!
//! Three measurements per run, identity-guarded before any clock starts:
//!
//! * **Kernel walks** — `sched::dvs::distribute_slack` over a budget
//!   walk with one warm `sched::dvs::Workspace` against a fresh
//!   workspace per call.  Before timing, every case asserts the warm
//!   levels and energy are bit-identical to fresh-buffer runs, and on
//!   the small circuits that the greedy energy never beats the exact
//!   branch-and-bound reference (`sched::dvs::exact_min_energy`).
//! * **Explorer overhead** — `Engine::explore` with the per-op
//!   five-level policy against the global quadratic curve on the same
//!   batch: what the slack-distribution kernel plus the partitioned
//!   binding cost on top of the single-curve path.
//! * **Explorer parallelism** — the per-op exploration at 1 vs. N
//!   threads, with a byte-identity assert on the JSON.
//!
//! ```text
//! cargo run --release -p bench --bin bench_dvs [-- --quick] [--out PATH]
//! ```
//!
//! * `--quick` — fewer repetitions and a smaller batch (CI smoke mode),
//! * `--out PATH` — write the JSON to a file instead of stdout.

use std::fmt::Write as _;
use std::process::exit;
use std::time::Instant;

use cdfg::Cdfg;
use engine::{
    BudgetCeiling, BudgetPolicy, Engine, ExploreOptions, ExploreRequest, VoltagePolicy,
    VoltagePreset,
};
use gen::{Family, GenSpec};
use pmsched::{power_manage, OpWeights, PowerManagementOptions, SelectProbabilities};
use power::DelayScaling;

struct Case {
    name: String,
    kind: &'static str,
    cdfg: Cdfg,
    span: u32,
    /// Run the exact reference here (small circuits only).
    exact: bool,
}

fn cases() -> Vec<Case> {
    let mut cases = vec![Case {
        name: "abs_diff".to_owned(),
        kind: "paper",
        cdfg: circuits::abs_diff(),
        span: 4,
        exact: true,
    }];
    for bench in circuits::all_benchmarks() {
        if bench.name == "cordic" {
            continue; // 48-step budgets would dominate the whole emitter
        }
        cases.push(Case {
            name: bench.name.clone(),
            kind: "paper",
            cdfg: bench.cdfg,
            span: 8,
            exact: false,
        });
    }
    let mut small = GenSpec::new(Family::MuxTree, 11, 1);
    small.depth = 2;
    let bench = gen::generate_one(&small, 0).expect("valid spec");
    cases.push(Case {
        name: bench.name,
        kind: "generated",
        cdfg: bench.cdfg,
        span: 4,
        exact: true,
    });
    for (width, depth) in [(6, 8), (12, 16), (16, 24)] {
        let mut spec = GenSpec::new(Family::RandomDag, 11, 1);
        spec.width = width;
        spec.depth = depth;
        let bench = gen::generate_one(&spec, 0).expect("valid spec");
        cases.push(Case {
            name: bench.name,
            kind: "generated",
            cdfg: bench.cdfg,
            span: 8,
            exact: false,
        });
    }
    cases
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument `{other}` (expected --quick / --out PATH)");
                exit(2);
            }
        }
    }
    let reps = if quick { 3 } else { 15 };

    let weights = OpWeights::paper_power();
    let table = VoltagePreset::FiveLevel.table();
    let levels = table.slack_levels();

    let mut rows = String::new();
    let mut max_gap = 0.0f64;
    for case in cases() {
        let Case { name, kind, cdfg, span, exact } = case;
        let cp = cdfg.critical_path_length();
        let budgets = cp..=cp + span;

        // One managed result per budget — the kernel's real input.
        let mut inputs = Vec::new();
        for budget in budgets.clone() {
            let options = PowerManagementOptions::with_latency(budget);
            let result = power_manage(&cdfg, &options).expect("feasible");
            inputs.push(result);
        }
        let probs = SelectProbabilities::fair();

        // Identity guards: warm == fresh at every budget; greedy >= exact
        // on the small circuits.
        let mut warm_ws = sched::dvs::Workspace::new();
        for result in &inputs {
            let pm = result.cdfg();
            let activation = result.activation(&probs);
            let node_weight = |n: cdfg::NodeId| {
                let class = pm.node(n).expect("live node").op.class();
                weights.weight(class) * activation.probability(n)
            };
            let warm = sched::dvs::distribute_slack(
                pm,
                result.latency(),
                &levels,
                &node_weight,
                &mut warm_ws,
            )
            .expect("feasible");
            let mut fresh_ws = sched::dvs::Workspace::new();
            let fresh = sched::dvs::distribute_slack(
                pm,
                result.latency(),
                &levels,
                &node_weight,
                &mut fresh_ws,
            )
            .expect("feasible");
            assert_eq!(warm.levels(), fresh.levels(), "warm/fresh levels diverged on {name}");
            assert_eq!(
                warm.energy().to_bits(),
                fresh.energy().to_bits(),
                "warm/fresh energy diverged on {name}"
            );
            if exact {
                let reference =
                    sched::dvs::exact_min_energy(pm, result.latency(), &levels, &node_weight)
                        .expect("feasible");
                let tolerance = 1e-9 * reference.energy().abs().max(1.0);
                assert!(
                    warm.energy() >= reference.energy() - tolerance,
                    "greedy beat the exact reference on {name}"
                );
                if reference.energy() > 0.0 {
                    let gap = (warm.energy() - reference.energy()) / reference.energy() * 100.0;
                    max_gap = max_gap.max(gap);
                }
            }
        }

        let fresh_s = time_best(reps, || {
            for result in &inputs {
                let pm = result.cdfg();
                let activation = result.activation(&probs);
                let node_weight = |n: cdfg::NodeId| {
                    let class = pm.node(n).expect("live node").op.class();
                    weights.weight(class) * activation.probability(n)
                };
                let mut ws = sched::dvs::Workspace::new();
                let _ = sched::dvs::distribute_slack(
                    pm,
                    result.latency(),
                    &levels,
                    &node_weight,
                    &mut ws,
                )
                .expect("feasible");
            }
        });
        let warm_s = time_best(reps, || {
            let mut ws = sched::dvs::Workspace::new();
            for result in &inputs {
                let pm = result.cdfg();
                let activation = result.activation(&probs);
                let node_weight = |n: cdfg::NodeId| {
                    let class = pm.node(n).expect("live node").op.class();
                    weights.weight(class) * activation.probability(n)
                };
                let _ = sched::dvs::distribute_slack(
                    pm,
                    result.latency(),
                    &levels,
                    &node_weight,
                    &mut ws,
                )
                .expect("feasible");
            }
        });
        let speedup = fresh_s / warm_s.max(1e-12);

        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        write!(
            rows,
            "    {{\"name\": \"{name}\", \"kind\": \"{kind}\", \"nodes\": {}, \
             \"budgets\": {}, \"fresh_us\": {:.1}, \"warm_us\": {:.1}, \"speedup\": {:.2}, \
             \"exact_checked\": {exact}}}",
            cdfg.node_count(),
            span + 1,
            fresh_s * 1e6,
            warm_s * 1e6,
            speedup,
        )
        .expect("string write");
    }

    // Explorer overhead and parallelism on a generated batch.
    let batch_size = if quick { 8 } else { 24 };
    let mut spec = GenSpec::new(Family::RandomDag, 11, batch_size);
    spec.width = 8;
    spec.depth = 10;
    let batch = gen::generate(&spec).expect("valid spec");
    let requests: Vec<ExploreRequest> =
        batch.iter().map(|b| ExploreRequest::new(b.name.as_str())).collect();
    let mut engine = Engine::new();
    engine.register_benchmarks(batch);
    let global_options = ExploreOptions::new()
        .policy(BudgetPolicy::FullRange)
        .ceiling(BudgetCeiling::CriticalPathPlus(6))
        .voltage(VoltagePolicy::Global(DelayScaling::Quadratic));
    let per_op_options = global_options.voltage(VoltagePolicy::PerOp(VoltagePreset::FiveLevel));
    let threads = std::thread::available_parallelism().map_or(4, usize::from).min(8);
    let baseline = engine.explore(&requests, &per_op_options, 1);
    assert_eq!(
        baseline.to_json(),
        engine.explore(&requests, &per_op_options, threads).to_json(),
        "per-op explorer output must be thread-count independent"
    );
    let global_s = time_best(reps.min(5), || {
        let _ = engine.explore(&requests, &global_options, 1);
    });
    let per_op_s = time_best(reps.min(5), || {
        let _ = engine.explore(&requests, &per_op_options, 1);
    });
    let parallel_s = time_best(reps.min(5), || {
        let _ = engine.explore(&requests, &per_op_options, threads);
    });
    let overhead = per_op_s / global_s.max(1e-12);
    let parallel_speedup = per_op_s / parallel_s.max(1e-12);

    let json = format!(
        "{{\n  \"bench\": \"dvs_kernel\",\n  \"schema\": 1,\n  \"mode\": \"{}\",\n  \
         \"reps\": {reps},\n  \"preset\": \"per-op-5\",\n  \"cases\": [\n{rows}\n  ],\n  \
         \"max_exact_gap_percent\": {max_gap:.4},\n  \
         \"explorer\": {{\"circuits\": {batch_size}, \"threads\": {threads}, \
         \"global_ms\": {:.1}, \"per_op_ms\": {:.1}, \"per_op_overhead\": {overhead:.2}, \
         \"parallel_ms\": {:.1}, \"parallel_speedup\": {parallel_speedup:.2}}}\n}}\n",
        if quick { "quick" } else { "full" },
        global_s * 1e3,
        per_op_s * 1e3,
        parallel_s * 1e3,
    );

    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            }
            eprintln!(
                "wrote {path}: per-op explorer {overhead:.2}x the global path, \
                 {parallel_speedup:.2}x on {threads} threads, max exact gap {max_gap:.4}%"
            );
        }
        None => print!("{json}"),
    }
}
