//! Emits `BENCH_service.json`: throughput and latency of the sweep-service
//! daemon.
//!
//! Starts an in-process `sweepd`, submits the small paper matrix as a job
//! repeatedly over the socket, and measures:
//!
//! * **cold_ms** — latency of the first job on a fresh daemon (every
//!   prefix computed),
//! * **warm p50/p99 ms** — per-job latency distribution once the shared
//!   cache is hot (the steady state the daemon exists for: protocol +
//!   cache lookups + report emission),
//! * **jobs_per_sec** — sustained sequential throughput over the whole
//!   warm run,
//! * **warm_hit_rate** — fraction of prefix lookups served from cache in
//!   the final job (must be 1.0).
//!
//! Every warm report is byte-compared against the cold one before any
//! timing is trusted — a daemon that drifted would make the numbers
//! meaningless.
//!
//! ```text
//! cargo run --release -p bench --bin bench_service [-- --quick] [--out PATH]
//! ```
//!
//! * `--quick` — fewer jobs (CI smoke mode),
//! * `--out PATH` — write the JSON to a file instead of stdout.

use std::process::exit;
use std::time::Instant;

use engine::{Scenario, SchedulerKind};
use service::{Client, Daemon, DaemonConfig, JobSpec, JobState};

/// The job every submission runs: the small paper matrix (no cordic),
/// both schedulers.
fn matrix() -> Vec<Scenario> {
    let mut scenarios = Vec::new();
    for bench in circuits::all_benchmarks() {
        if bench.name == "cordic" {
            continue;
        }
        for &steps in &bench.control_steps {
            for scheduler in [SchedulerKind::ForceDirected, SchedulerKind::List] {
                scenarios.push(Scenario::new(bench.name.as_str(), steps).scheduler(scheduler));
            }
        }
    }
    scenarios
}

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument `{other}` (expected --quick / --out PATH)");
                exit(2);
            }
        }
    }
    let jobs = if quick { 25 } else { 200 };

    let socket = std::env::temp_dir().join(format!("bench-service-{}.sock", std::process::id()));
    let daemon = Daemon::start(DaemonConfig::new(&socket)).expect("daemon starts");
    let mut client = Client::connect(&socket).expect("connect");

    let start = Instant::now();
    let cold = client.submit_and_wait(JobSpec::sweep(matrix())).expect("cold job");
    let cold_s = start.elapsed().as_secs_f64();
    assert_eq!(cold.state, JobState::Done);
    assert_eq!(cold.failures, Some(0));
    let reference = cold.report.clone().expect("report");

    let mut latencies = Vec::with_capacity(jobs);
    let mut last_cache = None;
    let sustained = Instant::now();
    for _ in 0..jobs {
        let start = Instant::now();
        let outcome = client.submit_and_wait(JobSpec::sweep(matrix())).expect("warm job");
        latencies.push(start.elapsed().as_secs_f64());
        assert_eq!(outcome.report.as_deref(), Some(&*reference), "warm report drifted");
        last_cache = outcome.job_cache;
    }
    let total_s = sustained.elapsed().as_secs_f64();
    let jobs_per_sec = jobs as f64 / total_s;

    latencies.sort_by(f64::total_cmp);
    let p50 = latencies[latencies.len() / 2];
    let p99 = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];
    let hit_rate = last_cache.expect("cache delta").hit_rate();
    assert!(
        last_cache.expect("cache delta").misses == 0,
        "steady-state jobs must be pure cache hits"
    );

    daemon.shutdown();
    daemon.join();

    let json = format!(
        "{{\n  \"bench\": \"service\",\n  \"schema\": 1,\n  \"mode\": \"{}\",\n  \
         \"scenarios_per_job\": {},\n  \"jobs\": {jobs},\n  \"cold_ms\": {:.2},\n  \
         \"warm_p50_ms\": {:.2},\n  \"warm_p99_ms\": {:.2},\n  \"jobs_per_sec\": {:.1},\n  \
         \"warm_hit_rate\": {hit_rate}\n}}\n",
        if quick { "quick" } else { "full" },
        matrix().len(),
        cold_s * 1e3,
        p50 * 1e3,
        p99 * 1e3,
        jobs_per_sec,
    );

    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            }
            eprintln!(
                "wrote {path}: {jobs_per_sec:.1} jobs/s sustained, warm p50 {:.2} ms \
                 (cold {:.2} ms)",
                p50 * 1e3,
                cold_s * 1e3
            );
        }
        None => print!("{json}"),
    }
}
