//! Emits `BENCH_online.json`: latency and economy of the online
//! incremental schedule repair.
//!
//! Drives a pure budget-step event stream (no churn, no rescale — the
//! cadence a DVS power manager actually produces) through an
//! [`engine::online::SessionState`] and measures:
//!
//! * **events_per_sec** — sustained apply throughput over the stream,
//! * **repair p50/p99 us** — per-event repair latency distribution,
//! * **median/mean touched ratio** — per-event `nodes_touched` against a
//!   from-scratch full recompute of the same event (measured in a
//!   separate, untimed verification pass),
//! * **identity** — every repaired schedule byte-compared against a cold
//!   `sched::force::schedule` at the final parameters.
//!
//! The binary *asserts* the identity and the headline economy claim
//! (median touched ratio < 0.3 on budget-step streams) before emitting
//! numbers — a fast kernel that drifted would make them meaningless.
//!
//! ```text
//! cargo run --release -p bench --bin bench_online [-- --quick] [--out PATH]
//! ```
//!
//! * `--quick` — fewer events (CI smoke mode),
//! * `--out PATH` — write the JSON to a file instead of stdout.

use std::process::exit;
use std::time::Instant;

use engine::online::{run_stream_verified, SessionState};
use gen::StreamSpec;

fn stream_spec(quick: bool) -> StreamSpec {
    let events = if quick { 300 } else { 2000 };
    StreamSpec::parse(&format!(
        "family=random-dag,seed=11,count=4;events={events},eseed=4,churn=0,rescale=0"
    ))
    .expect("bench stream spec parses")
}

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument `{other}` (expected --quick / --out PATH)");
                exit(2);
            }
        }
    }
    let spec = stream_spec(quick);

    // Timed pass: repair only, no verification overhead in the loop.
    let (batch, events) = gen::stream(&spec).expect("bench stream generates");
    let mut state = SessionState::new(batch);
    let mut latencies = Vec::with_capacity(events.len());
    let sustained = Instant::now();
    for (index, event) in events.iter().enumerate() {
        let start = Instant::now();
        let record = state.apply(index, event);
        latencies.push(start.elapsed().as_secs_f64());
        assert!(record.outcome.is_ok(), "budget walk stays feasible: {record:?}");
    }
    let total_s = sustained.elapsed().as_secs_f64();
    let events_per_sec = events.len() as f64 / total_s;

    latencies.sort_by(f64::total_cmp);
    let p50 = latencies[latencies.len() / 2];
    let p99 = latencies[(latencies.len() * 99 / 100).min(latencies.len() - 1)];

    // Verification pass (untimed): identity + touched-nodes economy.
    let verified = run_stream_verified(&spec).expect("verification pass runs");
    assert!(
        verified.cold_identical,
        "{} repaired schedules diverged from cold recomputes",
        verified.mismatches
    );
    assert!(
        verified.median_touched_ratio < 0.3,
        "median touched-nodes ratio {} breaks the < 0.3 economy claim",
        verified.median_touched_ratio
    );
    let summary = verified.report.summary;

    let json = format!(
        "{{\n  \"bench\": \"online\",\n  \"schema\": 1,\n  \"mode\": \"{}\",\n  \
         \"stream\": \"{}\",\n  \"events\": {},\n  \"events_per_sec\": {:.0},\n  \
         \"repair_p50_us\": {:.2},\n  \"repair_p99_us\": {:.2},\n  \
         \"median_touched_ratio\": {:.4},\n  \"mean_touched_ratio\": {:.4},\n  \
         \"zero_work_events\": {},\n  \"full_recomputes\": {},\n  \
         \"nodes_touched\": {},\n  \"identity\": true\n}}\n",
        if quick { "quick" } else { "full" },
        spec.spec_string(),
        events.len(),
        events_per_sec,
        p50 * 1e6,
        p99 * 1e6,
        verified.median_touched_ratio,
        verified.mean_touched_ratio,
        summary.zero_work_events,
        summary.full_recomputes,
        summary.nodes_touched,
    );

    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            }
            eprintln!(
                "wrote {path}: {events_per_sec:.0} events/s, repair p50 {:.2} us, \
                 median touched ratio {:.4}",
                p50 * 1e6,
                verified.median_touched_ratio
            );
        }
        None => print!("{json}"),
    }
}
