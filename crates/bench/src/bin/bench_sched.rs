//! Emits `BENCH_sched.json`: the scheduling-kernel speedup trajectory.
//!
//! Times the incremental force-directed kernel (`sched::force`) against the
//! retained naive reference (`sched::naive`) on the paper circuits and on
//! generated circuits of increasing size, and prints a JSON document with
//! per-case wall times and speedups plus the headline number — the speedup
//! on the largest generated random-dag case.  Future PRs append their own
//! measurement of the same cases to track the kernel's trajectory.
//!
//! ```text
//! cargo run --release -p bench --bin bench_sched [-- --quick] [--out PATH]
//! ```
//!
//! * `--quick` — fewer repetitions (CI smoke mode),
//! * `--out PATH` — write the JSON to a file instead of stdout.
//!
//! Every case asserts schedule equality between the two kernels before
//! timing them.

use std::fmt::Write as _;
use std::process::exit;
use std::time::Instant;

use cdfg::Cdfg;
use gen::{Family, GenSpec};
use sched::{force, naive};

struct Case {
    name: String,
    kind: &'static str,
    cdfg: Cdfg,
    latency: u32,
}

fn cases() -> Vec<Case> {
    let mut cases = Vec::new();
    for bench in circuits::all_benchmarks() {
        let latency = *bench.control_steps.last().expect("budgets");
        cases.push(Case { name: bench.name.clone(), kind: "paper", cdfg: bench.cdfg, latency });
    }
    let mut specs =
        vec![GenSpec::new(Family::MuxTree, 11, 1), GenSpec::new(Family::DspChain, 11, 1)];
    for (width, depth) in [(6, 8), (12, 16), (16, 24)] {
        let mut spec = GenSpec::new(Family::RandomDag, 11, 1);
        spec.width = width;
        spec.depth = depth;
        specs.push(spec);
    }
    for spec in specs {
        let bench = gen::generate_one(&spec, 0).expect("valid spec");
        let latency = *bench.control_steps.last().expect("budgets");
        cases.push(Case { name: bench.name, kind: "generated", cdfg: bench.cdfg, latency });
    }
    cases
}

/// Best-of-`reps` wall time of `f`, in seconds.
fn time_best<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let mut quick = false;
    let mut out: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => {
                out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--out needs a path");
                    exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument `{other}` (expected --quick / --out PATH)");
                exit(2);
            }
        }
    }
    let reps = if quick { 3 } else { 15 };

    let mut rows = String::new();
    let mut largest: Option<(String, f64)> = None;
    for case in cases() {
        let Case { name, kind, cdfg, latency } = case;
        let fast = force::schedule(&cdfg, latency).expect("feasible");
        let slow = naive::schedule(&cdfg, latency).expect("feasible");
        assert_eq!(fast, slow, "kernels diverged on {name}");

        let force_s = time_best(reps, || {
            let _ = force::schedule(&cdfg, latency).expect("feasible");
        });
        let naive_s = time_best(reps, || {
            let _ = naive::schedule(&cdfg, latency).expect("feasible");
        });
        let speedup = naive_s / force_s.max(1e-12);

        if !rows.is_empty() {
            rows.push_str(",\n");
        }
        write!(
            rows,
            "    {{\"name\": \"{name}\", \"kind\": \"{kind}\", \"nodes\": {}, \
             \"latency\": {latency}, \"naive_us\": {:.1}, \"force_us\": {:.1}, \
             \"speedup\": {:.2}}}",
            cdfg.node_count(),
            naive_s * 1e6,
            force_s * 1e6,
            speedup,
        )
        .expect("string write");
        // The headline case: every generated circuit is larger than the
        // previous one, so the last generated row is the largest family.
        if kind == "generated" {
            largest = Some((name, speedup));
        }
    }

    let (largest_name, largest_speedup) = largest.expect("generated cases exist");
    let json = format!(
        "{{\n  \"bench\": \"sched_kernel\",\n  \"schema\": 1,\n  \"mode\": \"{}\",\n  \
         \"reps\": {reps},\n  \"cases\": [\n{rows}\n  ],\n  \"largest_generated\": \
         {{\"name\": \"{largest_name}\", \"speedup\": {largest_speedup:.2}}}\n}}\n",
        if quick { "quick" } else { "full" },
    );

    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("cannot write {path}: {e}");
                exit(1);
            }
            eprintln!(
                "wrote {path}: largest generated case {largest_name} at {largest_speedup:.2}x"
            );
        }
        None => print!("{json}"),
    }
}
