//! Slack distribution for fine-grained DVS: picking a discrete slow-down
//! level per operation under a latency budget.
//!
//! The multi-objective DVS literature assigns each operator its own supply
//! voltage from a small discrete set; a lower voltage makes the operation
//! cheaper but slower.  At the scheduling layer that is a *duration*
//! choice: every functional operation picks a [`SlackLevel`] — a number of
//! control steps it occupies and the energy factor it pays — and the
//! duration-weighted critical path of the graph must still fit the latency
//! budget.  [`distribute_slack`] is the deterministic greedy kernel that
//! makes those choices, and `exact_min_energy` (compiled under
//! `cfg(any(test, feature = "reference"))`, like `crate::naive`) is the
//! exhaustive branch-and-bound reference that pins the greedy kernel's
//! optimality gap on small circuits.
//!
//! # The model
//!
//! * level 0 is nominal: one control step, full energy.  Deeper levels take
//!   strictly more steps for a strictly lower (or equal) energy factor.
//! * a level assignment is *feasible* when the longest
//!   duration-weighted path over functional precedence (data **and**
//!   control edges) fits the latency — exactly the slack the shut-down
//!   scheduling of the paper leaves behind.
//! * the energy of an assignment is `Σ weight(op) · factor(level(op))`,
//!   with caller-provided per-node weights (typically the paper's power
//!   weight times the op's execution probability).
//!
//! # Determinism
//!
//! The greedy kernel promotes one operation at a time: the candidate with
//! the strictly largest energy gain wins, ties broken by ascending node
//! id.  All comparisons use [`f64::total_cmp`], so the assignment — and
//! every report built on it — is identical across runs, machines and
//! thread counts.

use cdfg::{Cdfg, NodeId};

use crate::error::ScheduleError;

/// One discrete slow-down level: the control steps an operation occupies
/// and the relative energy it pays there.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SlackLevel {
    /// Control steps an operation at this level occupies (level 0 must be
    /// a single step — the nominal duration every scheduler assumes).
    pub delay_steps: u32,
    /// Energy factor relative to nominal (level 0 must be 1.0; deeper
    /// levels are cheaper).
    pub energy_factor: f64,
}

/// Validates a level table: non-empty, nominal first, strictly slower and
/// never more expensive as the index grows.
fn validate_levels(levels: &[SlackLevel]) {
    assert!(!levels.is_empty(), "level table must not be empty");
    assert_eq!(levels[0].delay_steps, 1, "level 0 must be the nominal single-step duration");
    for pair in levels.windows(2) {
        assert!(
            pair[0].delay_steps < pair[1].delay_steps,
            "level delays must be strictly increasing"
        );
        assert!(
            pair[1].energy_factor.total_cmp(&pair[0].energy_factor).is_le(),
            "level energy factors must be non-increasing"
        );
    }
}

/// Reusable buffers for [`distribute_slack`], in the style of
/// [`crate::force::Workspace`]: create once, pass to every call, and the
/// per-call cost is a handful of `clear`/`resize` operations instead of
/// fresh allocations — the shape the explorer's warm budget walk needs.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// Current duration (steps) of every slot; 0 for structural nodes.
    dur: Vec<u32>,
    /// Earliest start step under the current durations.
    est: Vec<u32>,
    /// Latest start step under the current durations.
    lst: Vec<u32>,
    /// Current level index of every slot.
    level: Vec<u32>,
}

impl Workspace {
    /// An empty workspace; buffers grow to the graph's size on first use.
    pub fn new() -> Self {
        Workspace::default()
    }
}

/// A per-operation slow-down level assignment produced by
/// [`distribute_slack`] (or the exact reference).
#[derive(Debug, Clone, PartialEq)]
pub struct LevelAssignment {
    level: Vec<u32>,
    energy: f64,
    promotions: u32,
}

impl LevelAssignment {
    /// The level index assigned to `node` (0 — nominal — for structural
    /// nodes, which are never scheduled).
    ///
    /// # Panics
    ///
    /// Panics if `node`'s index lies outside the analysed CDFG's range.
    pub fn level_of(&self, node: NodeId) -> u32 {
        self.level[node.index()]
    }

    /// The dense per-slot level indices (structural slots hold 0).
    pub fn levels(&self) -> &[u32] {
        &self.level
    }

    /// Weighted energy of the assignment:
    /// `Σ weight(op) · factor(level(op))`, summed in ascending node order.
    pub fn energy(&self) -> f64 {
        self.energy
    }

    /// Number of promotions the greedy kernel accepted (0 for the exact
    /// reference's output).
    pub fn promotions(&self) -> u32 {
        self.promotions
    }
}

/// Recomputes earliest/latest start steps for the current durations.
/// Requires the state to be feasible (callers establish this at nominal
/// durations and every promotion preserves it).
fn recompute_timing(cdfg: &Cdfg, latency: u32, ws: &mut Workspace) {
    let slices = cdfg.slices();
    for &n in slices.topo() {
        if !slices.is_functional(n) {
            continue;
        }
        let mut earliest = 1;
        for &p in slices.preds(n) {
            if slices.is_functional(p) {
                earliest = earliest.max(ws.est[p.index()] + ws.dur[p.index()]);
            }
        }
        ws.est[n.index()] = earliest;
    }
    for &n in slices.topo().iter().rev() {
        if !slices.is_functional(n) {
            continue;
        }
        let mut latest_finish = latency;
        for &s in slices.succs(n) {
            if slices.is_functional(s) {
                latest_finish = latest_finish.min(ws.lst[s.index()].saturating_sub(1));
            }
        }
        debug_assert!(latest_finish + 1 >= ws.dur[n.index()], "feasible state");
        ws.lst[n.index()] = latest_finish + 1 - ws.dur[n.index()];
    }
}

/// Distributes the latency budget's slack over the functional operations
/// of `cdfg` as discrete slow-down levels, greedily minimising
/// `Σ node_weight(op) · factor(level(op))`.
///
/// `levels` is the discrete level table (see [`SlackLevel`]; level 0 must
/// be the nominal single-step level).  `node_weight` prices each
/// operation — the explorer passes the paper's power weight times the
/// op's execution probability.  Data *and* control edges constrain the
/// duration-weighted critical path, so the kernel composes with the
/// paper's shut-down scheduling: it runs on the constrained CDFG a
/// `pmsched`-style power-management pass produces.
///
/// The kernel repeatedly promotes the operation with the strictly largest
/// energy gain whose slack covers the extra steps (ties: lowest node id),
/// recomputing the timing after every accepted promotion.  Promotion
/// within slack always preserves feasibility, so the result is feasible
/// by construction; the exact reference (`exact_min_energy`) pins how
/// far from optimal the greedy choices land.
///
/// # Errors
///
/// Returns [`ScheduleError::LatencyTooSmall`] when even nominal durations
/// do not fit the budget.
///
/// # Panics
///
/// Panics if `levels` is empty, does not start with a single-step nominal
/// level, or is not strictly slower / non-increasingly priced.
pub fn distribute_slack(
    cdfg: &Cdfg,
    latency: u32,
    levels: &[SlackLevel],
    node_weight: &dyn Fn(NodeId) -> f64,
    ws: &mut Workspace,
) -> Result<LevelAssignment, ScheduleError> {
    validate_levels(levels);
    let slices = cdfg.slices();
    let slots = slices.slot_count();

    ws.dur.clear();
    ws.dur.resize(slots, 0);
    ws.est.clear();
    ws.est.resize(slots, 0);
    ws.lst.clear();
    ws.lst.resize(slots, 0);
    ws.level.clear();
    ws.level.resize(slots, 0);
    for &n in slices.functional() {
        ws.dur[n.index()] = levels[0].delay_steps;
    }

    // Nominal feasibility: the unit-duration critical path must fit.
    recompute_timing(cdfg, latency.max(1), ws);
    let critical_path = slices.functional().iter().map(|&n| ws.est[n.index()]).max().unwrap_or(0);
    if critical_path > latency {
        return Err(ScheduleError::LatencyTooSmall { requested: latency, critical_path });
    }
    recompute_timing(cdfg, latency, ws);

    let mut promotions = 0u32;
    loop {
        // The strictly best promotable candidate; ascending iteration plus
        // a strictly-greater test makes the lowest node id win ties.
        let mut best: Option<(f64, NodeId)> = None;
        for &n in slices.functional() {
            let level = ws.level[n.index()] as usize;
            let Some(next) = levels.get(level + 1) else { continue };
            let delta = next.delay_steps - levels[level].delay_steps;
            if ws.lst[n.index()] - ws.est[n.index()] < delta {
                continue;
            }
            let gain = node_weight(n) * (levels[level].energy_factor - next.energy_factor);
            if gain <= 0.0 || gain.is_nan() {
                continue; // weightless (or degenerate) ops never consume shared slack
            }
            let better = match best {
                None => true,
                Some((bg, _)) => gain.total_cmp(&bg).is_gt(),
            };
            if better {
                best = Some((gain, n));
            }
        }
        let Some((_, node)) = best else { break };
        let next = ws.level[node.index()] + 1;
        ws.level[node.index()] = next;
        ws.dur[node.index()] = levels[next as usize].delay_steps;
        promotions += 1;
        recompute_timing(cdfg, latency, ws);
    }

    let mut energy = 0.0;
    for &n in slices.functional() {
        energy += node_weight(n) * levels[ws.level[n.index()] as usize].energy_factor;
    }
    Ok(LevelAssignment { level: ws.level.clone(), energy, promotions })
}

/// Exhaustive branch-and-bound reference for [`distribute_slack`]: the
/// exact minimum-energy level assignment under the same feasibility
/// notion.  Compiled only for tests and under the `reference` feature, in
/// the `crate::naive` tradition — it enumerates the level space with
/// feasibility and lower-bound pruning, so it is only meant for *small*
/// circuits (the gap property tests sample tens of functional nodes at
/// most).
///
/// Determinism: levels are tried in ascending index order per node and a
/// candidate replaces the incumbent only when strictly cheaper under
/// [`f64::total_cmp`], so the returned assignment is the lexicographically
/// smallest among the optima.
///
/// The greedy kernel's output is feasible for the same space, so
/// `distribute_slack(..).energy() >= exact_min_energy(..).energy()` always
/// — the invariant the gap tests pin.
///
/// # Errors
///
/// Returns [`ScheduleError::LatencyTooSmall`] when even nominal durations
/// do not fit the budget.
///
/// # Panics
///
/// Panics on invalid level tables (see [`distribute_slack`]).
#[cfg(any(test, feature = "reference"))]
pub fn exact_min_energy(
    cdfg: &Cdfg,
    latency: u32,
    levels: &[SlackLevel],
    node_weight: &dyn Fn(NodeId) -> f64,
) -> Result<LevelAssignment, ScheduleError> {
    validate_levels(levels);
    let slices = cdfg.slices();
    let slots = slices.slot_count();
    let nodes: Vec<NodeId> = slices.functional().to_vec();
    let weights: Vec<f64> = nodes.iter().map(|&n| node_weight(n)).collect();
    let min_factor = levels.last().expect("non-empty").energy_factor;

    // Duration-weighted critical path with unchosen nodes at nominal —
    // an exact pruning test, since durations only ever grow with depth.
    let critical_path = |dur: &[u32]| -> u32 {
        let mut est = vec![0u32; slots];
        let mut cp = 0;
        for &n in slices.topo() {
            if !slices.is_functional(n) {
                continue;
            }
            let mut earliest = 1;
            for &p in slices.preds(n) {
                if slices.is_functional(p) {
                    earliest = earliest.max(est[p.index()] + dur[p.index()]);
                }
            }
            est[n.index()] = earliest;
            cp = cp.max(earliest + dur[n.index()] - 1);
        }
        cp
    };

    let mut dur = vec![0u32; slots];
    for &n in &nodes {
        dur[n.index()] = levels[0].delay_steps;
    }
    if critical_path(&dur) > latency {
        return Err(ScheduleError::LatencyTooSmall {
            requested: latency,
            critical_path: critical_path(&dur),
        });
    }

    // Suffix sums of the cheapest possible remaining energy, for the
    // admissible lower bound.
    let mut suffix_min = vec![0.0f64; nodes.len() + 1];
    for i in (0..nodes.len()).rev() {
        suffix_min[i] = suffix_min[i + 1] + weights[i] * min_factor;
    }

    struct Search<'a, F: Fn(&[u32]) -> u32> {
        nodes: &'a [NodeId],
        weights: &'a [f64],
        levels: &'a [SlackLevel],
        latency: u32,
        suffix_min: &'a [f64],
        critical_path: F,
        choice: Vec<u32>,
        best_energy: f64,
        best_choice: Vec<u32>,
    }

    impl<F: Fn(&[u32]) -> u32> Search<'_, F> {
        fn descend(&mut self, i: usize, dur: &mut [u32], partial: f64) {
            if i == self.nodes.len() {
                if partial.total_cmp(&self.best_energy).is_lt() {
                    self.best_energy = partial;
                    self.best_choice.clone_from(&self.choice);
                }
                return;
            }
            let slot = self.nodes[i].index();
            for (l, level) in self.levels.iter().enumerate() {
                let here = partial + self.weights[i] * level.energy_factor;
                if (here + self.suffix_min[i + 1]).total_cmp(&self.best_energy).is_ge() {
                    continue;
                }
                dur[slot] = level.delay_steps;
                if (self.critical_path)(dur) <= self.latency {
                    self.choice[i] = l as u32;
                    self.descend(i + 1, dur, here);
                }
            }
            dur[slot] = self.levels[0].delay_steps;
            self.choice[i] = 0;
        }
    }

    let mut search = Search {
        nodes: &nodes,
        weights: &weights,
        levels,
        latency,
        suffix_min: &suffix_min,
        critical_path,
        choice: vec![0; nodes.len()],
        best_energy: f64::INFINITY,
        best_choice: vec![0; nodes.len()],
    };
    search.descend(0, &mut dur, 0.0);

    let mut level = vec![0u32; slots];
    let mut energy = 0.0;
    for (i, &n) in nodes.iter().enumerate() {
        level[n.index()] = search.best_choice[i];
        energy += weights[i] * levels[search.best_choice[i] as usize].energy_factor;
    }
    Ok(LevelAssignment { level, energy, promotions: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::Op;

    /// The classic three-level square-law table used throughout the tests:
    /// nominal, half-speed at ~0.44×, quarter-speed at ~0.23×.
    fn three_levels() -> Vec<SlackLevel> {
        vec![
            SlackLevel { delay_steps: 1, energy_factor: 1.0 },
            SlackLevel { delay_steps: 2, energy_factor: 0.4356 },
            SlackLevel { delay_steps: 4, energy_factor: 0.2304 },
        ]
    }

    fn abs_diff() -> Cdfg {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        g
    }

    fn chain(len: usize) -> Cdfg {
        let mut g = Cdfg::new("chain");
        let mut prev = g.add_input("x");
        for _ in 0..len {
            prev = g.add_op(Op::Neg, &[prev]).unwrap();
        }
        g.add_output("o", prev).unwrap();
        g
    }

    #[test]
    fn no_slack_means_everything_stays_nominal() {
        let g = abs_diff();
        let mut ws = Workspace::new();
        let a = distribute_slack(&g, 2, &three_levels(), &|_| 1.0, &mut ws).unwrap();
        assert!(a.levels().iter().all(|&l| l == 0), "critical-path budget leaves no slack");
        assert_eq!(a.energy(), 4.0, "four ops at nominal");
        assert_eq!(a.promotions(), 0);
    }

    #[test]
    fn slack_is_spent_and_energy_drops_monotonically_with_the_budget() {
        let g = abs_diff();
        let mut ws = Workspace::new();
        let mut last = f64::INFINITY;
        for latency in 2..10 {
            let a = distribute_slack(&g, latency, &three_levels(), &|_| 1.0, &mut ws).unwrap();
            assert!(a.energy() <= last, "latency {latency}: {} > {last}", a.energy());
            last = a.energy();
        }
        assert!(last < 4.0 * 0.25, "a wide budget drives everything to deep levels");
    }

    #[test]
    fn promotions_respect_the_duration_weighted_critical_path() {
        // A 3-op chain at latency 4 has exactly one spare step: only one
        // op can move to the 2-step level, nothing can reach the 4-step one.
        let g = chain(3);
        let mut ws = Workspace::new();
        let a = distribute_slack(&g, 4, &three_levels(), &|_| 1.0, &mut ws).unwrap();
        let chain_steps: u32 = g
            .functional_nodes()
            .iter()
            .map(|&n| three_levels()[a.level_of(n) as usize].delay_steps)
            .sum();
        assert!(chain_steps <= 4, "duration-weighted chain must fit the budget");
        assert_eq!(a.promotions(), 1);
        assert_eq!(a.levels().iter().filter(|&&l| l == 1).count(), 1);
    }

    #[test]
    fn weights_steer_the_greedy_choice_deterministically() {
        // Same chain, but the middle op is 10× heavier: the single spare
        // step must go to it.
        let g = chain(3);
        let heavy: NodeId = g.functional_nodes()[1];
        let mut ws = Workspace::new();
        let weight = move |n: NodeId| if n == heavy { 10.0 } else { 1.0 };
        let a = distribute_slack(&g, 4, &three_levels(), &weight, &mut ws).unwrap();
        assert_eq!(a.level_of(heavy), 1, "the heavy op takes the spare step");
        assert_eq!(a.promotions(), 1);
    }

    #[test]
    fn zero_weight_ops_never_consume_slack() {
        let g = chain(2);
        let mut ws = Workspace::new();
        let a = distribute_slack(&g, 6, &three_levels(), &|_| 0.0, &mut ws).unwrap();
        assert!(a.levels().iter().all(|&l| l == 0));
        assert_eq!(a.energy(), 0.0);
    }

    #[test]
    fn sub_critical_budgets_surface_the_typed_error() {
        let g = chain(3);
        let mut ws = Workspace::new();
        let err = distribute_slack(&g, 2, &three_levels(), &|_| 1.0, &mut ws).unwrap_err();
        assert!(
            matches!(err, ScheduleError::LatencyTooSmall { requested: 2, critical_path: 3 }),
            "{err}"
        );
        let err = exact_min_energy(&g, 2, &three_levels(), &|_| 1.0).unwrap_err();
        assert!(matches!(err, ScheduleError::LatencyTooSmall { .. }));
    }

    #[test]
    fn workspace_reuse_matches_fresh_buffers() {
        let g = abs_diff();
        let mut warm = Workspace::new();
        for latency in 2..8 {
            let reused =
                distribute_slack(&g, latency, &three_levels(), &|_| 1.0, &mut warm).unwrap();
            let fresh =
                distribute_slack(&g, latency, &three_levels(), &|_| 1.0, &mut Workspace::new())
                    .unwrap();
            assert_eq!(reused, fresh, "latency {latency}");
        }
    }

    #[test]
    fn exact_reference_lower_bounds_the_greedy_kernel() {
        let levels = three_levels();
        for (g, budgets) in [(abs_diff(), 2..9u32), (chain(4), 4..11u32)] {
            let mut ws = Workspace::new();
            for latency in budgets {
                let heur = distribute_slack(&g, latency, &levels, &|_| 1.0, &mut ws).unwrap();
                let exact = exact_min_energy(&g, latency, &levels, &|_| 1.0).unwrap();
                // 1-ulp tolerance: equal-energy assignments can round
                // differently because f64 addition is not associative.
                assert!(
                    heur.energy() >= exact.energy() - 1e-9 * exact.energy().abs().max(1.0),
                    "{} @ {latency}: greedy {} below exact {}",
                    g.name(),
                    heur.energy(),
                    exact.energy()
                );
            }
        }
    }

    #[test]
    fn exact_reference_is_tight_on_a_chain() {
        // On a pure chain the greedy kernel is optimal: slack allocation is
        // a one-dimensional knapsack both solve exactly.
        let g = chain(3);
        let mut ws = Workspace::new();
        for latency in 3..12 {
            let heur = distribute_slack(&g, latency, &three_levels(), &|_| 1.0, &mut ws).unwrap();
            let exact = exact_min_energy(&g, latency, &three_levels(), &|_| 1.0).unwrap();
            assert!(
                (heur.energy() - exact.energy()).abs() <= 1e-12,
                "latency {latency}: greedy {} vs exact {}",
                heur.energy(),
                exact.energy()
            );
        }
    }

    #[test]
    #[should_panic(expected = "level 0 must be the nominal single-step duration")]
    fn invalid_level_tables_are_rejected() {
        let g = chain(1);
        let bad = vec![SlackLevel { delay_steps: 2, energy_factor: 1.0 }];
        let _ = distribute_slack(&g, 4, &bad, &|_| 1.0, &mut Workspace::new());
    }
}
