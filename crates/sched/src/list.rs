//! Resource-constrained list scheduling.
//!
//! The classic priority-list algorithm: operations become *ready* once all
//! their functional predecessors have completed; at each control step the
//! ready operations are placed in priority order (most urgent first, measured
//! by ALAP) until the per-class execution-unit limits are exhausted, then the
//! step advances.
//!
//! The inner loop runs on the CDFG's cached slice adjacency and dense,
//! slot-indexed arrays (pending-predecessor counts, step assignments), so a
//! scheduling run performs no per-query allocation; only the per-step ready
//! list is (re)used across steps.

use cdfg::{Cdfg, NodeId, OpClass};

use crate::error::ScheduleError;
use crate::resource::ResourceConstraint;
use crate::schedule::Schedule;
use crate::timing::Timing;

/// Schedules `cdfg` under `constraint`, using as many control steps as
/// needed.  `priority_latency` is the latency used to compute ALAP-based
/// priorities; it must be at least the critical-path length (a reasonable
/// choice is the critical path itself or the target latency of the design).
///
/// The returned schedule's `num_steps` is the number of steps actually used.
///
/// # Errors
///
/// * [`ScheduleError::InsufficientResources`] if a class with a zero limit
///   is needed by the design (the schedule could never finish),
/// * [`ScheduleError::LatencyTooSmall`] for a zero `priority_latency`,
/// * [`ScheduleError::InfeasiblePropagation`] when `priority_latency` is
///   below the critical path.  The ALAP pass then drives some node's ALAP
///   below its ASAP (`Timing` floors the successor bound with a saturating
///   subtraction), and before PR 5 the scheduler silently consumed those
///   clamped values as priorities — the same class of masked infeasibility
///   as the old step-1 clamp in `sched::force`'s backward pass.
pub fn schedule(
    cdfg: &Cdfg,
    constraint: &ResourceConstraint,
    priority_latency: u32,
) -> Result<Schedule, ScheduleError> {
    // A class limited to zero units that the design needs can never finish.
    if let ResourceConstraint::Limited(set) = constraint {
        let counts = cdfg.op_counts();
        for (class, needed) in counts.iter() {
            if needed > 0 && set.count(class) == 0 {
                return Err(ScheduleError::InsufficientResources { latency: 0 });
            }
        }
    }

    // Surface degenerate priority latencies instead of flooring them: the
    // old `priority_latency.max(1)` clamp quietly scheduled against a
    // meaningless one-step ALAP analysis.
    if priority_latency == 0 {
        return Err(ScheduleError::LatencyTooSmall {
            requested: 0,
            critical_path: cdfg.critical_path_length(),
        });
    }
    let timing = Timing::compute(cdfg, priority_latency);
    if let Some(&node) = timing.infeasible_nodes().first() {
        // ASAP > ALAP for some node: the clamped ALAPs are not priorities,
        // they are an infeasibility report.
        return Err(ScheduleError::InfeasiblePropagation { node });
    }
    let slices = cdfg.slices();
    let functional = slices.functional();
    let total = functional.len();
    let slots = slices.slot_count();

    // Remaining unscheduled functional predecessors per node, slot-indexed.
    let mut pending_preds: Vec<u32> = vec![0; slots];
    for &n in functional {
        pending_preds[n.index()] =
            slices.preds(n).iter().filter(|&&p| slices.is_functional(p)).count() as u32;
    }

    // Assigned step per node; 0 means not scheduled yet.
    let mut steps: Vec<u32> = vec![0; slots];
    let mut scheduled = 0usize;
    let mut step = 0u32;
    // Hard cap to guarantee termination even on adversarial inputs: every
    // step schedules at least one ready op when any unit is available, so
    // `total + latency` steps is far more than enough.
    let max_steps = (total as u32 + priority_latency + 2).max(4) * 2;

    let mut ready: Vec<NodeId> = Vec::with_capacity(total);
    let mut placed_this_step: Vec<NodeId> = Vec::with_capacity(total);
    while scheduled < total {
        step += 1;
        if step > max_steps {
            return Err(ScheduleError::InsufficientResources { latency: priority_latency });
        }

        // Ready operations: all functional predecessors scheduled in a
        // *previous* step.
        ready.clear();
        ready.extend(
            functional
                .iter()
                .copied()
                .filter(|n| steps[n.index()] == 0 && pending_preds[n.index()] == 0),
        );
        // Priority: smaller ALAP (more urgent) first, then smaller mobility,
        // then node id for determinism.  The infeasibility check above
        // guarantees mobility is defined for every functional node.
        ready.sort_by_key(|&n| (timing.alap(n), timing.mobility(n).unwrap_or(0), n));

        let mut used = [0usize; OpClass::FUNCTIONAL.len()];
        placed_this_step.clear();
        for &n in &ready {
            let class = cdfg.node(n).expect("live node").op.class();
            let slot = class.dense_index();
            if constraint.allows(class, used[slot] + 1) {
                used[slot] += 1;
                steps[n.index()] = step;
                scheduled += 1;
                placed_this_step.push(n);
            }
        }

        // Only after the step closes do successors of the placed operations
        // become ready (results are available at the step boundary).
        for &n in &placed_this_step {
            for &s in slices.succs(n) {
                if slices.is_functional(s) {
                    pending_preds[s.index()] = pending_preds[s.index()].saturating_sub(1);
                }
            }
        }
    }

    let num_steps = functional.iter().map(|&n| steps[n.index()]).max().unwrap_or(0).max(1);
    let mut schedule = Schedule::new(num_steps);
    for &n in functional {
        schedule.assign(n, steps[n.index()]);
    }
    Ok(schedule)
}

/// Schedules `cdfg` under `constraint` and fails if more than `latency`
/// control steps are needed.
///
/// # Errors
///
/// Returns [`ScheduleError::LatencyExceeded`] when the constrained schedule
/// does not fit, or any error from [`schedule`].
pub fn schedule_with_latency(
    cdfg: &Cdfg,
    constraint: &ResourceConstraint,
    latency: u32,
) -> Result<Schedule, ScheduleError> {
    let s = schedule(cdfg, constraint, latency)?;
    if s.last_used_step() > latency {
        return Err(ScheduleError::LatencyExceeded { allowed: latency, used: s.last_used_step() });
    }
    // Re-span the schedule over the full latency so idle tail steps are kept
    // (the controller still has `latency` states).
    let mut spanned = Schedule::new(latency);
    for (n, step) in s.iter() {
        spanned.assign(n, step);
    }
    Ok(spanned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::{Op, OpClass};

    fn abs_diff() -> (Cdfg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        (g, gt, amb, bma, m)
    }

    #[test]
    fn unconstrained_schedule_is_asap_like() {
        let (g, gt, amb, bma, m) = abs_diff();
        let s = schedule(&g, &ResourceConstraint::Unlimited, 2).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.step_of(gt), Some(1));
        assert_eq!(s.step_of(amb), Some(1));
        assert_eq!(s.step_of(bma), Some(1));
        assert_eq!(s.step_of(m), Some(2));
        assert_eq!(s.num_steps(), 2);
    }

    #[test]
    fn one_subtractor_stretches_to_three_steps() {
        // Figure 2(a) of the paper: with one subtractor the two subtractions
        // are serialised and the design needs three control steps.
        let (g, _gt, amb, bma, m) = abs_diff();
        let constraint =
            ResourceConstraint::limited([(OpClass::Sub, 1), (OpClass::Comp, 1), (OpClass::Mux, 1)]);
        let s = schedule(&g, &constraint, 3).unwrap();
        s.validate_with(&g, &constraint).unwrap();
        assert_eq!(s.num_steps(), 3);
        assert_ne!(s.step_of(amb), s.step_of(bma), "subtractions serialised");
        assert_eq!(s.step_of(m), Some(3));
    }

    #[test]
    fn control_edges_are_respected() {
        let (mut g, gt, amb, bma, m) = abs_diff();
        g.add_control_edge(gt, amb).unwrap();
        g.add_control_edge(gt, bma).unwrap();
        let s = schedule(&g, &ResourceConstraint::Unlimited, 3).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.step_of(gt), Some(1));
        assert_eq!(s.step_of(amb), Some(2));
        assert_eq!(s.step_of(bma), Some(2));
        assert_eq!(s.step_of(m), Some(3));
    }

    #[test]
    fn latency_bound_is_enforced() {
        let (g, ..) = abs_diff();
        let one_of_each =
            ResourceConstraint::limited([(OpClass::Sub, 1), (OpClass::Comp, 1), (OpClass::Mux, 1)]);
        // Needs 3 steps with one subtractor; 2 is not enough.
        let err = schedule_with_latency(&g, &one_of_each, 2).unwrap_err();
        assert!(matches!(err, ScheduleError::LatencyExceeded { allowed: 2, used: 3 }));
        // 4 steps is fine and the schedule is spanned over all 4.
        let s = schedule_with_latency(&g, &one_of_each, 4).unwrap();
        assert_eq!(s.num_steps(), 4);
        assert!(s.last_used_step() <= 4);
    }

    #[test]
    fn zero_unit_constraint_is_rejected() {
        let (g, ..) = abs_diff();
        let no_mux = ResourceConstraint::limited([(OpClass::Sub, 1), (OpClass::Comp, 1)]);
        let err = schedule(&g, &no_mux, 3).unwrap_err();
        assert!(matches!(err, ScheduleError::InsufficientResources { .. }));
    }

    /// A five-deep negation chain, the propagate-regression shape shared
    /// with `force::tests` and `naive::tests`.
    fn neg_chain() -> Cdfg {
        let mut g = Cdfg::new("chain");
        let x = g.add_input("x");
        let mut prev = g.add_op(Op::Neg, &[x]).unwrap();
        for _ in 0..4 {
            prev = g.add_op(Op::Neg, &[prev]).unwrap();
        }
        g.add_output("o", prev).unwrap();
        g
    }

    #[test]
    fn sub_critical_priority_latency_surfaces_instead_of_clamping() {
        // Regression mirroring the force/naive propagate suite: a priority
        // latency below the chain's critical path used to floor the clamped
        // ALAPs into bogus priorities; it must now surface the infeasible
        // node instead.
        let g = neg_chain();
        assert_eq!(g.critical_path_length(), 5);
        let err = schedule(&g, &ResourceConstraint::Unlimited, 3).unwrap_err();
        assert!(matches!(err, ScheduleError::InfeasiblePropagation { .. }), "{err:?}");
        let err = schedule_with_latency(&g, &ResourceConstraint::Unlimited, 4).unwrap_err();
        assert!(matches!(err, ScheduleError::InfeasiblePropagation { .. }), "{err:?}");
        // At the critical path the same chain schedules fine.
        let s = schedule(&g, &ResourceConstraint::Unlimited, 5).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.num_steps(), 5);
    }

    #[test]
    fn zero_priority_latency_is_rejected_not_floored() {
        let g = neg_chain();
        let err = schedule(&g, &ResourceConstraint::Unlimited, 0).unwrap_err();
        assert!(
            matches!(err, ScheduleError::LatencyTooSmall { requested: 0, critical_path: 5 }),
            "{err:?}"
        );
    }

    #[test]
    fn larger_chain_schedules_completely() {
        // A small accumulation chain: ((a+b)+c)+d with one adder.
        let mut g = Cdfg::new("chain");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c = g.add_input("c");
        let d = g.add_input("d");
        let s1 = g.add_op(Op::Add, &[a, b]).unwrap();
        let s2 = g.add_op(Op::Add, &[s1, c]).unwrap();
        let s3 = g.add_op(Op::Add, &[s2, d]).unwrap();
        g.add_output("sum", s3).unwrap();
        let constraint = ResourceConstraint::limited([(OpClass::Add, 1)]);
        let s = schedule(&g, &constraint, 3).unwrap();
        s.validate_with(&g, &constraint).unwrap();
        assert_eq!(s.num_steps(), 3);
    }
}
