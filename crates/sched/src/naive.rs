//! The original, map-based force-directed scheduler, retained as a
//! reference implementation.
//!
//! This is the pedagogical O(n²·L·W) kernel the repo shipped before the
//! incremental rewrite in [`crate::force`]: every iteration rebuilds the
//! whole distribution graph on a `BTreeMap<(OpClass, u32), f64>`, rescans
//! every unfixed (node, step) pair, and runs frame propagation to a
//! whole-graph fixed point over the allocating `Vec`-returning adjacency
//! accessors.  It is compiled only for tests and under the `reference`
//! feature, where it pins the incremental kernel's behaviour: the
//! schedule-identity property tests assert the two produce *equal*
//! schedules (bit-identical step assignments) on every circuit family, and
//! the `sched_kernel` bench measures the speedup against it.
//!
//! The one deliberate divergence from the original code is shared with the
//! incremental kernel: the backward-pass clamp
//! `sf.latest.saturating_sub(1).max(1)` used to floor a successor
//! constraint at step 1, silently masking an infeasible frame instead of
//! surfacing it.  Both implementations now return
//! [`ScheduleError::InfeasiblePropagation`] in that (otherwise unreachable)
//! situation.

use std::collections::BTreeMap;

use cdfg::{Cdfg, NodeId, OpClass};

use crate::error::ScheduleError;
use crate::schedule::Schedule;
use crate::timing::Timing;

/// Mutable time frame `[earliest, latest]` of an operation during
/// force-directed scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frame {
    earliest: u32,
    latest: u32,
}

impl Frame {
    fn width(self) -> u32 {
        self.latest - self.earliest + 1
    }

    fn probability(self, step: u32) -> f64 {
        if step >= self.earliest && step <= self.latest {
            1.0 / f64::from(self.width())
        } else {
            0.0
        }
    }
}

/// Schedules `cdfg` within `latency` control steps, minimising the peak
/// number of simultaneously busy execution units per class.
///
/// Reference implementation: produces schedules equal to
/// [`crate::force::schedule`] (a property the identity tests pin), at the
/// original rebuild-everything cost.
///
/// # Errors
///
/// Returns [`ScheduleError::LatencyTooSmall`] if the latency is below the
/// critical path (taking control edges into account).
pub fn schedule(cdfg: &Cdfg, latency: u32) -> Result<Schedule, ScheduleError> {
    let timing = Timing::compute(cdfg, latency);
    if !timing.is_feasible() {
        return Err(ScheduleError::LatencyTooSmall {
            requested: latency,
            critical_path: timing.min_latency(),
        });
    }

    let functional = cdfg.functional_nodes();
    let mut frames: BTreeMap<NodeId, Frame> = functional
        .iter()
        .map(|&n| (n, Frame { earliest: timing.asap(n), latest: timing.alap(n) }))
        .collect();

    // Nodes with a single-step frame are already fixed.
    let mut fixed: BTreeMap<NodeId, u32> = BTreeMap::new();
    for (&n, frame) in &frames {
        if frame.width() == 1 {
            fixed.insert(n, frame.earliest);
        }
    }

    while fixed.len() < functional.len() {
        // Distribution graphs: expected number of operations of each class in
        // each step, given the current frames.
        let mut dg: BTreeMap<(OpClass, u32), f64> = BTreeMap::new();
        for (&n, frame) in &frames {
            let class = cdfg.node(n).expect("live node").op.class();
            for step in frame.earliest..=frame.latest {
                *dg.entry((class, step)).or_insert(0.0) += frame.probability(step);
            }
        }

        // Pick the unfixed (node, step) pair with the smallest self-force.
        let mut best: Option<(NodeId, u32, f64)> = None;
        for &n in &functional {
            if fixed.contains_key(&n) {
                continue;
            }
            let frame = frames[&n];
            let class = cdfg.node(n).expect("live node").op.class();
            for step in frame.earliest..=frame.latest {
                // Self force = DG(step) * (1 - p) - sum_{other steps} DG * p,
                // the standard Paulin/Knight formulation restricted to the
                // operation's own frame.
                let force = self_force(&dg, class, frame, step);
                let better = match best {
                    None => true,
                    Some((bn, bs, bf)) => {
                        force < bf - 1e-9 || ((force - bf).abs() <= 1e-9 && (n, step) < (bn, bs))
                    }
                };
                if better {
                    best = Some((n, step, force));
                }
            }
        }

        let (node, step, _) = best.expect("at least one unfixed node");
        fixed.insert(node, step);
        frames.insert(node, Frame { earliest: step, latest: step });

        // Propagate the tightened frame through the precedence relation.
        propagate(cdfg, &mut frames, &fixed)?;
    }

    let mut schedule = Schedule::new(latency);
    for (n, s) in fixed {
        schedule.assign(n, s);
    }
    Ok(schedule)
}

/// Self force of placing an operation of `class` with time frame `frame` at
/// `step`: the standard `DG · (new probability − old probability)` sum over
/// the frame.
fn self_force(dg: &BTreeMap<(OpClass, u32), f64>, class: OpClass, frame: Frame, step: u32) -> f64 {
    let p = frame.probability(step);
    let mut force = 0.0;
    for s in frame.earliest..=frame.latest {
        let dg_s = dg.get(&(class, s)).copied().unwrap_or(0.0);
        let delta = if s == step { 1.0 - p } else { -p };
        force += dg_s * delta;
    }
    force
}

/// Restores frame consistency after a node has been fixed: every functional
/// successor must start after its predecessors, every predecessor must
/// finish before its successors.
///
/// # Errors
///
/// Returns [`ScheduleError::InfeasiblePropagation`] if a constraint pushes a
/// frame's earliest step past its latest one — unreachable when fixing
/// happens inside consistent frames, but surfaced rather than clamped away.
fn propagate(
    cdfg: &Cdfg,
    frames: &mut BTreeMap<NodeId, Frame>,
    fixed: &BTreeMap<NodeId, u32>,
) -> Result<(), ScheduleError> {
    // Iterate to a fixed point; graphs are small (tens to hundreds of nodes).
    let order = cdfg.topological_order();
    loop {
        let mut changed = false;
        // Forward: earliest = max(pred earliest + 1).
        for &n in &order {
            if !frames.contains_key(&n) {
                continue;
            }
            let mut earliest = frames[&n].earliest;
            for p in cdfg.predecessors(n) {
                if let Some(pf) = frames.get(&p) {
                    earliest = earliest.max(pf.earliest + 1);
                }
            }
            let frame = frames.get_mut(&n).expect("present");
            if earliest > frame.latest {
                return Err(ScheduleError::InfeasiblePropagation { node: n });
            }
            if fixed.contains_key(&n) {
                continue;
            }
            if earliest > frame.earliest {
                frame.earliest = earliest;
                changed = true;
            }
        }
        // Backward: latest = min(succ latest - 1).
        for &n in order.iter().rev() {
            if !frames.contains_key(&n) {
                continue;
            }
            let mut latest = frames[&n].latest;
            for s in cdfg.successors(n) {
                if let Some(sf) = frames.get(&s) {
                    latest = latest.min(sf.latest.saturating_sub(1));
                }
            }
            let frame = frames.get_mut(&n).expect("present");
            if latest < frame.earliest {
                return Err(ScheduleError::InfeasiblePropagation { node: n });
            }
            if fixed.contains_key(&n) {
                continue;
            }
            if latest < frame.latest {
                frame.latest = latest;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::Op;

    fn abs_diff() -> (Cdfg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        (g, gt, amb, bma, m)
    }

    #[test]
    fn reference_reproduces_figure_2a() {
        let (g, _gt, amb, bma, _m) = abs_diff();
        let s = schedule(&g, 3).unwrap();
        s.validate(&g).unwrap();
        assert_ne!(s.step_of(amb), s.step_of(bma));
        assert_eq!(s.resource_usage(&g).count(OpClass::Sub), 1);
    }

    #[test]
    fn reference_rejects_sub_critical_latency() {
        let (g, ..) = abs_diff();
        let err = schedule(&g, 1).unwrap_err();
        assert!(matches!(err, ScheduleError::LatencyTooSmall { requested: 1, critical_path: 2 }));
    }

    #[test]
    fn propagate_surfaces_infeasibility_instead_of_clamping() {
        // A deep chain a -> b -> c -> d.  Fixing the tail at step 2 leaves
        // only one step for its three predecessors; the old clamp
        // (`saturating_sub(1).max(1)`) would silently floor every latest to
        // step 1 and report success with corrupted frames.
        let mut g = Cdfg::new("chain");
        let x = g.add_input("x");
        let a = g.add_op(Op::Neg, &[x]).unwrap();
        let b = g.add_op(Op::Neg, &[a]).unwrap();
        let c = g.add_op(Op::Neg, &[b]).unwrap();
        let d = g.add_op(Op::Neg, &[c]).unwrap();
        g.add_output("o", d).unwrap();

        let timing = Timing::compute(&g, 6);
        let mut frames: BTreeMap<NodeId, Frame> = g
            .functional_nodes()
            .into_iter()
            .map(|n| (n, Frame { earliest: timing.asap(n), latest: timing.alap(n) }))
            .collect();
        // Simulate a (buggy) late fix: d pinned to step 2, far below the
        // depth of its predecessor chain.
        frames.insert(d, Frame { earliest: 2, latest: 2 });
        let fixed: BTreeMap<NodeId, u32> = [(d, 2)].into_iter().collect();
        let err = propagate(&g, &mut frames, &fixed).unwrap_err();
        assert!(matches!(err, ScheduleError::InfeasiblePropagation { .. }));
    }
}
