//! Error type for the scheduling substrate.

use std::fmt;

use cdfg::NodeId;

/// Errors produced while computing or validating a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ScheduleError {
    /// The requested latency is smaller than the design's critical path, so
    /// no feasible schedule exists.
    LatencyTooSmall {
        /// Latency (control steps) that was requested.
        requested: u32,
        /// Minimum feasible latency (critical path length).
        critical_path: u32,
    },
    /// The resource constraints are too tight to finish within the latency.
    InsufficientResources {
        /// Latency in control steps that could not be met.
        latency: u32,
    },
    /// A node appears in the CDFG but not in the schedule (or vice versa).
    MissingNode(NodeId),
    /// A precedence constraint is violated: `before` is scheduled at or
    /// after `after`.
    PrecedenceViolation {
        /// The producing (earlier) node.
        before: NodeId,
        /// The consuming (later) node.
        after: NodeId,
    },
    /// A node is scheduled outside the range `1..=num_steps`.
    StepOutOfRange {
        /// Offending node.
        node: NodeId,
        /// Step it was assigned.
        step: u32,
        /// Number of control steps in the schedule.
        num_steps: u32,
    },
    /// More operations of one class are scheduled in a step than the
    /// resource constraint allows.
    ResourceOverflow {
        /// Control step where the overflow occurs.
        step: u32,
        /// Label of the over-subscribed operation class.
        class: &'static str,
        /// Number of units allowed.
        limit: usize,
        /// Number of operations scheduled in the step.
        used: usize,
    },
    /// The latency constraint was violated by the produced schedule.
    LatencyExceeded {
        /// Allowed number of control steps.
        allowed: u32,
        /// Number of control steps actually used.
        used: u32,
    },
    /// A scheduling pass found a node whose earliest feasible step lies
    /// past its latest one: frame propagation during force-directed
    /// scheduling collapsed a time frame, or list scheduling was handed a
    /// priority latency whose ALAP analysis is infeasible.  Unreachable
    /// when the initial timing analysis is feasible (fixing a node inside a
    /// consistent frame preserves consistency); surfacing it instead of
    /// clamping keeps a scheduler bug from silently producing an invalid
    /// schedule.
    InfeasiblePropagation {
        /// The node whose time frame collapsed.
        node: NodeId,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::LatencyTooSmall { requested, critical_path } => write!(
                f,
                "requested latency of {requested} control steps is below the critical path of {critical_path}"
            ),
            ScheduleError::InsufficientResources { latency } => {
                write!(f, "resource constraints cannot meet a latency of {latency} control steps")
            }
            ScheduleError::MissingNode(n) => write!(f, "node {n} is missing from the schedule"),
            ScheduleError::PrecedenceViolation { before, after } => {
                write!(f, "precedence violation: {before} must be scheduled strictly before {after}")
            }
            ScheduleError::StepOutOfRange { node, step, num_steps } => {
                write!(f, "node {node} scheduled at step {step}, outside 1..={num_steps}")
            }
            ScheduleError::ResourceOverflow { step, class, limit, used } => {
                write!(f, "step {step} uses {used} {class} units but only {limit} are available")
            }
            ScheduleError::LatencyExceeded { allowed, used } => {
                write!(f, "schedule uses {used} control steps but only {allowed} are allowed")
            }
            ScheduleError::InfeasiblePropagation { node } => {
                write!(
                    f,
                    "frame propagation made node {node} infeasible (earliest step past latest)"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(ScheduleError, &str)> = vec![
            (ScheduleError::LatencyTooSmall { requested: 2, critical_path: 3 }, "critical path"),
            (ScheduleError::InsufficientResources { latency: 4 }, "resource"),
            (ScheduleError::MissingNode(NodeId::new(1)), "missing"),
            (
                ScheduleError::PrecedenceViolation {
                    before: NodeId::new(1),
                    after: NodeId::new(2),
                },
                "precedence",
            ),
            (
                ScheduleError::StepOutOfRange { node: NodeId::new(1), step: 9, num_steps: 4 },
                "outside",
            ),
            (ScheduleError::ResourceOverflow { step: 2, class: "+", limit: 1, used: 2 }, "units"),
            (ScheduleError::LatencyExceeded { allowed: 3, used: 5 }, "control steps"),
            (ScheduleError::InfeasiblePropagation { node: NodeId::new(3) }, "infeasible"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ScheduleError>();
    }
}
