//! The HYPER-style scheduling entry point.
//!
//! The paper hands its constrained CDFG (with control edges inserted) to
//! HYPER's scheduler, "targeting minimum hardware resources for the desired
//! throughput".  [`schedule`] reproduces that contract: given a latency it
//! produces a resource-minimising schedule (force-directed), and given an
//! explicit execution-unit allocation it produces a list schedule that
//! respects it, failing when the throughput cannot be met.

use cdfg::Cdfg;

use crate::error::ScheduleError;
use crate::force;
use crate::list;
use crate::resource::{ResourceConstraint, ResourceSet};
use crate::schedule::Schedule;
use crate::timing::Timing;

/// Options controlling the HYPER-style scheduling run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HyperOptions {
    /// Number of control steps the computation may take (the throughput
    /// constraint).
    pub latency: u32,
    /// Execution-unit constraint.  [`ResourceConstraint::Unlimited`] asks the
    /// scheduler to minimise units by itself.
    pub resources: ResourceConstraint,
}

impl HyperOptions {
    /// Options for a latency-constrained, resource-minimising run.
    pub fn with_latency(latency: u32) -> Self {
        HyperOptions { latency, resources: ResourceConstraint::Unlimited }
    }

    /// Options for a run constrained both in latency and in execution units.
    pub fn with_resources(latency: u32, resources: ResourceConstraint) -> Self {
        HyperOptions { latency, resources }
    }
}

/// Schedules `cdfg` according to `options`.
///
/// # Errors
///
/// * [`ScheduleError::LatencyTooSmall`] when the latency is below the
///   critical path (including control edges),
/// * [`ScheduleError::LatencyExceeded`] / [`ScheduleError::InsufficientResources`]
///   when an explicit resource constraint cannot meet the latency.
pub fn schedule(cdfg: &Cdfg, options: &HyperOptions) -> Result<Schedule, ScheduleError> {
    let mut ws = force::Workspace::new();
    schedule_with_workspace(cdfg, options, &mut ws)
}

/// Like [`schedule`], but warm-started: the timing analysis and the
/// force-directed kernel reuse the buffers of `ws`, so repeated
/// resource-unconstrained calls (the Pareto explorer walking a circuit
/// across its whole budget range) allocate nothing once the buffers have
/// grown.  The [`ResourceConstraint::Limited`] path still runs list
/// scheduling with its own per-call state — only the force-directed side
/// is warm.  Results are bit-identical to [`schedule`] either way.
///
/// # Errors
///
/// Same conditions as [`schedule`].
pub fn schedule_with_workspace(
    cdfg: &Cdfg,
    options: &HyperOptions,
    ws: &mut force::Workspace,
) -> Result<Schedule, ScheduleError> {
    let mut timing = std::mem::take(&mut ws.timing);
    timing.compute_into(cdfg, options.latency);
    let result = schedule_with_timing(cdfg, options, &timing, ws);
    ws.timing = timing;
    result
}

fn schedule_with_timing(
    cdfg: &Cdfg,
    options: &HyperOptions,
    timing: &Timing,
    ws: &mut force::Workspace,
) -> Result<Schedule, ScheduleError> {
    if !timing.is_feasible() {
        return Err(ScheduleError::LatencyTooSmall {
            requested: options.latency,
            critical_path: timing.min_latency(),
        });
    }
    match &options.resources {
        // The timing analysis above is already feasible; hand it to the
        // force-directed kernel instead of recomputing it.
        ResourceConstraint::Unlimited => force::schedule_with_timing_into(cdfg, timing, ws),
        constraint @ ResourceConstraint::Limited(set) => {
            match list::schedule_with_latency(cdfg, constraint, options.latency) {
                Ok(s) => Ok(s),
                Err(err) => {
                    // Greedy list scheduling is not optimal: it can exceed
                    // the latency even when a feasible schedule exists.  Try
                    // the resource-minimising schedule as a fallback — if it
                    // happens to fit inside the allocation, it is a valid
                    // answer.
                    let fallback = force::schedule_with_timing_into(cdfg, timing, ws)?;
                    if fallback.resource_usage(cdfg).fits_within(set) {
                        Ok(fallback)
                    } else {
                        Err(err)
                    }
                }
            }
        }
    }
}

/// The smallest execution-unit allocation that meets `latency`, i.e. the
/// resource usage of the resource-minimising schedule.
///
/// # Errors
///
/// Returns [`ScheduleError::LatencyTooSmall`] when the latency is below the
/// critical path.
pub fn minimum_resources(cdfg: &Cdfg, latency: u32) -> Result<ResourceSet, ScheduleError> {
    let s = schedule(cdfg, &HyperOptions::with_latency(latency))?;
    Ok(s.resource_usage(cdfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::{NodeId, Op, OpClass};

    fn abs_diff() -> (Cdfg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        (g, gt, amb, bma, m)
    }

    #[test]
    fn unlimited_resources_use_force_directed() {
        let (g, ..) = abs_diff();
        let s = schedule(&g, &HyperOptions::with_latency(3)).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.resource_usage(&g).count(OpClass::Sub), 1);
    }

    #[test]
    fn explicit_resources_use_list_scheduling() {
        let (g, ..) = abs_diff();
        let constraint =
            ResourceConstraint::limited([(OpClass::Sub, 2), (OpClass::Comp, 1), (OpClass::Mux, 1)]);
        let s = schedule(&g, &HyperOptions::with_resources(2, constraint.clone())).unwrap();
        s.validate_with(&g, &constraint).unwrap();
        assert_eq!(s.num_steps(), 2);
    }

    #[test]
    fn infeasible_latency_is_reported() {
        let (g, ..) = abs_diff();
        let err = schedule(&g, &HyperOptions::with_latency(1)).unwrap_err();
        assert!(matches!(err, ScheduleError::LatencyTooSmall { .. }));
    }

    #[test]
    fn infeasible_latency_with_control_edges_is_reported() {
        let (mut g, gt, amb, bma, _) = abs_diff();
        g.add_control_edge(gt, amb).unwrap();
        g.add_control_edge(gt, bma).unwrap();
        let err = schedule(&g, &HyperOptions::with_latency(2)).unwrap_err();
        assert!(matches!(err, ScheduleError::LatencyTooSmall { requested: 2, critical_path: 3 }));
    }

    #[test]
    fn sub_critical_latency_with_resources_reports_latency_not_clamped_priorities() {
        // The feasibility gate must fire before list scheduling ever sees
        // the clamped ALAP priorities of an infeasible latency.
        let (mut g, gt, amb, bma, _) = abs_diff();
        g.add_control_edge(gt, amb).unwrap();
        g.add_control_edge(gt, bma).unwrap();
        let constraint =
            ResourceConstraint::limited([(OpClass::Sub, 2), (OpClass::Comp, 1), (OpClass::Mux, 1)]);
        let err = schedule(&g, &HyperOptions::with_resources(2, constraint)).unwrap_err();
        assert!(matches!(err, ScheduleError::LatencyTooSmall { requested: 2, critical_path: 3 }));
    }

    #[test]
    fn warm_workspace_matches_cold_runs_across_constraints() {
        let (g, ..) = abs_diff();
        let mut ws = crate::force::Workspace::new();
        for latency in 2..6 {
            let options = HyperOptions::with_latency(latency);
            assert_eq!(
                schedule_with_workspace(&g, &options, &mut ws).unwrap(),
                schedule(&g, &options).unwrap(),
                "unlimited, latency {latency}"
            );
        }
        let constraint =
            ResourceConstraint::limited([(OpClass::Sub, 1), (OpClass::Comp, 1), (OpClass::Mux, 1)]);
        for latency in 3..6 {
            let options = HyperOptions::with_resources(latency, constraint.clone());
            assert_eq!(
                schedule_with_workspace(&g, &options, &mut ws).unwrap(),
                schedule(&g, &options).unwrap(),
                "limited, latency {latency}"
            );
        }
    }

    #[test]
    fn minimum_resources_shrink_with_more_steps() {
        let (g, ..) = abs_diff();
        let two_steps = minimum_resources(&g, 2).unwrap();
        let three_steps = minimum_resources(&g, 3).unwrap();
        assert_eq!(two_steps.count(OpClass::Sub), 2);
        assert_eq!(three_steps.count(OpClass::Sub), 1);
        assert!(three_steps.total_units() <= two_steps.total_units());
    }
}
