//! ASAP / ALAP timing analysis and mobility (slack).
//!
//! These are the quantities the power-management algorithm reshapes: steps
//! 4–8 of the paper recompute ASAP values of data-cone nodes and ALAP values
//! of control-cone nodes and declare a multiplexor unmanageable when any node
//! ends up with ASAP > ALAP.
//!
//! Control steps are numbered from 1; structural nodes (inputs, constants,
//! outputs) are not scheduled and carry an ASAP of 0 and an ALAP of
//! `latency + 1` for convenience.
//!
//! # Representation
//!
//! ASAP and ALAP live in two dense `Vec<u32>` indexed by
//! [`NodeId::index`] — not in ordered maps.  The per-mux retiming loop in
//! the core algorithm recomputes timing once per multiplexor, and the
//! schedulers consult it for every node; dense arrays make each lookup one
//! bounds-checked load, and [`Timing::compute_into`] lets callers reuse the
//! two buffers across recomputations instead of reallocating.

use cdfg::{Cdfg, NodeId, Slices};

/// Reusable scratch state for [`Timing::tighten`]: the undo log that lets a
/// failed tightening restore the previous fixed point, and the relaxation
/// worklist.  Create one with `TimingDelta::default()` and reuse it across
/// calls — the buffers grow once and are then recycled.
#[derive(Debug, Clone, Default)]
pub struct TimingDelta {
    asap_log: Vec<(u32, u32)>,
    alap_log: Vec<(u32, u32)>,
    worklist: Vec<NodeId>,
}

/// ASAP and ALAP step assignments for every functional node of a CDFG under
/// a given latency (number of control steps).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Timing {
    latency: u32,
    asap: Vec<u32>,
    alap: Vec<u32>,
}

impl Timing {
    /// An empty analysis holding no nodes; useful as a reusable buffer for
    /// [`Timing::compute_into`].  Querying it panics.
    pub fn empty() -> Self {
        Timing::default()
    }

    /// Computes ASAP and ALAP values for all functional nodes of `cdfg`
    /// assuming `latency` control steps are available.
    ///
    /// Both data and control (precedence) edges constrain the result.  The
    /// computation always succeeds; use [`Timing::is_feasible`] to find out
    /// whether the latency can actually be met.
    ///
    /// # Panics
    ///
    /// Panics if the CDFG is cyclic or `latency` is zero.
    pub fn compute(cdfg: &Cdfg, latency: u32) -> Self {
        let mut timing = Timing::empty();
        timing.compute_into(cdfg, latency);
        timing
    }

    /// Recomputes the analysis in place, reusing the existing buffers.
    ///
    /// Semantically identical to `*self = Timing::compute(cdfg, latency)`
    /// but allocation-free once the buffers have grown to the graph's size —
    /// the shape the core algorithm's per-multiplexor retiming loop needs.
    ///
    /// # Panics
    ///
    /// Panics if the CDFG is cyclic or `latency` is zero.
    pub fn compute_into(&mut self, cdfg: &Cdfg, latency: u32) {
        assert!(latency > 0, "latency must be at least one control step");
        let slices = cdfg.slices();
        let slots = slices.slot_count();

        self.latency = latency;
        self.asap.clear();
        self.asap.resize(slots, 0);
        self.alap.clear();
        self.alap.resize(slots, latency + 1);

        for &n in slices.topo() {
            if !slices.is_functional(n) {
                continue; // structural nodes keep ASAP 0
            }
            let mut earliest = 0;
            for &p in slices.preds(n) {
                earliest = earliest.max(self.asap[p.index()]);
            }
            self.asap[n.index()] = earliest + 1;
        }

        for &n in slices.topo().iter().rev() {
            if !slices.is_functional(n) {
                continue; // structural nodes keep ALAP latency + 1
            }
            let mut latest = latency;
            for &s in slices.succs(n) {
                if slices.is_functional(s) {
                    latest = latest.min(self.alap[s.index()].saturating_sub(1));
                }
            }
            self.alap[n.index()] = latest;
        }
    }

    /// The latency (number of control steps) this analysis was computed for.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Rebuilds the analysis for a new `latency` from latency-independent
    /// invariants of the graph: the ASAP values (which never depend on the
    /// latency) and the sink *heights* `h(n) = alap(n' s latency) − alap(n)`
    /// — the longest functional path from `n` towards the outputs, so that
    /// `alap(n) = latency − h(n)` for every functional node at every
    /// feasible latency.  Structural nodes are identified by `asap == 0`
    /// and keep their `latency + 1` convention.
    ///
    /// This is the closed form of the endpoint re-propagation
    /// [`Timing::tighten`] performs edge by edge: a pure budget change
    /// shifts every ALAP uniformly, so no per-edge relaxation is needed and
    /// the result is bit-identical to [`Timing::compute_into`] over the
    /// same graph.  The caller (the online repair path) is responsible for
    /// only passing latencies at or above the critical path — below it the
    /// subtraction would underflow, and the repair entry point surfaces the
    /// typed infeasibility error before ever calling this.
    pub(crate) fn rebuild_from_heights(&mut self, latency: u32, asap: &[u32], height: &[u32]) {
        assert!(latency > 0, "latency must be at least one control step");
        debug_assert_eq!(asap.len(), height.len());
        self.latency = latency;
        self.asap.clear();
        self.asap.extend_from_slice(asap);
        self.alap.clear();
        self.alap.reserve(asap.len());
        for (&a, &h) in asap.iter().zip(height) {
            self.alap.push(if a == 0 { latency + 1 } else { latency - h });
        }
    }

    /// Incrementally tightens a *feasible fixed-point* analysis with extra
    /// precedence edges that are about to be added to the graph, without
    /// recomputing from scratch.
    ///
    /// `self` must hold the result of [`Timing::compute_into`] for `cdfg` as
    /// it currently is (the edges of `extra` not yet inserted), and that
    /// state must be feasible.  Each `(before, after)` pair of `extra` must
    /// connect functional nodes and must not close a cycle — in particular no
    /// `before` may be reachable from any `after`.  Under those conditions a
    /// seeded worklist relaxation from the edge endpoints converges to
    /// exactly the values a full recomputation over the extended graph would
    /// produce: ASAP increases propagate forward from the destinations, ALAP
    /// decreases propagate backward from the sources, and no other node can
    /// change.
    ///
    /// Returns `true` when the tightened analysis is still feasible; the
    /// buffers then hold the new fixed point.  Returns `false` when some
    /// node's ASAP would exceed its ALAP; the analysis is restored to its
    /// state before the call (the relaxation stops at the first violation —
    /// violations only ever appear at nodes the new edges actually moved).
    ///
    /// `delta` is caller-provided scratch (undo log and worklist) so repeated
    /// calls are allocation-free once its buffers have grown.
    pub fn tighten(
        &mut self,
        cdfg: &Cdfg,
        extra: &[(NodeId, NodeId)],
        delta: &mut TimingDelta,
    ) -> bool {
        let slices = cdfg.slices();
        debug_assert_eq!(self.asap.len(), slices.slot_count(), "analysis matches this graph");
        delta.asap_log.clear();
        delta.alap_log.clear();
        delta.worklist.clear();

        let ok = self.raise_asap(slices, extra, delta) && self.lower_alap(slices, extra, delta);
        if !ok {
            // Replay the undo logs in reverse so a slot recorded twice ends
            // on its original value.
            for &(slot, old) in delta.asap_log.iter().rev() {
                self.asap[slot as usize] = old;
            }
            for &(slot, old) in delta.alap_log.iter().rev() {
                self.alap[slot as usize] = old;
            }
            delta.worklist.clear();
        }
        ok
    }

    /// Forward half of [`Timing::tighten`]: ASAP increases from the new edge
    /// destinations.  Returns `false` at the first node whose raised ASAP
    /// exceeds its (current) ALAP — that violation survives to the final
    /// fixed point because ASAP only rises and ALAP only falls.
    fn raise_asap(
        &mut self,
        slices: &Slices,
        extra: &[(NodeId, NodeId)],
        delta: &mut TimingDelta,
    ) -> bool {
        for &(before, after) in extra {
            let cand = self.asap[before.index()] + 1;
            if cand > self.asap[after.index()] {
                delta.asap_log.push((after.index() as u32, self.asap[after.index()]));
                self.asap[after.index()] = cand;
                if cand > self.alap[after.index()] {
                    return false;
                }
                delta.worklist.push(after);
            }
        }
        while let Some(n) = delta.worklist.pop() {
            let cand = self.asap[n.index()] + 1;
            for &s in slices.succs(n) {
                if slices.is_functional(s) && cand > self.asap[s.index()] {
                    delta.asap_log.push((s.index() as u32, self.asap[s.index()]));
                    self.asap[s.index()] = cand;
                    if cand > self.alap[s.index()] {
                        return false;
                    }
                    delta.worklist.push(s);
                }
            }
        }
        true
    }

    /// Backward half of [`Timing::tighten`]: ALAP decreases from the new
    /// edge sources.
    fn lower_alap(
        &mut self,
        slices: &Slices,
        extra: &[(NodeId, NodeId)],
        delta: &mut TimingDelta,
    ) -> bool {
        for &(before, after) in extra {
            let cand = self.alap[after.index()].saturating_sub(1);
            if cand < self.alap[before.index()] {
                delta.alap_log.push((before.index() as u32, self.alap[before.index()]));
                self.alap[before.index()] = cand;
                if self.asap[before.index()] > cand {
                    return false;
                }
                delta.worklist.push(before);
            }
        }
        while let Some(n) = delta.worklist.pop() {
            let cand = self.alap[n.index()].saturating_sub(1);
            for &p in slices.preds(n) {
                if slices.is_functional(p) && cand < self.alap[p.index()] {
                    delta.alap_log.push((p.index() as u32, self.alap[p.index()]));
                    self.alap[p.index()] = cand;
                    if self.asap[p.index()] > cand {
                        return false;
                    }
                    delta.worklist.push(p);
                }
            }
        }
        true
    }

    /// ASAP step of `node` (0 for structural nodes).
    ///
    /// # Panics
    ///
    /// Panics if `node`'s index lies outside the analysed CDFG's node
    /// range.  An id minted for a *different* graph whose index happens to
    /// be in range reads that slot's value — pass only ids from the
    /// analysed CDFG.
    pub fn asap(&self, node: NodeId) -> u32 {
        self.asap[node.index()]
    }

    /// ALAP step of `node` (`latency + 1` for structural nodes).
    ///
    /// # Panics
    ///
    /// Panics if `node`'s index lies outside the analysed CDFG's node
    /// range.  An id minted for a *different* graph whose index happens to
    /// be in range reads that slot's value — pass only ids from the
    /// analysed CDFG.
    pub fn alap(&self, node: NodeId) -> u32 {
        self.alap[node.index()]
    }

    /// Mobility (slack) of a functional node: `ALAP - ASAP`.  Zero mobility
    /// means the node is on the critical path for this latency.  Returns
    /// `None` when ASAP exceeds ALAP (infeasible node).
    pub fn mobility(&self, node: NodeId) -> Option<u32> {
        self.alap(node).checked_sub(self.asap(node))
    }

    /// Nodes whose ASAP exceeds their ALAP, i.e. nodes that cannot be
    /// scheduled within the latency.
    pub fn infeasible_nodes(&self) -> Vec<NodeId> {
        self.asap
            .iter()
            .enumerate()
            .filter(|&(i, &a)| a > 0 && a > self.alap[i])
            .map(|(i, _)| NodeId::new(i as u32))
            .collect()
    }

    /// Returns `true` when every functional node satisfies ASAP ≤ ALAP.
    pub fn is_feasible(&self) -> bool {
        self.asap.iter().enumerate().all(|(i, &a)| a == 0 || a <= self.alap[i])
    }

    /// Iterates over `(node, asap, alap)` triples for functional nodes.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u32, u32)> + '_ {
        self.asap
            .iter()
            .enumerate()
            .filter(|&(_, &a)| a > 0)
            .map(|(i, &a)| (NodeId::new(i as u32), a, self.alap[i]))
    }

    /// The minimum latency for which this CDFG is feasible: the maximum ASAP
    /// over all functional nodes (equals the critical-path length).
    pub fn min_latency(&self) -> u32 {
        self.asap.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::Op;

    /// Figure 1 / 2 of the paper: |a - b|.
    fn abs_diff() -> (Cdfg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        (g, gt, amb, bma, m)
    }

    #[test]
    fn asap_alap_with_two_steps_matches_figure_1() {
        let (g, gt, amb, bma, m) = abs_diff();
        let t = Timing::compute(&g, 2);
        // All three first-level operations are forced into step 1, the mux
        // into step 2 — the unique schedule of Figure 1.
        assert_eq!(t.asap(gt), 1);
        assert_eq!(t.alap(gt), 1);
        assert_eq!(t.asap(amb), 1);
        assert_eq!(t.alap(amb), 1);
        assert_eq!(t.asap(bma), 1);
        assert_eq!(t.alap(bma), 1);
        assert_eq!(t.asap(m), 2);
        assert_eq!(t.alap(m), 2);
        assert!(t.is_feasible());
        assert_eq!(t.mobility(gt), Some(0));
    }

    #[test]
    fn asap_alap_with_three_steps_has_slack() {
        let (g, gt, amb, bma, m) = abs_diff();
        let t = Timing::compute(&g, 3);
        assert_eq!(t.asap(gt), 1);
        assert_eq!(t.alap(gt), 2, "comparator may move to step 2");
        assert_eq!(t.mobility(amb), Some(1));
        assert_eq!(t.mobility(bma), Some(1));
        assert_eq!(t.asap(m), 2);
        assert_eq!(t.alap(m), 3);
        assert!(t.is_feasible());
        assert_eq!(t.min_latency(), 2);
    }

    #[test]
    fn control_edges_tighten_timing() {
        let (mut g, gt, amb, bma, _) = abs_diff();
        // Force both subtractions after the comparator (what the power
        // management pass does for Figure 2(b)).
        g.add_control_edge(gt, amb).unwrap();
        g.add_control_edge(gt, bma).unwrap();
        let t = Timing::compute(&g, 3);
        assert_eq!(t.asap(amb), 2);
        assert_eq!(t.asap(bma), 2);
        assert_eq!(t.alap(gt), 1, "comparator must now finish in step 1");
        assert!(t.is_feasible());

        // With only two steps the same constraints are infeasible: the chain
        // comparator -> subtraction -> mux needs three steps.
        let t2 = Timing::compute(&g, 2);
        assert!(!t2.is_feasible());
        assert!(!t2.infeasible_nodes().is_empty());
    }

    #[test]
    fn structural_nodes_are_not_scheduled() {
        let (g, ..) = abs_diff();
        let t = Timing::compute(&g, 3);
        for &input in g.inputs() {
            assert_eq!(t.asap(input), 0);
            assert_eq!(t.alap(input), 4);
        }
        let functional: Vec<NodeId> = t.iter().map(|(n, _, _)| n).collect();
        assert_eq!(functional.len(), 4);
    }

    #[test]
    #[should_panic(expected = "latency must be at least one")]
    fn zero_latency_panics() {
        let (g, ..) = abs_diff();
        let _ = Timing::compute(&g, 0);
    }

    #[test]
    fn min_latency_equals_critical_path() {
        let (g, ..) = abs_diff();
        let t = Timing::compute(&g, 10);
        assert_eq!(t.min_latency(), g.critical_path_length());
    }

    #[test]
    fn tighten_matches_full_recomputation_when_feasible() {
        let (mut g, gt, amb, bma, _) = abs_diff();
        for latency in 3..6 {
            let mut t = Timing::compute(&g, latency);
            let mut delta = TimingDelta::default();
            // The edges the power manager would tentatively add for the mux.
            let extra = [(gt, amb), (gt, bma)];
            assert!(t.tighten(&g, &extra, &mut delta), "latency {latency} stays feasible");
            let mut h = g.clone();
            h.add_control_edge(gt, amb).unwrap();
            h.add_control_edge(gt, bma).unwrap();
            assert_eq!(t, Timing::compute(&h, latency), "fixed point at latency {latency}");
        }
        // Re-tightening an already-tightened analysis (edges now physically
        // present) is a no-op that stays at the same fixed point.
        g.add_control_edge(gt, amb).unwrap();
        g.add_control_edge(gt, bma).unwrap();
        let mut t = Timing::compute(&g, 3);
        let before = t.clone();
        let mut delta = TimingDelta::default();
        assert!(t.tighten(&g, &[(gt, amb)], &mut delta));
        assert_eq!(t, before);
    }

    #[test]
    fn tighten_restores_state_on_infeasibility() {
        let (g, gt, amb, bma, _) = abs_diff();
        // Two steps cannot hold the comparator -> subtraction -> mux chain.
        let mut t = Timing::compute(&g, 2);
        assert!(t.is_feasible());
        let before = t.clone();
        let mut delta = TimingDelta::default();
        assert!(!t.tighten(&g, &[(gt, amb), (gt, bma)], &mut delta));
        assert_eq!(t, before, "failed tightening leaves the analysis untouched");
        // The same delta buffer is reusable for a successful call afterwards.
        let mut t3 = Timing::compute(&g, 3);
        assert!(t3.tighten(&g, &[(gt, amb), (gt, bma)], &mut delta));
    }

    #[test]
    fn tighten_chains_across_accepted_edges() {
        // Accepting edges one batch at a time keeps the analysis at the fixed
        // point of the growing graph: the shape of the per-mux loop.
        let mut g = Cdfg::new("chain");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let c1 = g.add_op(Op::Gt, &[a, b]).unwrap();
        let c2 = g.add_op(Op::Lt, &[a, b]).unwrap();
        let s1 = g.add_op(Op::Sub, &[a, b]).unwrap();
        let s2 = g.add_op(Op::Add, &[a, b]).unwrap();
        let m1 = g.add_mux(c1, s1, s2).unwrap();
        let s3 = g.add_op(Op::Mul, &[m1, b]).unwrap();
        let m2 = g.add_mux(c2, s3, m1).unwrap();
        g.add_output("o", m2).unwrap();

        let latency = 6;
        let mut t = Timing::compute(&g, latency);
        let mut delta = TimingDelta::default();
        assert!(t.tighten(&g, &[(c1, s1), (c1, s2)], &mut delta));
        g.add_control_edge(c1, s1).unwrap();
        g.add_control_edge(c1, s2).unwrap();
        assert_eq!(t, Timing::compute(&g, latency), "fixed point after first batch");
        assert!(t.tighten(&g, &[(c2, s3)], &mut delta));
        g.add_control_edge(c2, s3).unwrap();
        assert_eq!(t, Timing::compute(&g, latency), "fixed point after second batch");
    }

    #[test]
    fn rebuild_from_heights_matches_compute_at_every_feasible_latency() {
        // Harvest the latency-independent invariants once, then rebuild for
        // every feasible latency and compare against a cold analysis — the
        // identity the online repair path relies on.
        let (mut g, gt, amb, bma, _) = abs_diff();
        g.add_control_edge(gt, amb).unwrap();
        g.add_control_edge(gt, bma).unwrap();
        let harvest_latency = 6;
        let reference = Timing::compute(&g, harvest_latency);
        let height: Vec<u32> = reference
            .asap
            .iter()
            .enumerate()
            .map(|(i, &a)| if a == 0 { 0 } else { harvest_latency - reference.alap[i] })
            .collect();
        let mut rebuilt = Timing::empty();
        for latency in reference.min_latency()..harvest_latency + 4 {
            rebuilt.rebuild_from_heights(latency, &reference.asap, &height);
            assert_eq!(rebuilt, Timing::compute(&g, latency), "latency {latency}");
        }
    }

    #[test]
    fn compute_into_reuses_buffers_and_matches_compute() {
        let (g, ..) = abs_diff();
        let mut reused = Timing::empty();
        for latency in 2..6 {
            reused.compute_into(&g, latency);
            assert_eq!(reused, Timing::compute(&g, latency), "latency {latency}");
        }
        // Shrinking graphs (or a different graph) must fully overwrite.
        let mut small = Cdfg::new("one_add");
        let a = small.add_input("a");
        let b = small.add_input("b");
        let s = small.add_op(Op::Add, &[a, b]).unwrap();
        small.add_output("o", s).unwrap();
        reused.compute_into(&small, 3);
        assert_eq!(reused, Timing::compute(&small, 3));
        assert_eq!(reused.iter().count(), 1);
    }
}
