//! The schedule type: an assignment of functional operations to control
//! steps, plus validation and resource accounting.

use std::collections::BTreeMap;
use std::fmt;

use cdfg::{Cdfg, NodeId, OpClass};

use crate::error::ScheduleError;
use crate::resource::{ResourceConstraint, ResourceSet};

/// An operation schedule: every functional node is assigned to exactly one
/// control step in `1..=num_steps`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Schedule {
    num_steps: u32,
    steps: BTreeMap<NodeId, u32>,
}

impl Schedule {
    /// Creates an empty schedule spanning `num_steps` control steps.
    pub fn new(num_steps: u32) -> Self {
        Schedule { num_steps, steps: BTreeMap::new() }
    }

    /// Number of control steps (the throughput constraint of the design).
    pub fn num_steps(&self) -> u32 {
        self.num_steps
    }

    /// Assigns `node` to `step`, replacing any previous assignment.
    ///
    /// # Panics
    ///
    /// Panics if `step` is zero or exceeds [`Schedule::num_steps`].
    pub fn assign(&mut self, node: NodeId, step: u32) {
        assert!(step >= 1 && step <= self.num_steps, "step {step} outside 1..={}", self.num_steps);
        self.steps.insert(node, step);
    }

    /// The control step assigned to `node`, if any.
    pub fn step_of(&self, node: NodeId) -> Option<u32> {
        self.steps.get(&node).copied()
    }

    /// Number of scheduled operations.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Returns `true` if no operation has been scheduled yet.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Iterates over `(node, step)` assignments in node-id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        self.steps.iter().map(|(&n, &s)| (n, s))
    }

    /// All nodes assigned to `step`, in node-id order.
    pub fn nodes_in_step(&self, step: u32) -> Vec<NodeId> {
        self.steps.iter().filter(|(_, &s)| s == step).map(|(&n, _)| n).collect()
    }

    /// The highest step actually used (0 when empty).  This can be smaller
    /// than [`Schedule::num_steps`] if the tail steps are idle.
    pub fn last_used_step(&self) -> u32 {
        self.steps.values().copied().max().unwrap_or(0)
    }

    /// Per-class resource usage of each step and the element-wise maximum
    /// over all steps — the number of execution units an allocation needs to
    /// provide for this schedule.
    pub fn resource_usage(&self, cdfg: &Cdfg) -> ResourceSet {
        let mut max = ResourceSet::new();
        for step in 1..=self.num_steps {
            let mut used = ResourceSet::new();
            for node in self.nodes_in_step(step) {
                if let Some(data) = cdfg.node(node) {
                    if data.op.is_functional() {
                        used.bump(data.op.class());
                    }
                }
            }
            max = max.max(&used);
        }
        max
    }

    /// Number of operations of `class` scheduled in `step`.
    pub fn class_usage_in_step(&self, cdfg: &Cdfg, step: u32, class: OpClass) -> usize {
        self.nodes_in_step(step)
            .into_iter()
            .filter(|&n| cdfg.node(n).map(|d| d.op.class() == class).unwrap_or(false))
            .count()
    }

    /// Checks that the schedule is complete and respects precedence, step
    /// bounds and (optionally) a resource constraint.
    ///
    /// # Errors
    ///
    /// Returns the first violation found; see [`ScheduleError`].
    pub fn validate(&self, cdfg: &Cdfg) -> Result<(), ScheduleError> {
        self.validate_with(cdfg, &ResourceConstraint::Unlimited)
    }

    /// Like [`Schedule::validate`] but also checks per-step resource usage
    /// against `constraint`.
    ///
    /// # Errors
    ///
    /// Returns the first violation found; see [`ScheduleError`].
    pub fn validate_with(
        &self,
        cdfg: &Cdfg,
        constraint: &ResourceConstraint,
    ) -> Result<(), ScheduleError> {
        // Completeness and bounds.
        for node in cdfg.functional_nodes() {
            match self.step_of(node) {
                None => return Err(ScheduleError::MissingNode(node)),
                Some(step) if step == 0 || step > self.num_steps => {
                    return Err(ScheduleError::StepOutOfRange {
                        node,
                        step,
                        num_steps: self.num_steps,
                    })
                }
                Some(_) => {}
            }
        }
        // Precedence over both data and control edges: a functional
        // predecessor must finish strictly before its consumer starts.
        for node in cdfg.functional_nodes() {
            let step = self.step_of(node).expect("checked above");
            for pred in cdfg.predecessors(node) {
                let pred_data = cdfg.node(pred).expect("live node");
                if !pred_data.op.is_functional() {
                    continue;
                }
                let pred_step = self.step_of(pred).ok_or(ScheduleError::MissingNode(pred))?;
                if pred_step >= step {
                    return Err(ScheduleError::PrecedenceViolation { before: pred, after: node });
                }
            }
        }
        // Resources.
        for step in 1..=self.num_steps {
            let mut used: BTreeMap<OpClass, usize> = BTreeMap::new();
            for node in self.nodes_in_step(step) {
                if let Some(data) = cdfg.node(node) {
                    *used.entry(data.op.class()).or_insert(0) += 1;
                }
            }
            for (class, count) in used {
                if !constraint.allows(class, count) {
                    return Err(ScheduleError::ResourceOverflow {
                        step,
                        class: class.label(),
                        limit: constraint.limit(class).unwrap_or(0),
                        used: count,
                    });
                }
            }
        }
        Ok(())
    }

    /// Renders the schedule as a step-by-step table using node names.
    pub fn render(&self, cdfg: &Cdfg) -> String {
        let mut out = String::new();
        for step in 1..=self.num_steps {
            let names: Vec<String> = self
                .nodes_in_step(step)
                .into_iter()
                .filter_map(|n| cdfg.node(n).map(|d| format!("{} ({})", d.name, d.op)))
                .collect();
            out.push_str(&format!("step {step}: {}\n", names.join(", ")));
        }
        out
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "schedule over {} steps ({} operations)", self.num_steps, self.steps.len())
    }
}

impl FromIterator<(NodeId, u32)> for Schedule {
    /// Builds a schedule whose `num_steps` is the maximum assigned step.
    fn from_iter<I: IntoIterator<Item = (NodeId, u32)>>(iter: I) -> Self {
        let steps: BTreeMap<NodeId, u32> = iter.into_iter().collect();
        let num_steps = steps.values().copied().max().unwrap_or(0);
        Schedule { num_steps, steps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cdfg::Op;

    fn abs_diff() -> (Cdfg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        (g, gt, amb, bma, m)
    }

    fn figure1_schedule(gt: NodeId, amb: NodeId, bma: NodeId, m: NodeId) -> Schedule {
        let mut s = Schedule::new(2);
        s.assign(gt, 1);
        s.assign(amb, 1);
        s.assign(bma, 1);
        s.assign(m, 2);
        s
    }

    #[test]
    fn figure1_schedule_is_valid_and_needs_two_subtractors() {
        let (g, gt, amb, bma, m) = abs_diff();
        let s = figure1_schedule(gt, amb, bma, m);
        s.validate(&g).unwrap();
        let usage = s.resource_usage(&g);
        assert_eq!(usage.count(OpClass::Sub), 2, "both subtractions share step 1");
        assert_eq!(usage.count(OpClass::Comp), 1);
        assert_eq!(usage.count(OpClass::Mux), 1);
        assert_eq!(s.last_used_step(), 2);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn missing_node_is_reported() {
        let (g, gt, amb, _bma, m) = abs_diff();
        let mut s = Schedule::new(2);
        s.assign(gt, 1);
        s.assign(amb, 1);
        s.assign(m, 2);
        assert!(matches!(s.validate(&g), Err(ScheduleError::MissingNode(_))));
    }

    #[test]
    fn precedence_violation_is_reported() {
        let (g, gt, amb, bma, m) = abs_diff();
        let mut s = Schedule::new(2);
        s.assign(gt, 1);
        s.assign(amb, 2);
        s.assign(bma, 1);
        s.assign(m, 2);
        let err = s.validate(&g).unwrap_err();
        assert!(matches!(err, ScheduleError::PrecedenceViolation { .. }));
    }

    #[test]
    fn control_edges_participate_in_precedence() {
        let (mut g, gt, amb, bma, m) = abs_diff();
        g.add_control_edge(gt, amb).unwrap();
        let mut s = Schedule::new(2);
        s.assign(gt, 1);
        s.assign(amb, 1); // violates the control edge
        s.assign(bma, 1);
        s.assign(m, 2);
        let err = s.validate(&g).unwrap_err();
        assert!(matches!(err, ScheduleError::PrecedenceViolation { before, .. } if before == gt));
    }

    #[test]
    fn resource_constraint_violation_is_reported() {
        let (g, gt, amb, bma, m) = abs_diff();
        let s = figure1_schedule(gt, amb, bma, m);
        let one_sub =
            ResourceConstraint::limited([(OpClass::Sub, 1), (OpClass::Comp, 1), (OpClass::Mux, 1)]);
        let err = s.validate_with(&g, &one_sub).unwrap_err();
        assert!(matches!(
            err,
            ScheduleError::ResourceOverflow { class: "-", used: 2, limit: 1, .. }
        ));
    }

    #[test]
    fn assign_replaces_previous_step() {
        let (_, gt, ..) = abs_diff();
        let mut s = Schedule::new(3);
        s.assign(gt, 1);
        s.assign(gt, 2);
        assert_eq!(s.step_of(gt), Some(2));
        assert_eq!(s.nodes_in_step(1), Vec::<NodeId>::new());
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn assigning_out_of_range_panics() {
        let (_, gt, ..) = abs_diff();
        let mut s = Schedule::new(2);
        s.assign(gt, 3);
    }

    #[test]
    fn from_iterator_infers_num_steps() {
        let (_, gt, amb, ..) = abs_diff();
        let s: Schedule = [(gt, 1), (amb, 4)].into_iter().collect();
        assert_eq!(s.num_steps(), 4);
        assert_eq!(s.step_of(amb), Some(4));
    }

    #[test]
    fn render_and_display_are_nonempty() {
        let (g, gt, amb, bma, m) = abs_diff();
        let s = figure1_schedule(gt, amb, bma, m);
        let rendered = s.render(&g);
        assert!(rendered.contains("step 1"));
        assert!(rendered.contains("mux"));
        assert!(s.to_string().contains("2 steps"));
    }
}
