//! Execution-unit resources: allocations and constraints.
//!
//! Every functional [`cdfg::OpClass`] maps onto its own execution-unit kind
//! (adder, subtractor, multiplier, comparator, multiplexor, ...), matching
//! the allocation model of the paper where e.g. "two subtractors" are
//! discussed for the |a − b| example.

use std::collections::BTreeMap;
use std::fmt;

use cdfg::OpClass;

/// A count of execution units per operation class — either the units
/// *available* (an allocation) or the units *required* (a usage summary).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResourceSet {
    counts: BTreeMap<OpClass, usize>,
}

impl ResourceSet {
    /// Creates an empty resource set (zero units of everything).
    pub fn new() -> Self {
        ResourceSet::default()
    }

    /// Creates a resource set from `(class, count)` pairs.
    pub fn from_pairs<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (OpClass, usize)>,
    {
        let mut set = ResourceSet::new();
        for (class, count) in pairs {
            set.set(class, count);
        }
        set
    }

    /// Number of units of `class`.
    pub fn count(&self, class: OpClass) -> usize {
        self.counts.get(&class).copied().unwrap_or(0)
    }

    /// Sets the number of units of `class`.
    pub fn set(&mut self, class: OpClass, count: usize) {
        if count == 0 {
            self.counts.remove(&class);
        } else {
            self.counts.insert(class, count);
        }
    }

    /// Increments the number of units of `class` by one and returns the new
    /// count.
    pub fn bump(&mut self, class: OpClass) -> usize {
        let next = self.count(class) + 1;
        self.set(class, next);
        next
    }

    /// Ensures at least `count` units of `class` are present.
    pub fn ensure_at_least(&mut self, class: OpClass, count: usize) {
        if self.count(class) < count {
            self.set(class, count);
        }
    }

    /// Element-wise maximum of two resource sets.
    pub fn max(&self, other: &ResourceSet) -> ResourceSet {
        let mut out = self.clone();
        for (&class, &count) in &other.counts {
            out.ensure_at_least(class, count);
        }
        out
    }

    /// Total number of units across all classes.
    pub fn total_units(&self) -> usize {
        self.counts.values().sum()
    }

    /// Returns `true` if every class count in `self` is less than or equal
    /// to the corresponding count in `other`.
    pub fn fits_within(&self, other: &ResourceSet) -> bool {
        self.counts.iter().all(|(&class, &count)| count <= other.count(class))
    }

    /// Iterates over `(class, count)` pairs with non-zero counts.
    pub fn iter(&self) -> impl Iterator<Item = (OpClass, usize)> + '_ {
        self.counts.iter().map(|(&c, &n)| (c, n))
    }

    /// Returns `true` if no units are allocated at all.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

impl fmt::Display for ResourceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.counts.is_empty() {
            return f.write_str("(none)");
        }
        let mut first = true;
        for (class, count) in self.iter() {
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{class}:{count}")?;
            first = false;
        }
        Ok(())
    }
}

impl FromIterator<(OpClass, usize)> for ResourceSet {
    fn from_iter<I: IntoIterator<Item = (OpClass, usize)>>(iter: I) -> Self {
        ResourceSet::from_pairs(iter)
    }
}

impl Extend<(OpClass, usize)> for ResourceSet {
    fn extend<I: IntoIterator<Item = (OpClass, usize)>>(&mut self, iter: I) {
        for (class, count) in iter {
            self.set(class, count);
        }
    }
}

/// A hardware resource constraint for scheduling: either unconstrained (the
/// scheduler may use as many units as it needs) or limited to a specific
/// [`ResourceSet`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub enum ResourceConstraint {
    /// No limit: the scheduler minimises units on its own.
    #[default]
    Unlimited,
    /// Hard per-class limits.  Classes absent from the set are treated as
    /// having zero available units, so a limited constraint must list every
    /// class the design uses.
    Limited(ResourceSet),
}

impl ResourceConstraint {
    /// Convenience constructor for a limited constraint.
    pub fn limited<I: IntoIterator<Item = (OpClass, usize)>>(pairs: I) -> Self {
        ResourceConstraint::Limited(ResourceSet::from_pairs(pairs))
    }

    /// The limit for `class`, or `None` when unconstrained.
    pub fn limit(&self, class: OpClass) -> Option<usize> {
        match self {
            ResourceConstraint::Unlimited => None,
            ResourceConstraint::Limited(set) => Some(set.count(class)),
        }
    }

    /// Returns `true` if scheduling `used` simultaneous operations of
    /// `class` is allowed.
    pub fn allows(&self, class: OpClass, used: usize) -> bool {
        match self.limit(class) {
            None => true,
            Some(limit) => used <= limit,
        }
    }
}

impl fmt::Display for ResourceConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceConstraint::Unlimited => f.write_str("unlimited"),
            ResourceConstraint::Limited(set) => write!(f, "{set}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_default_to_zero() {
        let set = ResourceSet::new();
        assert_eq!(set.count(OpClass::Add), 0);
        assert!(set.is_empty());
        assert_eq!(set.total_units(), 0);
        assert_eq!(set.to_string(), "(none)");
    }

    #[test]
    fn set_bump_and_ensure() {
        let mut set = ResourceSet::new();
        set.set(OpClass::Add, 2);
        assert_eq!(set.bump(OpClass::Add), 3);
        assert_eq!(set.bump(OpClass::Mul), 1);
        set.ensure_at_least(OpClass::Mul, 4);
        set.ensure_at_least(OpClass::Add, 1);
        assert_eq!(set.count(OpClass::Mul), 4);
        assert_eq!(set.count(OpClass::Add), 3);
        set.set(OpClass::Add, 0);
        assert_eq!(set.count(OpClass::Add), 0);
    }

    #[test]
    fn max_and_fits_within() {
        let a = ResourceSet::from_pairs([(OpClass::Add, 2), (OpClass::Mul, 1)]);
        let b = ResourceSet::from_pairs([(OpClass::Add, 1), (OpClass::Comp, 3)]);
        let m = a.max(&b);
        assert_eq!(m.count(OpClass::Add), 2);
        assert_eq!(m.count(OpClass::Comp), 3);
        assert_eq!(m.count(OpClass::Mul), 1);
        assert!(a.fits_within(&m));
        assert!(b.fits_within(&m));
        assert!(!m.fits_within(&a));
    }

    #[test]
    fn from_iterator_and_extend() {
        let set: ResourceSet = [(OpClass::Sub, 2)].into_iter().collect();
        assert_eq!(set.count(OpClass::Sub), 2);
        let mut set = set;
        set.extend([(OpClass::Mux, 5)]);
        assert_eq!(set.count(OpClass::Mux), 5);
        assert_eq!(set.total_units(), 7);
    }

    #[test]
    fn constraint_allows() {
        let unlimited = ResourceConstraint::Unlimited;
        assert!(unlimited.allows(OpClass::Mul, 1000));
        assert_eq!(unlimited.limit(OpClass::Mul), None);

        let limited = ResourceConstraint::limited([(OpClass::Sub, 1)]);
        assert!(limited.allows(OpClass::Sub, 1));
        assert!(!limited.allows(OpClass::Sub, 2));
        assert!(!limited.allows(OpClass::Add, 1), "unlisted classes have zero units");
        assert_eq!(limited.limit(OpClass::Sub), Some(1));
    }

    #[test]
    fn display_lists_pairs() {
        let set = ResourceSet::from_pairs([(OpClass::Add, 1), (OpClass::Mux, 2)]);
        let s = set.to_string();
        assert!(s.contains("+:1"));
        assert!(s.contains("MUX:2"));
        assert_eq!(ResourceConstraint::Unlimited.to_string(), "unlimited");
    }
}
