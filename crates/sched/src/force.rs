//! Latency-constrained force-directed scheduling (Paulin & Knight) —
//! incremental, index-dense kernel.
//!
//! Given a latency, force-directed scheduling chooses a control step for
//! every operation so that operations of the same class are spread as evenly
//! as possible over the steps, which minimises the number of execution units
//! the final allocation needs.  This is the behaviour the paper relies on
//! from HYPER's scheduler ("targeting minimum hardware resources for the
//! desired throughput", step 11 of the algorithm).
//!
//! # Kernel design
//!
//! The reference implementation (`crate::naive`, compiled for tests and
//! under the `reference` feature) rebuilds the whole
//! distribution graph on a `BTreeMap<(OpClass, u32), f64>` and rescans every
//! unfixed (node, step) pair on every iteration, with frame propagation run
//! to a whole-graph fixed point over allocating adjacency accessors — an
//! O(n²·L·W) map churn.  This kernel produces *equal schedules* (pinned by
//! the schedule-identity property tests) from dense, incrementally
//! maintained state:
//!
//! * **Frames and fixedness** live in flat arrays indexed by
//!   [`NodeId::index`]; adjacency comes from the CDFG's cached CSR view
//!   ([`cdfg::Slices`]), so the hot loop performs no allocation and no map
//!   lookups.
//! * **Distribution graph rows** are one `Vec<f64>` per operation class.  A
//!   row is recomputed only when some member's frame changed, and the cells
//!   are summed in ascending-node order — exactly the order the reference's
//!   map construction uses — so the f64 values (and therefore every force
//!   comparison) are bit-identical to the reference.
//! * **Per-node best candidates** (step, self-force) are cached and
//!   recomputed only for nodes whose frame or class row actually changed;
//!   the global pick merges the cached candidates in ascending node order
//!   with the reference's ε-tolerant comparator.  (The ε tie-break is not
//!   transitive, so a segmented reduction could in principle diverge from
//!   the reference's flat scan — but only if two *distinct* force values
//!   fell within (ε, 2ε] of each other, which the rational structure of
//!   forces on real circuits never produces; the schedule-identity
//!   property tests pin the equality across every circuit family.)
//! * **Propagation** is a worklist relaxation seeded from the just-fixed
//!   node instead of a whole-graph fixed point.  The earliest- and
//!   latest-step constraint systems are independent longest-path closures,
//!   so seeded relaxation reaches the same unique fixed point.
//!
//! The invariant tying it together: after every iteration, each class row
//! equals the column sums of its members' occupation probabilities, and each
//! cached candidate equals the reference's scan result for the node's
//! current frame and row.

use std::collections::VecDeque;

use cdfg::{Cdfg, NodeId, OpClass, Slices};

use crate::error::ScheduleError;
use crate::schedule::Schedule;
use crate::timing::Timing;

/// Comparison slack for self-forces: differences at or below this are ties,
/// broken towards the smaller (node, step) pair.
const EPS: f64 = 1e-9;

/// Number of functional operation classes (the DG row count).
const NUM_CLASSES: usize = OpClass::FUNCTIONAL.len();

/// Mutable time frame `[earliest, latest]` of an operation during
/// force-directed scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frame {
    earliest: u32,
    latest: u32,
}

impl Frame {
    fn width(self) -> u32 {
        self.latest - self.earliest + 1
    }

    fn probability(self, step: u32) -> f64 {
        if step >= self.earliest && step <= self.latest {
            1.0 / f64::from(self.width())
        } else {
            0.0
        }
    }
}

/// Reusable buffers for force-directed scheduling runs — the warm-start
/// entry point the full-range Pareto explorer drives.
///
/// One workspace can be reused across any sequence of circuits and
/// latencies: every buffer (the ASAP/ALAP analysis included) is resized and
/// reinitialised per run, so a warm run performs no allocation once the
/// buffers have grown to the largest graph seen, and the produced schedules
/// are **bit-identical** to cold runs — reuse changes where the f64s live,
/// never how they are computed (the warm-start identity tests pin this
/// against `sched::naive`).
#[derive(Debug, Default)]
pub struct Workspace {
    /// ASAP/ALAP analysis reused across runs (also lent to the `hyper`
    /// entry points so feasibility checks share the same buffers).
    pub(crate) timing: Timing,
    /// Current time frame of each functional node.
    frames: Vec<Frame>,
    /// Whether the node's step has been fixed (its frame is then width 1).
    fixed: Vec<bool>,
    fixed_count: usize,
    /// Dense class id of each functional node.
    class_of: Vec<u8>,
    /// Members of each class, ascending node id (the DG summation order).
    class_members: [Vec<NodeId>; NUM_CLASSES],
    /// One distribution-graph row per class, indexed by control step.
    dg: [Vec<f64>; NUM_CLASSES],
    /// Classes whose row must be recomputed before the next pick.
    class_dirty: [bool; NUM_CLASSES],
    /// Cached best (step, self-force) per unfixed node.
    cand: Vec<(u32, f64)>,
    cand_valid: Vec<bool>,
    /// Nodes whose frame changed since the last pick (deduplicated).
    changed: Vec<NodeId>,
    changed_flag: Vec<bool>,
    /// Worklist scratch for seeded propagation.
    queue: VecDeque<NodeId>,
}

impl Workspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Workspace::default()
    }
}

/// Schedules `cdfg` within `latency` control steps, minimising the peak
/// number of simultaneously busy execution units per class.
///
/// # Errors
///
/// Returns [`ScheduleError::LatencyTooSmall`] if the latency is below the
/// critical path (taking control edges into account).
pub fn schedule(cdfg: &Cdfg, latency: u32) -> Result<Schedule, ScheduleError> {
    let mut ws = Workspace::new();
    schedule_with_workspace(cdfg, latency, &mut ws)
}

/// Like [`schedule`], but warm-started: timing analysis and kernel state
/// reuse the buffers of `ws`.  Intended for walking a circuit across a
/// whole budget range (the Pareto explorer's inner loop); results are
/// bit-identical to [`schedule`].
///
/// # Errors
///
/// Returns [`ScheduleError::LatencyTooSmall`] if the latency is below the
/// critical path (taking control edges into account).
pub fn schedule_with_workspace(
    cdfg: &Cdfg,
    latency: u32,
    ws: &mut Workspace,
) -> Result<Schedule, ScheduleError> {
    let mut timing = std::mem::take(&mut ws.timing);
    timing.compute_into(cdfg, latency);
    let result = if timing.is_feasible() {
        schedule_with_timing_into(cdfg, &timing, ws)
    } else {
        Err(ScheduleError::LatencyTooSmall {
            requested: latency,
            critical_path: timing.min_latency(),
        })
    };
    ws.timing = timing;
    result
}

/// Runs the kernel against a timing analysis the caller already computed
/// for this `cdfg` and latency (the analysis must be feasible), on
/// caller-owned buffers (`ws.timing` is not consulted).
pub(crate) fn schedule_with_timing_into(
    cdfg: &Cdfg,
    timing: &Timing,
    ws: &mut Workspace,
) -> Result<Schedule, ScheduleError> {
    Kernel::init(cdfg, timing, ws).run()
}

/// One force-directed scheduling run over workspace-owned mutable state,
/// slot-indexed by [`NodeId::index`].
struct Kernel<'a> {
    slices: &'a Slices,
    latency: u32,
    ws: &'a mut Workspace,
}

impl<'a> Kernel<'a> {
    /// Resets `ws` for a run over `cdfg` at `timing`'s latency and binds the
    /// kernel to it.  Every buffer is cleared and resized, so stale state
    /// from a previous run (another circuit, another latency) cannot leak.
    fn init(cdfg: &'a Cdfg, timing: &Timing, ws: &'a mut Workspace) -> Self {
        let slices = cdfg.slices();
        let slots = slices.slot_count();
        let latency = timing.latency();

        ws.frames.clear();
        ws.frames.resize(slots, Frame { earliest: 0, latest: 0 });
        ws.fixed.clear();
        ws.fixed.resize(slots, false);
        ws.fixed_count = 0;
        ws.class_of.clear();
        ws.class_of.resize(slots, 0);
        for members in &mut ws.class_members {
            members.clear();
        }
        for row in &mut ws.dg {
            row.clear();
            row.resize(latency as usize + 1, 0.0);
        }
        ws.class_dirty = [true; NUM_CLASSES];
        ws.cand.clear();
        ws.cand.resize(slots, (0, 0.0));
        ws.cand_valid.clear();
        ws.cand_valid.resize(slots, false);
        ws.changed.clear();
        ws.changed_flag.clear();
        ws.changed_flag.resize(slots, false);
        ws.queue.clear();

        for &n in slices.functional() {
            let data = cdfg.node(n).expect("live node");
            let i = n.index();
            let frame = Frame { earliest: timing.asap(n), latest: timing.alap(n) };
            ws.frames[i] = frame;
            if frame.width() == 1 {
                ws.fixed[i] = true;
                ws.fixed_count += 1;
            }
            let class = data.op.class().dense_index();
            ws.class_of[i] = class as u8;
            ws.class_members[class].push(n);
        }

        Kernel { slices, latency, ws }
    }

    fn run(mut self) -> Result<Schedule, ScheduleError> {
        let total = self.slices.functional().len();
        while self.ws.fixed_count < total {
            self.refresh_dirty_rows();
            let (node, step) = self.pick();
            let i = node.index();
            self.ws.fixed[i] = true;
            self.ws.fixed_count += 1;
            self.ws.frames[i] = Frame { earliest: step, latest: step };
            self.mark_changed(node);
            self.propagate_from(node)?;
            // Frame changes dirty the owning class's DG row and the node's
            // cached candidate.
            for k in 0..self.ws.changed.len() {
                let m = self.ws.changed[k];
                self.ws.class_dirty[self.ws.class_of[m.index()] as usize] = true;
                self.ws.cand_valid[m.index()] = false;
                self.ws.changed_flag[m.index()] = false;
            }
            self.ws.changed.clear();
        }

        let mut schedule = Schedule::new(self.latency);
        for &n in self.slices.functional() {
            schedule.assign(n, self.ws.frames[n.index()].earliest);
        }
        Ok(schedule)
    }

    /// Rebuilds the DG rows of dirty classes and drops the cached candidates
    /// of their unfixed members.  Cells are summed over members in ascending
    /// node order — the reference implementation's map-construction order —
    /// so the resulting f64 values are bit-identical to a full rebuild.
    fn refresh_dirty_rows(&mut self) {
        let ws = &mut *self.ws;
        for class in 0..NUM_CLASSES {
            if !ws.class_dirty[class] {
                continue;
            }
            ws.class_dirty[class] = false;
            let row = &mut ws.dg[class];
            row.fill(0.0);
            for &m in &ws.class_members[class] {
                let frame = ws.frames[m.index()];
                let p = frame.probability(frame.earliest);
                for step in frame.earliest..=frame.latest {
                    row[step as usize] += p;
                }
                if !ws.fixed[m.index()] {
                    ws.cand_valid[m.index()] = false;
                }
            }
        }
    }

    /// Picks the unfixed (node, step) pair with the smallest self-force,
    /// refreshing invalidated per-node candidates on the way.  Ties within
    /// [`EPS`] go to the smaller (node, step) pair, like the reference's
    /// flat scan (see the module docs for the ε-chain caveat).
    fn pick(&mut self) -> (NodeId, u32) {
        let mut best: Option<(NodeId, u32, f64)> = None;
        for &n in self.slices.functional() {
            let i = n.index();
            if self.ws.fixed[i] {
                continue;
            }
            if !self.ws.cand_valid[i] {
                let candidate = self.best_candidate(n);
                self.ws.cand[i] = candidate;
                self.ws.cand_valid[i] = true;
            }
            let (step, force) = self.ws.cand[i];
            let better = match best {
                None => true,
                Some((bn, bs, bf)) => {
                    force < bf - EPS || ((force - bf).abs() <= EPS && (n, step) < (bn, bs))
                }
            };
            if better {
                best = Some((n, step, force));
            }
        }
        let (node, step, _) = best.expect("at least one unfixed node");
        (node, step)
    }

    /// The node's best step by self-force, scanning its frame in ascending
    /// order with the reference comparator.
    fn best_candidate(&self, n: NodeId) -> (u32, f64) {
        let frame = self.ws.frames[n.index()];
        let row = &self.ws.dg[self.ws.class_of[n.index()] as usize];
        let mut best: Option<(u32, f64)> = None;
        for step in frame.earliest..=frame.latest {
            let force = self_force(row, frame, step);
            let better = match best {
                None => true,
                Some((_, bf)) => force < bf - EPS,
            };
            if better {
                best = Some((step, force));
            }
        }
        best.expect("frames are non-empty")
    }

    fn mark_changed(&mut self, n: NodeId) {
        if !self.ws.changed_flag[n.index()] {
            self.ws.changed_flag[n.index()] = true;
            self.ws.changed.push(n);
        }
    }

    /// Restores frame consistency after `origin`'s frame tightened: a
    /// worklist relaxation of the earliest-step system along successors and
    /// the latest-step system along predecessors.  Both systems are
    /// longest-path closures whose only newly violated constraints leave
    /// `origin`, so seeding there reaches the same fixed point the
    /// reference's whole-graph iteration computes.
    ///
    /// # Errors
    ///
    /// Returns [`ScheduleError::InfeasiblePropagation`] if a constraint
    /// pushes a frame's earliest step past its latest one — unreachable when
    /// fixing happens inside consistent frames, but surfaced rather than
    /// clamped away.
    fn propagate_from(&mut self, origin: NodeId) -> Result<(), ScheduleError> {
        // Forward: successors must start after their predecessors finish.
        self.ws.queue.push_back(origin);
        while let Some(n) = self.ws.queue.pop_front() {
            let bound = self.ws.frames[n.index()].earliest + 1;
            for &s in self.slices.succs(n) {
                if !self.slices.is_functional(s) {
                    continue;
                }
                let i = s.index();
                if bound > self.ws.frames[i].latest {
                    self.ws.queue.clear();
                    return Err(ScheduleError::InfeasiblePropagation { node: s });
                }
                if !self.ws.fixed[i] && bound > self.ws.frames[i].earliest {
                    self.ws.frames[i].earliest = bound;
                    self.mark_changed(s);
                    self.ws.queue.push_back(s);
                }
            }
        }
        // Backward: predecessors must finish before their successors start.
        self.ws.queue.push_back(origin);
        while let Some(n) = self.ws.queue.pop_front() {
            let bound = self.ws.frames[n.index()].latest.saturating_sub(1);
            for &p in self.slices.preds(n) {
                if !self.slices.is_functional(p) {
                    continue;
                }
                let i = p.index();
                if bound < self.ws.frames[i].earliest {
                    self.ws.queue.clear();
                    return Err(ScheduleError::InfeasiblePropagation { node: p });
                }
                if !self.ws.fixed[i] && bound < self.ws.frames[i].latest {
                    self.ws.frames[i].latest = bound;
                    self.mark_changed(p);
                    self.ws.queue.push_back(p);
                }
            }
        }
        Ok(())
    }
}

/// Self force of placing an operation with time frame `frame` at `step`,
/// against its class's DG row: the standard
/// `DG · (new probability − old probability)` sum over the frame, evaluated
/// term-by-term in ascending step order (the reference's summation order).
fn self_force(row: &[f64], frame: Frame, step: u32) -> f64 {
    let p = frame.probability(step);
    let mut force = 0.0;
    for s in frame.earliest..=frame.latest {
        let dg_s = row[s as usize];
        let delta = if s == step { 1.0 - p } else { -p };
        force += dg_s * delta;
    }
    force
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive;
    use crate::resource::ResourceConstraint;
    use cdfg::Op;

    fn abs_diff() -> (Cdfg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        (g, gt, amb, bma, m)
    }

    #[test]
    fn three_steps_use_a_single_subtractor() {
        // Figure 2(a): with three control steps force-directed scheduling
        // spreads the two subtractions over different steps, so one
        // subtractor suffices.
        let (g, _gt, amb, bma, _m) = abs_diff();
        let s = schedule(&g, 3).unwrap();
        s.validate(&g).unwrap();
        assert_ne!(s.step_of(amb), s.step_of(bma));
        let usage = s.resource_usage(&g);
        assert_eq!(usage.count(OpClass::Sub), 1);
    }

    #[test]
    fn two_steps_need_two_subtractors() {
        // Figure 1: with only two control steps both subtractions land in
        // step 1 and two subtractors are required.
        let (g, ..) = abs_diff();
        let s = schedule(&g, 2).unwrap();
        s.validate(&g).unwrap();
        let usage = s.resource_usage(&g);
        assert_eq!(usage.count(OpClass::Sub), 2);
    }

    #[test]
    fn latency_below_critical_path_is_rejected() {
        let (g, ..) = abs_diff();
        let err = schedule(&g, 1).unwrap_err();
        assert!(matches!(err, ScheduleError::LatencyTooSmall { requested: 1, critical_path: 2 }));
    }

    #[test]
    fn control_edges_constrain_force_directed_scheduling() {
        let (mut g, gt, amb, bma, m) = abs_diff();
        g.add_control_edge(gt, amb).unwrap();
        g.add_control_edge(gt, bma).unwrap();
        let s = schedule(&g, 3).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.step_of(gt), Some(1));
        assert!(s.step_of(amb).unwrap() >= 2);
        assert!(s.step_of(bma).unwrap() >= 2);
        assert_eq!(s.step_of(m), Some(3));
    }

    #[test]
    fn balances_adders_over_steps() {
        // Four independent additions, two steps: force-directed scheduling
        // should put two in each step so that only two adders are needed.
        let mut g = Cdfg::new("adds");
        let mut sums = Vec::new();
        for i in 0..4 {
            let a = g.add_input(format!("a{i}"));
            let b = g.add_input(format!("b{i}"));
            sums.push(g.add_op(Op::Add, &[a, b]).unwrap());
        }
        // A final combining stage so the graph has depth 2 and outputs.
        let c1 = g.add_op(Op::Add, &[sums[0], sums[1]]).unwrap();
        let c2 = g.add_op(Op::Add, &[sums[2], sums[3]]).unwrap();
        g.add_output("o1", c1).unwrap();
        g.add_output("o2", c2).unwrap();

        let s = schedule(&g, 3).unwrap();
        s.validate(&g).unwrap();
        let usage = s.resource_usage(&g);
        assert!(
            usage.count(OpClass::Add) <= 3,
            "force-directed scheduling should avoid piling all six adds into two steps: {usage}"
        );
        // A valid schedule under the derived resource bound exists.
        let constraint = ResourceConstraint::Limited(usage);
        s.validate_with(&g, &constraint).unwrap();
    }

    #[test]
    fn schedule_is_deterministic() {
        let (g, ..) = abs_diff();
        let s1 = schedule(&g, 4).unwrap();
        let s2 = schedule(&g, 4).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn matches_the_naive_reference_on_hand_circuits() {
        let (g, ..) = abs_diff();
        for latency in 2..8 {
            assert_eq!(
                schedule(&g, latency).unwrap(),
                naive::schedule(&g, latency).unwrap(),
                "latency {latency}"
            );
        }

        let (mut h, gt, amb, bma, _) = abs_diff();
        h.add_control_edge(gt, amb).unwrap();
        h.add_control_edge(gt, bma).unwrap();
        for latency in 3..8 {
            assert_eq!(
                schedule(&h, latency).unwrap(),
                naive::schedule(&h, latency).unwrap(),
                "constrained, latency {latency}"
            );
        }
    }

    #[test]
    fn matches_the_naive_reference_on_a_wide_mixed_graph() {
        // A two-layer mixed-class graph with plenty of slack, so many
        // iterations of pick/propagate run with non-trivial frames.
        let mut g = Cdfg::new("mixed");
        let mut layer = Vec::new();
        for i in 0..6 {
            let a = g.add_input(format!("a{i}"));
            let b = g.add_input(format!("b{i}"));
            let op = match i % 3 {
                0 => Op::Add,
                1 => Op::Mul,
                _ => Op::Sub,
            };
            layer.push(g.add_op(op, &[a, b]).unwrap());
        }
        let mut acc = layer[0];
        for &n in &layer[1..] {
            acc = g.add_op(Op::Add, &[acc, n]).unwrap();
        }
        let sel = g.add_op(Op::Gt, &[layer[0], layer[1]]).unwrap();
        let m = g.add_mux(sel, acc, layer[2]).unwrap();
        g.add_output("o", m).unwrap();

        let cp = g.critical_path_length();
        for latency in cp..cp + 5 {
            assert_eq!(
                schedule(&g, latency).unwrap(),
                naive::schedule(&g, latency).unwrap(),
                "latency {latency}"
            );
        }
    }

    #[test]
    fn propagate_surfaces_infeasibility_instead_of_clamping() {
        // Regression for the backward-pass clamp: a deep chain whose tail is
        // fixed far too early must error, not silently floor the chain's
        // frames at step 1.
        let mut g = Cdfg::new("chain");
        let x = g.add_input("x");
        let a = g.add_op(Op::Neg, &[x]).unwrap();
        let b = g.add_op(Op::Neg, &[a]).unwrap();
        let c = g.add_op(Op::Neg, &[b]).unwrap();
        let d = g.add_op(Op::Neg, &[c]).unwrap();
        g.add_output("o", d).unwrap();

        let timing = Timing::compute(&g, 6);
        let mut ws = Workspace::new();
        let mut kernel = Kernel::init(&g, &timing, &mut ws);
        // Simulate a (buggy) late fix: d pinned to step 2 even though three
        // predecessors must run first.
        let i = d.index();
        kernel.ws.frames[i] = Frame { earliest: 2, latest: 2 };
        kernel.ws.fixed[i] = true;
        kernel.ws.fixed_count += 1;
        let err = kernel.propagate_from(d).unwrap_err();
        assert!(matches!(err, ScheduleError::InfeasiblePropagation { .. }));
        assert!(kernel.ws.queue.is_empty(), "worklist drained on error");
    }

    #[test]
    fn warm_workspace_runs_are_bit_identical_to_cold_runs() {
        // One workspace reused across circuits and latencies — including an
        // infeasible one in the middle — must reproduce every cold schedule
        // exactly and keep erroring where cold runs error.
        let (g, ..) = abs_diff();
        let (mut h, gt, amb, bma, _) = abs_diff();
        h.add_control_edge(gt, amb).unwrap();
        h.add_control_edge(gt, bma).unwrap();

        let mut ws = Workspace::new();
        for latency in 2..8 {
            assert_eq!(
                schedule_with_workspace(&g, latency, &mut ws).unwrap(),
                schedule(&g, latency).unwrap(),
                "unconstrained, latency {latency}"
            );
        }
        let err = schedule_with_workspace(&h, 2, &mut ws).unwrap_err();
        assert!(matches!(err, ScheduleError::LatencyTooSmall { requested: 2, critical_path: 3 }));
        for latency in 3..8 {
            assert_eq!(
                schedule_with_workspace(&h, latency, &mut ws).unwrap(),
                schedule(&h, latency).unwrap(),
                "constrained, latency {latency}"
            );
        }
    }

    #[test]
    fn feasible_deep_chains_match_the_naive_reference() {
        // Chains are the worst case for seeded propagation (every fix
        // cascades end to end); the direct error-path test for the naive
        // reference lives in naive::tests.
        let mut g = Cdfg::new("chain");
        let x = g.add_input("x");
        let mut prev = g.add_op(Op::Neg, &[x]).unwrap();
        for _ in 0..4 {
            prev = g.add_op(Op::Neg, &[prev]).unwrap();
        }
        g.add_output("o", prev).unwrap();
        // Feasible latencies still schedule fine in both kernels.
        for latency in 5..9 {
            assert_eq!(schedule(&g, latency).unwrap(), naive::schedule(&g, latency).unwrap(),);
        }
    }
}
