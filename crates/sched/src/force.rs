//! Latency-constrained force-directed scheduling (Paulin & Knight).
//!
//! Given a latency, force-directed scheduling chooses a control step for
//! every operation so that operations of the same class are spread as evenly
//! as possible over the steps, which minimises the number of execution units
//! the final allocation needs.  This is the behaviour the paper relies on
//! from HYPER's scheduler ("targeting minimum hardware resources for the
//! desired throughput", step 11 of the algorithm).

use std::collections::BTreeMap;

use cdfg::{Cdfg, NodeId, OpClass};

use crate::error::ScheduleError;
use crate::schedule::Schedule;
use crate::timing::Timing;

/// Mutable time frame `[earliest, latest]` of an operation during
/// force-directed scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frame {
    earliest: u32,
    latest: u32,
}

impl Frame {
    fn width(self) -> u32 {
        self.latest - self.earliest + 1
    }

    fn probability(self, step: u32) -> f64 {
        if step >= self.earliest && step <= self.latest {
            1.0 / f64::from(self.width())
        } else {
            0.0
        }
    }
}

/// Schedules `cdfg` within `latency` control steps, minimising the peak
/// number of simultaneously busy execution units per class.
///
/// # Errors
///
/// Returns [`ScheduleError::LatencyTooSmall`] if the latency is below the
/// critical path (taking control edges into account).
pub fn schedule(cdfg: &Cdfg, latency: u32) -> Result<Schedule, ScheduleError> {
    let timing = Timing::compute(cdfg, latency);
    if !timing.is_feasible() {
        return Err(ScheduleError::LatencyTooSmall {
            requested: latency,
            critical_path: timing.min_latency(),
        });
    }

    let functional = cdfg.functional_nodes();
    let mut frames: BTreeMap<NodeId, Frame> = functional
        .iter()
        .map(|&n| (n, Frame { earliest: timing.asap(n), latest: timing.alap(n) }))
        .collect();

    // Nodes with a single-step frame are already fixed.
    let mut fixed: BTreeMap<NodeId, u32> = BTreeMap::new();
    for (&n, frame) in &frames {
        if frame.width() == 1 {
            fixed.insert(n, frame.earliest);
        }
    }

    while fixed.len() < functional.len() {
        // Distribution graphs: expected number of operations of each class in
        // each step, given the current frames.
        let mut dg: BTreeMap<(OpClass, u32), f64> = BTreeMap::new();
        for (&n, frame) in &frames {
            let class = cdfg.node(n).expect("live node").op.class();
            for step in frame.earliest..=frame.latest {
                *dg.entry((class, step)).or_insert(0.0) += frame.probability(step);
            }
        }

        // Pick the unfixed (node, step) pair with the smallest self-force.
        let mut best: Option<(NodeId, u32, f64)> = None;
        for &n in &functional {
            if fixed.contains_key(&n) {
                continue;
            }
            let frame = frames[&n];
            let class = cdfg.node(n).expect("live node").op.class();
            for step in frame.earliest..=frame.latest {
                // Self force = DG(step) * (1 - p) - sum_{other steps} DG * p,
                // the standard Paulin/Knight formulation restricted to the
                // operation's own frame.
                let force = self_force(&dg, class, frame, step);
                let better = match best {
                    None => true,
                    Some((bn, bs, bf)) => {
                        force < bf - 1e-9 || ((force - bf).abs() <= 1e-9 && (n, step) < (bn, bs))
                    }
                };
                if better {
                    best = Some((n, step, force));
                }
            }
        }

        let (node, step, _) = best.expect("at least one unfixed node");
        fixed.insert(node, step);
        frames.insert(node, Frame { earliest: step, latest: step });

        // Propagate the tightened frame through the precedence relation.
        propagate(cdfg, &mut frames, &fixed, latency);
    }

    let mut schedule = Schedule::new(latency);
    for (n, s) in fixed {
        schedule.assign(n, s);
    }
    Ok(schedule)
}

/// Self force of placing an operation of `class` with time frame `frame` at
/// `step`: the standard `DG · (new probability − old probability)` sum over
/// the frame.
fn self_force(dg: &BTreeMap<(OpClass, u32), f64>, class: OpClass, frame: Frame, step: u32) -> f64 {
    let p = frame.probability(step);
    let mut force = 0.0;
    for s in frame.earliest..=frame.latest {
        let dg_s = dg.get(&(class, s)).copied().unwrap_or(0.0);
        let delta = if s == step { 1.0 - p } else { -p };
        force += dg_s * delta;
    }
    force
}

/// Restores frame consistency after a node has been fixed: every functional
/// successor must start after its predecessors, every predecessor must
/// finish before its successors.
fn propagate(
    cdfg: &Cdfg,
    frames: &mut BTreeMap<NodeId, Frame>,
    fixed: &BTreeMap<NodeId, u32>,
    latency: u32,
) {
    // Iterate to a fixed point; graphs are small (tens to hundreds of nodes).
    let order = cdfg.topological_order();
    loop {
        let mut changed = false;
        // Forward: earliest = max(pred earliest + 1).
        for &n in &order {
            if !frames.contains_key(&n) {
                continue;
            }
            let mut earliest = frames[&n].earliest;
            for p in cdfg.predecessors(n) {
                if let Some(pf) = frames.get(&p) {
                    earliest = earliest.max(pf.earliest + 1);
                }
            }
            if fixed.contains_key(&n) {
                continue;
            }
            let frame = frames.get_mut(&n).expect("present");
            if earliest > frame.earliest {
                frame.earliest = earliest.min(latency);
                frame.latest = frame.latest.max(frame.earliest);
                changed = true;
            }
        }
        // Backward: latest = min(succ latest - 1).
        for &n in order.iter().rev() {
            if !frames.contains_key(&n) {
                continue;
            }
            let mut latest = frames[&n].latest;
            for s in cdfg.successors(n) {
                if let Some(sf) = frames.get(&s) {
                    latest = latest.min(sf.latest.saturating_sub(1).max(1));
                }
            }
            if fixed.contains_key(&n) {
                continue;
            }
            let frame = frames.get_mut(&n).expect("present");
            if latest < frame.latest {
                frame.latest = latest.max(frame.earliest);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resource::ResourceConstraint;
    use cdfg::Op;

    fn abs_diff() -> (Cdfg, NodeId, NodeId, NodeId, NodeId) {
        let mut g = Cdfg::new("abs_diff");
        let a = g.add_input("a");
        let b = g.add_input("b");
        let gt = g.add_op(Op::Gt, &[a, b]).unwrap();
        let amb = g.add_op(Op::Sub, &[a, b]).unwrap();
        let bma = g.add_op(Op::Sub, &[b, a]).unwrap();
        let m = g.add_mux(gt, bma, amb).unwrap();
        g.add_output("abs", m).unwrap();
        (g, gt, amb, bma, m)
    }

    #[test]
    fn three_steps_use_a_single_subtractor() {
        // Figure 2(a): with three control steps force-directed scheduling
        // spreads the two subtractions over different steps, so one
        // subtractor suffices.
        let (g, _gt, amb, bma, _m) = abs_diff();
        let s = schedule(&g, 3).unwrap();
        s.validate(&g).unwrap();
        assert_ne!(s.step_of(amb), s.step_of(bma));
        let usage = s.resource_usage(&g);
        assert_eq!(usage.count(OpClass::Sub), 1);
    }

    #[test]
    fn two_steps_need_two_subtractors() {
        // Figure 1: with only two control steps both subtractions land in
        // step 1 and two subtractors are required.
        let (g, ..) = abs_diff();
        let s = schedule(&g, 2).unwrap();
        s.validate(&g).unwrap();
        let usage = s.resource_usage(&g);
        assert_eq!(usage.count(OpClass::Sub), 2);
    }

    #[test]
    fn latency_below_critical_path_is_rejected() {
        let (g, ..) = abs_diff();
        let err = schedule(&g, 1).unwrap_err();
        assert!(matches!(err, ScheduleError::LatencyTooSmall { requested: 1, critical_path: 2 }));
    }

    #[test]
    fn control_edges_constrain_force_directed_scheduling() {
        let (mut g, gt, amb, bma, m) = abs_diff();
        g.add_control_edge(gt, amb).unwrap();
        g.add_control_edge(gt, bma).unwrap();
        let s = schedule(&g, 3).unwrap();
        s.validate(&g).unwrap();
        assert_eq!(s.step_of(gt), Some(1));
        assert!(s.step_of(amb).unwrap() >= 2);
        assert!(s.step_of(bma).unwrap() >= 2);
        assert_eq!(s.step_of(m), Some(3));
    }

    #[test]
    fn balances_adders_over_steps() {
        // Four independent additions, two steps: force-directed scheduling
        // should put two in each step so that only two adders are needed.
        let mut g = Cdfg::new("adds");
        let mut sums = Vec::new();
        for i in 0..4 {
            let a = g.add_input(format!("a{i}"));
            let b = g.add_input(format!("b{i}"));
            sums.push(g.add_op(Op::Add, &[a, b]).unwrap());
        }
        // A final combining stage so the graph has depth 2 and outputs.
        let c1 = g.add_op(Op::Add, &[sums[0], sums[1]]).unwrap();
        let c2 = g.add_op(Op::Add, &[sums[2], sums[3]]).unwrap();
        g.add_output("o1", c1).unwrap();
        g.add_output("o2", c2).unwrap();

        let s = schedule(&g, 3).unwrap();
        s.validate(&g).unwrap();
        let usage = s.resource_usage(&g);
        assert!(
            usage.count(OpClass::Add) <= 3,
            "force-directed scheduling should avoid piling all six adds into two steps: {usage}"
        );
        // A valid schedule under the derived resource bound exists.
        let constraint = ResourceConstraint::Limited(usage);
        s.validate_with(&g, &constraint).unwrap();
    }

    #[test]
    fn schedule_is_deterministic() {
        let (g, ..) = abs_diff();
        let s1 = schedule(&g, 4).unwrap();
        let s2 = schedule(&g, 4).unwrap();
        assert_eq!(s1, s2);
    }
}
